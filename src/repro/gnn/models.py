"""GNN models: graphSAGE encoder and the DSSM end model (Table 3 app)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.gnn.layers import Dense, SageLayer


class GraphSageEncoder:
    """Mini-batch graphSAGE encoder over a sampled multi-hop neighborhood.

    Consumes per-hop attribute tensors as produced by
    :class:`~repro.framework.requests.SampleResult`: ``features[l]`` has
    shape ``(batch, width_l, attr_len)`` with ``width_l`` the product of
    the first ``l`` fanouts (``width_0 == 1``). Produces one embedding
    per root.
    """

    def __init__(
        self,
        attr_len: int,
        hidden_dim: int,
        fanouts: Sequence[int],
        aggregator: str = "max",
        seed: int = 0,
    ) -> None:
        if attr_len <= 0 or hidden_dim <= 0:
            raise ConfigurationError("attr_len and hidden_dim must be positive")
        if not fanouts:
            raise ConfigurationError("fanouts must contain at least one hop")
        self.fanouts = tuple(int(f) for f in fanouts)
        self.layers: List[SageLayer] = []
        in_dim = attr_len
        for k in range(len(self.fanouts)):
            self.layers.append(
                SageLayer(in_dim, hidden_dim, aggregator=aggregator, seed=seed + 7 * k)
            )
            in_dim = hidden_dim

    @property
    def num_hops(self) -> int:
        return len(self.fanouts)

    def _normalize_features(self, features: Sequence[np.ndarray]) -> List[np.ndarray]:
        if len(features) != self.num_hops + 1:
            raise ConfigurationError(
                f"expected {self.num_hops + 1} feature tensors, got {len(features)}"
            )
        out = []
        width = 1
        for level, tensor in enumerate(features):
            tensor = np.asarray(tensor, dtype=np.float32)
            if tensor.ndim == 2:
                tensor = tensor[:, None, :]
            if tensor.shape[1] != width:
                raise ConfigurationError(
                    f"feature level {level} has width {tensor.shape[1]}, "
                    f"expected {width}"
                )
            out.append(tensor)
            if level < self.num_hops:
                width *= self.fanouts[level]
        return out

    def forward(self, features: Sequence[np.ndarray]) -> np.ndarray:
        """Encode roots; returns ``(batch, hidden_dim)`` embeddings."""
        levels = self._normalize_features(features)
        for layer in self.layers:
            next_levels: List[np.ndarray] = []
            for level in range(len(levels) - 1):
                self_feats = levels[level]
                fanout = self.fanouts[level]
                batch = levels[level + 1].shape[0]
                width = self_feats.shape[1]
                dim = levels[level + 1].shape[2]
                neighbor_feats = levels[level + 1].reshape(batch, width, fanout, dim)
                next_levels.append(layer.forward(self_feats, neighbor_feats))
            levels = next_levels
        return levels[0][:, 0, :]

    def forward_backward(
        self, features: Sequence[np.ndarray], grad_fn
    ) -> Tuple[np.ndarray, float]:
        """Run forward, compute loss grad via ``grad_fn``, backpropagate.

        Because a :class:`SageLayer` caches one forward at a time while
        the encoder reuses each layer across levels, backward is done by
        re-running each (layer, level) forward immediately before its
        backward. ``grad_fn(embeddings) -> (loss, grad)``.

        Returns ``(embeddings, loss)``; parameter gradients are
        accumulated in the layers (call :meth:`step` to apply).
        """
        levels = self._normalize_features(features)
        all_levels: List[List[np.ndarray]] = [levels]
        for k, layer in enumerate(self.layers):
            prev = all_levels[-1]
            next_levels = []
            for level in range(len(prev) - 1):
                self_feats = prev[level]
                fanout = self.fanouts[level]
                batch = prev[level + 1].shape[0]
                width = self_feats.shape[1]
                dim = prev[level + 1].shape[2]
                neighbor_feats = prev[level + 1].reshape(batch, width, fanout, dim)
                next_levels.append(layer.forward(self_feats, neighbor_feats))
            all_levels.append(next_levels)

        embeddings = all_levels[-1][0][:, 0, :]
        loss, grad_emb = grad_fn(embeddings)
        grads = [grad_emb[:, None, :]]
        for k in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[k]
            prev = all_levels[k]
            # Walk levels in order, re-running forward to restore the
            # layer's caches, then backward with the stored output grad.
            next_grads: List[np.ndarray] = [np.zeros_like(lv) for lv in prev]
            for level in range(len(all_levels[k + 1])):
                self_feats = prev[level]
                fanout = self.fanouts[level]
                batch = prev[level + 1].shape[0]
                width = self_feats.shape[1]
                dim = prev[level + 1].shape[2]
                neighbor_feats = prev[level + 1].reshape(batch, width, fanout, dim)
                layer.forward(self_feats, neighbor_feats)
                grad_self, grad_neighbors = layer.backward(grads[level])
                next_grads[level] += grad_self
                next_grads[level + 1] += grad_neighbors.reshape(prev[level + 1].shape)
            grads = next_grads
        self._input_grads = grads
        return embeddings, float(loss)

    @property
    def input_gradients(self) -> List[np.ndarray]:
        """Gradients wrt the input feature tensors (after backward)."""
        return self._input_grads

    def step(self, lr: float) -> None:
        """Apply accumulated SGD updates on all layers."""
        for layer in self.layers:
            layer.step(lr)

    def dense_layers(self) -> List[Dense]:
        out: List[Dense] = []
        for layer in self.layers:
            out.extend(layer.layers())
        return out


class DSSM:
    """Deep structured semantic model end application (two-tower).

    Scores (query, item) embedding pairs with an MLP tower per side and
    a dot product, as in the Table 3 end model (DSSM 128-128).
    """

    def __init__(
        self, in_dim: int, hidden_dims: Sequence[int] = (128, 128), seed: int = 0
    ) -> None:
        if in_dim <= 0:
            raise ConfigurationError(f"in_dim must be positive, got {in_dim}")
        if not hidden_dims:
            raise ConfigurationError("hidden_dims must not be empty")
        self.query_tower = self._build_tower(in_dim, hidden_dims, seed)
        self.item_tower = self._build_tower(in_dim, hidden_dims, seed + 101)

    @staticmethod
    def _build_tower(in_dim: int, hidden_dims: Sequence[int], seed: int) -> List[Dense]:
        tower: List[Dense] = []
        prev = in_dim
        for i, dim in enumerate(hidden_dims):
            activation = "relu" if i < len(hidden_dims) - 1 else "linear"
            tower.append(Dense(prev, dim, activation=activation, seed=seed + i))
            prev = dim
        return tower

    @staticmethod
    def _tower_forward(tower: List[Dense], x: np.ndarray) -> np.ndarray:
        for layer in tower:
            x = layer.forward(x)
        return x

    @staticmethod
    def _tower_backward(tower: List[Dense], grad: np.ndarray) -> np.ndarray:
        for layer in reversed(tower):
            grad = layer.backward(grad)
        return grad

    def forward(self, query: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Score queries against items.

        ``query``: (batch, in_dim); ``items``: (batch, n_items, in_dim).
        Returns (batch, n_items) dot-product scores.
        """
        self._q = self._tower_forward(self.query_tower, query)
        self._i = self._tower_forward(self.item_tower, items)
        return np.einsum("bd,bnd->bn", self._q, self._i)

    def backward(self, grad_scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Backprop through both towers; returns input grads (query, items)."""
        grad_q = np.einsum("bn,bnd->bd", grad_scores, self._i)
        grad_i = np.einsum("bn,bd->bnd", grad_scores, self._q)
        return (
            self._tower_backward(self.query_tower, grad_q),
            self._tower_backward(self.item_tower, grad_i),
        )

    def step(self, lr: float) -> None:
        for layer in self.query_tower + self.item_tower:
            layer.step(lr)

    def dense_layers(self) -> List[Dense]:
        return list(self.query_tower) + list(self.item_tower)
