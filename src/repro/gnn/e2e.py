"""End-to-end LSD-GNN application time model (Figure 3).

Models the Table 3 application — graph ``ls``, 2-hop 10/10 sampling,
128-d embedding, graphSAGE-max, DSSM 128-128 end model on a 5-server /
120-worker instance — and reports the per-stage latency breakdown plus
the storage-footprint comparison (graph storage is ~5-6 orders of
magnitude larger than the NN model).

Calibration: the effective GPU throughput is far below peak because the
dense stages run small per-batch matrices (512x128-class GEMMs); the
embedding stage is modeled as a bandwidth-bound gather (plus a scatter
update when training). Training additionally expands ``negative_rate``
negatives per root, while inference scores only the positive pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.framework.cpu_model import CpuSamplingModel, WorkloadShape
from repro.graph.datasets import get_dataset
from repro.memstore.layout import FootprintModel
from repro.units import GB, GIGA, KILO


@dataclass(frozen=True)
class StageBreakdown:
    """Per-batch stage times (seconds) of the end-to-end pipeline."""

    sampling_s: float
    embedding_s: float
    nn_s: float

    @property
    def total_s(self) -> float:
        return self.sampling_s + self.embedding_s + self.nn_s

    @property
    def sampling_fraction(self) -> float:
        return self.sampling_s / self.total_s

    @property
    def nn_fraction(self) -> float:
        """Non-sampling (embedding + dense NN) share."""
        return (self.embedding_s + self.nn_s) / self.total_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "sampling": self.sampling_s,
            "embedding": self.embedding_s,
            "nn": self.nn_s,
        }


class EndToEndModel:
    """Analytic per-batch time model for the Table 3 application.

    Parameters
    ----------
    dataset:
        Table 2 dataset name (the paper uses ``ls``).
    batch_size, hidden_dim, negative_rate:
        Application setup (512 / 128 / 10 in Tables 2-3).
    num_servers, worker_vcpus:
        Resource assignment (5 servers / 120 workers in Table 3).
    gpu_effective_tflops:
        Achieved GPU throughput on the small dense stages.
    embed_bandwidth:
        Memory bandwidth of the embedding gather/scatter stage.
    cpu_model:
        vCPU sampling cost model (shared with the characterization).
    batched_sampling, batched_speedup:
        Model workers running the batched sampler fast path: the
        sampling stage time is divided by ``batched_speedup`` (the
        measured factor from ``repro bench-sampler``). Off by default
        so historical breakdowns stay bit-for-bit.
    """

    def __init__(
        self,
        dataset: str = "ls",
        batch_size: int = 512,
        hidden_dim: int = 128,
        negative_rate: int = 10,
        num_servers: int = 5,
        worker_vcpus: int = 120,
        gpu_effective_tflops: float = 0.9,
        embed_bandwidth: float = 90 * GB,
        cpu_model: Optional[CpuSamplingModel] = None,
        batched_sampling: bool = False,
        batched_speedup: float = 5.0,
    ) -> None:
        if batch_size <= 0 or hidden_dim <= 0:
            raise ConfigurationError("batch_size and hidden_dim must be positive")
        if negative_rate < 0:
            raise ConfigurationError(
                f"negative_rate must be non-negative, got {negative_rate}"
            )
        if batched_speedup < 1.0:
            raise ConfigurationError(
                f"batched_speedup must be >= 1, got {batched_speedup}"
            )
        self.spec = get_dataset(dataset)
        self.batch_size = batch_size
        self.hidden_dim = hidden_dim
        self.negative_rate = negative_rate
        self.num_servers = num_servers
        self.worker_vcpus = worker_vcpus
        self.gpu_effective_tflops = gpu_effective_tflops
        self.embed_bandwidth = embed_bandwidth
        self.cpu_model = cpu_model or CpuSamplingModel()
        self.batched_sampling = batched_sampling
        self.batched_speedup = batched_speedup
        self.train_shape = WorkloadShape.from_spec(
            self.spec, negative_rate=negative_rate
        )
        self.infer_shape = WorkloadShape.from_spec(self.spec, negative_rate=0)

    def _shape(self, training: bool) -> WorkloadShape:
        return self.train_shape if training else self.infer_shape

    # ------------------------------------------------------------- storage
    def storage_ratio(self) -> float:
        """Graph storage bytes over NN model bytes (>=1e5 in the paper)."""
        graph_bytes = FootprintModel().report(self.spec).total_bytes
        return graph_bytes / self.nn_model_bytes()

    def nn_model_bytes(self) -> int:
        """Parameter bytes of encoder + DSSM (float32)."""
        attr = self.spec.attr_len
        h = self.hidden_dim
        sage = (attr * h + h) + ((attr + h) * h + h)  # first layer
        sage += (h * h + h) + (2 * h * h + h)  # second layer
        dssm = 2 * ((h * h + h) + (h * h + h))  # two towers, 128-128
        return 4 * (sage + dssm)

    # --------------------------------------------------------------- time
    def _nn_flops_forward(self, training: bool) -> float:
        """Dense-stage FLOPs per batch (forward only)."""
        shape = self._shape(training)
        nodes = shape.attr_nodes
        attr = self.spec.attr_len
        h = self.hidden_dim
        groups = shape.neighbor_ops  # 1 + fanout groups combined per root
        per_root = nodes * 2 * attr * h  # hop-1 pool over all nodes
        per_root += groups * 2 * (attr + h) * h  # hop-1 combine
        per_root += groups * 2 * h * h + 2 * (2 * h * h)  # hop-2 pool+combine
        pairs = 1 + (self.negative_rate if training else 0)
        dssm = pairs * 2 * (2 * h * h)
        return self.batch_size * (per_root + dssm)

    def sampling_time(self, training: bool = True) -> float:
        """Per-batch sampling time across the worker pool."""
        per_vcpu = self.cpu_model.roots_per_second(
            self._shape(training), self.num_servers
        )
        seconds = self.batch_size / (per_vcpu * self.worker_vcpus)
        if self.batched_sampling:
            seconds /= self.batched_speedup
        return seconds

    def embedding_time(self, training: bool = True) -> float:
        """Embedding stage: bandwidth-bound gather (+ scatter update)."""
        rows = self.batch_size * self._shape(training).attr_nodes
        row_bytes = self.hidden_dim * 4
        gather = rows * row_bytes / self.embed_bandwidth
        return gather * (2.0 if training else 1.0)

    def nn_time(self, training: bool) -> float:
        """Dense NN time on GPU; backward costs 2x forward."""
        flops = self._nn_flops_forward(training) * (3.0 if training else 1.0)
        return flops / (self.gpu_effective_tflops * KILO * GIGA)

    def breakdown(self, training: bool = True) -> StageBreakdown:
        """Figure 3: per-stage time breakdown for training or inference."""
        return StageBreakdown(
            sampling_s=self.sampling_time(training),
            embedding_s=self.embedding_time(training),
            nn_s=self.nn_time(training),
        )
