"""Evaluation metrics for GNN tasks."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def micro_f1(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Micro-averaged F1 for multi-label predictions (PPI-style).

    Both inputs are binary {0,1} arrays of shape (n, num_labels).
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ConfigurationError(
            f"shape mismatch: {predictions.shape} vs {labels.shape}"
        )
    tp = float(np.sum((predictions == 1) & (labels == 1)))
    fp = float(np.sum((predictions == 1) & (labels == 0)))
    fn = float(np.sum((predictions == 0) & (labels == 1)))
    denom = 2 * tp + fp + fn
    if denom == 0:
        return 0.0
    return 2 * tp / denom


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Plain accuracy for single-label predictions."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ConfigurationError(
            f"shape mismatch: {predictions.shape} vs {labels.shape}"
        )
    if predictions.size == 0:
        return 0.0
    return float(np.mean(predictions == labels))


def hits_at_k(scores: np.ndarray, k: int = 1) -> float:
    """Link-prediction Hits@K: column 0 holds the positive's score,
    remaining columns hold negatives. Counts how often the positive
    ranks in the top K."""
    scores = np.asarray(scores)
    if scores.ndim != 2 or scores.shape[1] < 2:
        raise ConfigurationError("scores must be (batch, 1 + num_negatives)")
    if not 1 <= k <= scores.shape[1]:
        raise ConfigurationError(f"k must be in [1, {scores.shape[1]}], got {k}")
    ranks = (scores > scores[:, :1]).sum(axis=1)  # negatives strictly better
    return float(np.mean(ranks < k))
