"""Mini-batch GNN compute: layers, models, training, end-to-end model."""

from repro.gnn.layers import (
    Dense,
    MaxPoolAggregator,
    MeanAggregator,
    SageLayer,
    ragged_segment_sum,
    segment_mean,
    segment_sum,
)
from repro.gnn.models import DSSM, GraphSageEncoder
from repro.gnn.gcn import GcnEncoder, GcnLayer
from repro.gnn.embedding import (
    EmbeddingShard,
    EmbeddingTable,
    ShardedEmbeddingTable,
)
from repro.gnn.pipeline import (
    NeighborhoodCache,
    PipelinedTrainer,
    TrainReport,
)
from repro.gnn.train import (
    Trainer,
    link_prediction_loss,
    link_prediction_loss64,
    multilabel_loss,
    multilabel_loss64,
)
from repro.gnn.metrics import micro_f1, accuracy
from repro.gnn.e2e import EndToEndModel, StageBreakdown

__all__ = [
    "Dense",
    "segment_sum",
    "segment_mean",
    "ragged_segment_sum",
    "MaxPoolAggregator",
    "MeanAggregator",
    "SageLayer",
    "DSSM",
    "GraphSageEncoder",
    "GcnEncoder",
    "GcnLayer",
    "EmbeddingShard",
    "EmbeddingTable",
    "ShardedEmbeddingTable",
    "NeighborhoodCache",
    "PipelinedTrainer",
    "TrainReport",
    "Trainer",
    "link_prediction_loss",
    "link_prediction_loss64",
    "multilabel_loss",
    "multilabel_loss64",
    "micro_f1",
    "accuracy",
    "EndToEndModel",
    "StageBreakdown",
]
