"""Mini-batch GNN compute: layers, models, training, end-to-end model."""

from repro.gnn.layers import (
    Dense,
    MaxPoolAggregator,
    MeanAggregator,
    SageLayer,
    ragged_segment_sum,
    segment_mean,
    segment_sum,
)
from repro.gnn.models import DSSM, GraphSageEncoder
from repro.gnn.gcn import GcnEncoder, GcnLayer
from repro.gnn.embedding import EmbeddingTable
from repro.gnn.train import (
    Trainer,
    link_prediction_loss,
    multilabel_loss,
)
from repro.gnn.metrics import micro_f1, accuracy
from repro.gnn.e2e import EndToEndModel, StageBreakdown

__all__ = [
    "Dense",
    "segment_sum",
    "segment_mean",
    "ragged_segment_sum",
    "MaxPoolAggregator",
    "MeanAggregator",
    "SageLayer",
    "DSSM",
    "GraphSageEncoder",
    "GcnEncoder",
    "GcnLayer",
    "EmbeddingTable",
    "Trainer",
    "link_prediction_loss",
    "multilabel_loss",
    "micro_f1",
    "accuracy",
    "EndToEndModel",
    "StageBreakdown",
]
