"""GCN layer over sampled neighborhoods.

The paper names GCN as the model whose aggregation should run on-FPGA
("the FPGA compute units are preferable for reductions in the sampling
stages ... such as the case for GCN"). Unlike graphSAGE's max-pool,
GCN's aggregation is a *linear* mean over the closed neighborhood —
exactly the reduction :class:`~repro.axe.vpu.VectorUnit` performs — so
shipping aggregated rows off-FPGA is lossless for this model.

Mini-batch formulation over a sampled neighborhood:

    h_v' = act( W @ mean(h_u : u in S(v) + v) )
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.gnn.layers import Dense


class GcnLayer:
    """One mean-aggregate GCN layer (sampled mini-batch form)."""

    def __init__(
        self, in_dim: int, out_dim: int, activation: str = "relu", seed: int = 0
    ) -> None:
        self.linear = Dense(in_dim, out_dim, activation=activation, seed=seed)

    def forward(self, self_feats: np.ndarray, neighbor_feats: np.ndarray) -> np.ndarray:
        """``self_feats``: (batch, groups, d); ``neighbor_feats``:
        (batch, groups, fanout, d). Returns (batch, groups, out)."""
        if self_feats.shape[:2] != neighbor_feats.shape[:2]:
            raise ConfigurationError(
                f"shape mismatch: {self_feats.shape} vs {neighbor_feats.shape}"
            )
        fanout = neighbor_feats.shape[2]
        self._fanout = fanout
        # Closed-neighborhood mean: the node plus its sampled neighbors.
        total = neighbor_feats.sum(axis=2) + self_feats
        self._mean = total / (fanout + 1)
        return self.linear.forward(self._mean)

    def backward(self, grad_out: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Returns (grad_self, grad_neighbors)."""
        grad_mean = self.linear.backward(grad_out) / (self._fanout + 1)
        grad_self = grad_mean
        grad_neighbors = np.repeat(
            grad_mean[:, :, None, :], self._fanout, axis=2
        )
        return grad_self, grad_neighbors

    def step(self, lr: float) -> None:
        self.linear.step(lr)


class GcnEncoder:
    """Multi-hop GCN encoder over sampled features (same feature layout
    as :class:`~repro.gnn.models.GraphSageEncoder`)."""

    def __init__(
        self,
        attr_len: int,
        hidden_dim: int,
        fanouts: Sequence[int],
        seed: int = 0,
    ) -> None:
        if attr_len <= 0 or hidden_dim <= 0:
            raise ConfigurationError("attr_len and hidden_dim must be positive")
        if not fanouts:
            raise ConfigurationError("fanouts must contain at least one hop")
        self.fanouts = tuple(int(f) for f in fanouts)
        self.layers: List[GcnLayer] = []
        in_dim = attr_len
        for hop in range(len(self.fanouts)):
            activation = "relu" if hop < len(self.fanouts) - 1 else "linear"
            self.layers.append(
                GcnLayer(in_dim, hidden_dim, activation=activation, seed=seed + hop)
            )
            in_dim = hidden_dim

    def _normalize(self, features: Sequence[np.ndarray]) -> List[np.ndarray]:
        if len(features) != len(self.fanouts) + 1:
            raise ConfigurationError(
                f"expected {len(self.fanouts) + 1} feature tensors, got "
                f"{len(features)}"
            )
        out = []
        width = 1
        for level, tensor in enumerate(features):
            tensor = np.asarray(tensor, dtype=np.float32)
            if tensor.ndim == 2:
                tensor = tensor[:, None, :]
            if tensor.shape[1] != width:
                raise ConfigurationError(
                    f"feature level {level} has width {tensor.shape[1]}, "
                    f"expected {width}"
                )
            out.append(tensor)
            if level < len(self.fanouts):
                width *= self.fanouts[level]
        return out

    def forward(self, features: Sequence[np.ndarray]) -> np.ndarray:
        """Encode roots; returns (batch, hidden_dim)."""
        levels = self._normalize(features)
        for layer in self.layers:
            next_levels = []
            for index in range(len(levels) - 1):
                self_feats = levels[index]
                fanout = self.fanouts[index]
                batch = self_feats.shape[0]
                width = self_feats.shape[1]
                dim = levels[index + 1].shape[2]
                neighbors = levels[index + 1].reshape(batch, width, fanout, dim)
                next_levels.append(layer.forward(self_feats, neighbors))
            levels = next_levels
        return levels[0][:, 0, :]

    def forward_from_reduced(
        self, reduced: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Encode from *pre-reduced* neighborhoods (the on-FPGA path).

        The VPU ships ``mean(h_u : u in S(v) + v)`` per group, so the
        host only applies the linear transforms. ``reduced[k]`` has
        shape ``(batch, width_k, d)``: the hop-k closed-neighborhood
        means. Only valid for single-hop encoders (multi-hop GCN needs
        intermediate activations the reduction discards).
        """
        if len(self.layers) != 1:
            raise ConfigurationError(
                "forward_from_reduced supports single-hop encoders"
            )
        if len(reduced) != 1:
            raise ConfigurationError("expected exactly one reduced tensor")
        tensor = np.asarray(reduced[0], dtype=np.float32)
        if tensor.ndim == 2:
            tensor = tensor[:, None, :]
        layer = self.layers[0]
        layer._fanout = self.fanouts[0]
        layer._mean = tensor
        return layer.linear.forward(tensor)[:, 0, :]

    def step(self, lr: float) -> None:
        for layer in self.layers:
            layer.step(lr)
