"""Pipelined sample→train engine (ROADMAP item 3).

:class:`PipelinedTrainer` closes the last serial plane in the repo: it
drives the :class:`~repro.parallel.pipeline.PipelinedExecutor` so shard
workers hop-sample micro-batch *k+1* while the coordinator runs the
forward/backward of micro-batch *k* — the paper's LSD-GNN shape, which
keeps the CPU embedding stage overlapped with (FPGA) sampling. The
trainable state is a :class:`~repro.gnn.embedding.ShardedEmbeddingTable`
partitioned exactly like the store, a graphSAGE encoder, and a linear
classification head; each micro-batch does one dedup'd embedding
gather, one forward/backward, one gradient scatter-add back to the
owning shards, and one optimizer step.

Determinism contract
--------------------
Losses and weights are **bit-identical at every worker count** (the
same bar the sampler meets): shard results are bit-identical by the
engine's (seed, shard, seq) streams, the executor yields them in
request order, the embedding scatter-add routes every occurrence of a
node to its single owning shard in occurrence order, and all compute
runs on the coordinator.

:class:`NeighborhoodCache` is the ScaleGNN trick: repeated-epoch
training re-samples the same multi-hop neighborhoods every epoch, so
the trainer can memoize per-root hop layers keyed by (graph epoch,
request fingerprint) and serve later epochs from memory. Hit/miss
counters are occurrence-accurate and flow into the store's
:class:`~repro.memstore.store.AccessSummary` via
:meth:`~repro.memstore.store.PartitionedStore.record_neighborhood`.

This module is enrolled in the sim-clock lint scope: it must stay
clock-free. All wall-clock measurement happens in the ``repro
train-bench`` CLI through :func:`repro.bench.bench_timer`.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.framework.requests import SampleRequest, SampleResult
from repro.gnn.embedding import ShardedEmbeddingTable
from repro.gnn.layers import Dense
from repro.gnn.models import GraphSageEncoder
from repro.gnn.train import multilabel_loss
from repro.memstore.store import PartitionedStore
from repro.parallel.engine import ParallelSampler
from repro.parallel.pipeline import PipelinedExecutor

#: SeedSequence spawn key reserved for the epoch-shuffle stream (the
#: engine's shard streams use (shard, seq); negative sampling uses
#: (2**31,)).
SHUFFLE_STREAM_KEY = 2**31 + 1


@dataclass(frozen=True)
class CacheFingerprint:
    """Identity of the sampling distribution a cached layer came from.

    Two requests with the same fingerprint over the same graph epoch
    draw from the same family of neighborhoods, so serving one from the
    other's cached layers is a reuse, not a corruption. Any component
    changing (different fanouts, selector, seed, or a mutated graph)
    invalidates the whole cache.
    """

    graph_epoch: int
    fanouts: Tuple[int, ...]
    sampling_method: str
    seed: int
    generation: int


class NeighborhoodCache:
    """Memoizes per-root multi-hop layers for repeated-epoch training.

    Each entry maps a root node to its flattened hop layers (all hops
    concatenated, ``hop_elements(fanouts)`` int64 values). Entries are
    valid only under the current :class:`CacheFingerprint`; a
    fingerprint change (graph mutation, new cache generation) clears
    the cache. ``cached_epochs`` bounds reuse: generation ``e //
    cached_epochs`` changes every ``cached_epochs`` trained epochs, so
    neighborhoods are re-sampled at least that often — the ScaleGNN
    staleness/throughput dial.

    ``root_hits`` / ``root_misses`` are occurrence-accurate: every root
    occurrence probed counts exactly one hit or one miss, in probe
    order. They are owned by this module; per-batch deltas flow into
    the store summary through
    :meth:`~repro.memstore.store.PartitionedStore.record_neighborhood`.
    (Ownership is declared in the counter-ownership registry:
    ``repro/analysis/rules/crossmodule/registry.py``.)
    """

    def __init__(self, cached_epochs: int) -> None:
        if cached_epochs < 1:
            raise ConfigurationError(
                f"cached_epochs must be >= 1, got {cached_epochs}"
            )
        self.cached_epochs = cached_epochs
        self.root_hits = 0
        self.root_misses = 0
        self._fingerprint: Optional[CacheFingerprint] = None
        self._rows: Dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def begin_epoch(
        self,
        graph_epoch: int,
        fanouts: Tuple[int, ...],
        sampling_method: str,
        seed: int,
        trained_epochs: int,
    ) -> None:
        """Roll the fingerprint forward; clears entries when it changes."""
        fingerprint = CacheFingerprint(
            graph_epoch=graph_epoch,
            fanouts=tuple(fanouts),
            sampling_method=sampling_method,
            seed=seed,
            generation=trained_epochs // self.cached_epochs,
        )
        if fingerprint != self._fingerprint:
            self._fingerprint = fingerprint
            self._rows = {}

    def probe(self, roots: np.ndarray) -> np.ndarray:
        """Boolean hit mask for each root occurrence (counted)."""
        hits = np.fromiter(
            (int(root) in self._rows for root in roots),
            dtype=bool,
            count=roots.size,
        )
        hit_count = int(hits.sum())
        self.root_hits += hit_count
        self.root_misses += int(roots.size) - hit_count
        return hits

    def insert(self, roots: np.ndarray, result: SampleResult) -> None:
        """Memoize the hop layers of ``result`` per root (first wins).

        ``roots`` must be ``result``'s request roots: row ``i`` of every
        hop layer belongs to ``roots[i]``. First-insert-wins keeps probe
        outcomes independent of pipeline depth for duplicate roots.
        """
        flat = np.concatenate(
            [layer.reshape(roots.size, -1) for layer in result.layers[1:]],
            axis=1,
        )
        for i, root in enumerate(roots):
            key = int(root)
            if key not in self._rows:
                self._rows[key] = flat[i].copy()

    def assemble(
        self, roots: np.ndarray, fanouts: Tuple[int, ...]
    ) -> List[np.ndarray]:
        """Reconstruct full hop layers for ``roots`` from cached rows."""
        rows = np.stack([self._rows[int(root)] for root in roots])
        layers: List[np.ndarray] = [np.asarray(roots, dtype=np.int64).copy()]
        offset = 0
        width = 1
        for fanout in fanouts:
            width *= fanout
            layers.append(rows[:, offset : offset + width].copy())
            offset += width
        return layers


@dataclass
class _BatchPlan:
    """One micro-batch's bookkeeping through the pipelined epoch."""

    roots: np.ndarray
    label_rows: np.ndarray
    #: Sorted-unique roots that must be sampled (None = fully cached).
    request_roots: Optional[np.ndarray]
    hits: int = 0
    misses: int = 0


@dataclass
class TrainReport:
    """Outcome of a :meth:`PipelinedTrainer.train` run.

    Wall-clock rates are deliberately absent — this module is
    clock-free; the ``repro train-bench`` CLI times epochs externally
    and derives samples/sec itself.
    """

    epochs: int = 0
    micro_batches: int = 0
    samples: int = 0
    epoch_losses: List[float] = field(default_factory=list)
    final_loss: float = float("nan")
    weights_digest: str = ""
    cache_hits: int = 0
    cache_misses: int = 0


class PipelinedTrainer:
    """Sample→train pipeline over the sharded parallel engine.

    Parameters
    ----------
    store:
        The coordinator's :class:`PartitionedStore`; its partitioner
        also shards the embedding table, so embedding ownership is
        fixed across worker counts.
    labels:
        ``(num_nodes, num_labels)`` multi-label targets.
    fanouts:
        Hop fanouts of the sampled neighborhoods.
    workers:
        Shard worker processes; ``0`` runs the identical shard tasks
        inline (the determinism reference).
    pipeline_depth:
        Micro-batches in flight (>= 2 overlaps sampling with compute).
    cached_epochs:
        ``0`` disables the :class:`NeighborhoodCache`; ``k >= 1``
        re-samples neighborhoods every ``k`` epochs and serves the
        epochs in between from the cache.
    engine:
        Optional existing :class:`ParallelSampler` to drive (not owned:
        the caller keeps responsibility for closing it). ``None`` builds
        a private engine with ``pipeline_depth`` arena slots, owned and
        released by :meth:`close`.
    """

    def __init__(
        self,
        store: PartitionedStore,
        labels: np.ndarray,
        fanouts: Sequence[int],
        embedding_dim: int = 16,
        hidden_dim: int = 16,
        lr: float = 0.05,
        seed: int = 0,
        workers: int = 0,
        pipeline_depth: int = 2,
        batch_size: int = 32,
        sampling_method: str = "uniform",
        cached_epochs: int = 0,
        aggregator: str = "max",
        engine: Optional[ParallelSampler] = None,
    ) -> None:
        labels = np.asarray(labels, dtype=np.float32)
        if labels.ndim != 2 or labels.shape[0] != store.graph.num_nodes:
            raise ConfigurationError(
                "labels must have shape (num_nodes, num_labels); got "
                f"{labels.shape} for {store.graph.num_nodes} nodes"
            )
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if lr <= 0:
            raise ConfigurationError(f"lr must be positive, got {lr}")
        if cached_epochs < 0:
            raise ConfigurationError(
                f"cached_epochs must be >= 0, got {cached_epochs}"
            )
        self.store = store
        self.labels = labels
        self.fanouts = tuple(int(f) for f in fanouts)
        self.lr = lr
        self.seed = seed
        self.batch_size = batch_size
        self.sampling_method = sampling_method
        self._owns_engine = engine is None
        if engine is None:
            engine = ParallelSampler(
                store,
                workers=workers,
                seed=seed,
                sampling_method=sampling_method,
                slots=max(pipeline_depth, 2),
            )
        self.engine = engine
        # Arena regions cannot grow mid-stream, and cache-deduped
        # micro-batches vary in size — provision for the largest now.
        engine.reserve(batch_size, self.fanouts)
        self.executor = PipelinedExecutor(engine, depth=pipeline_depth)
        self.embeddings = ShardedEmbeddingTable(
            store.graph.num_nodes, embedding_dim, store.partitioner, seed=seed
        )
        self.encoder = GraphSageEncoder(
            embedding_dim,
            hidden_dim,
            self.fanouts,
            aggregator=aggregator,
            seed=seed,
        )
        self.head = Dense(
            hidden_dim, labels.shape[1], activation="linear", seed=seed
        )
        self.cache: Optional[NeighborhoodCache] = (
            NeighborhoodCache(cached_epochs) if cached_epochs else None
        )
        self._shuffle_rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=seed, spawn_key=(SHUFFLE_STREAM_KEY,)
            )
        )
        self._trained_epochs = 0
        self._micro_batches = 0
        self._samples = 0

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the engine if this trainer built it."""
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "PipelinedTrainer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ training
    def train(self, roots: np.ndarray, epochs: int = 1) -> TrainReport:
        """Run ``epochs`` pipelined epochs over ``roots``; see TrainReport."""
        if epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
        report = TrainReport()
        for _ in range(epochs):
            report.epoch_losses.append(self.train_epoch(roots))
        report.epochs = epochs
        report.micro_batches = self._micro_batches
        report.samples = self._samples
        report.final_loss = report.epoch_losses[-1]
        report.weights_digest = self.weights_digest()
        if self.cache is not None:
            report.cache_hits = self.cache.root_hits
            report.cache_misses = self.cache.root_misses
        return report

    def train_epoch(self, roots: np.ndarray) -> float:
        """One shuffled pass over ``roots``; returns the mean batch loss.

        Micro-batches flow through the pipelined executor: the request
        generator probes the cache and submits sampling work up to
        ``pipeline_depth`` batches ahead, while this loop consumes
        results in order and runs forward/backward — so shard workers
        hop-sample batch *k+1* during batch *k*'s compute.
        """
        roots = np.asarray(roots, dtype=np.int64).reshape(-1)
        if roots.size == 0:
            raise ConfigurationError("cannot train on an empty root set")
        if self.cache is not None:
            self.cache.begin_epoch(
                graph_epoch=int(getattr(self.store.graph, "epoch", 0)),
                fanouts=self.fanouts,
                sampling_method=self.sampling_method,
                seed=self.seed,
                trained_epochs=self._trained_epochs,
            )
        order = self._shuffle_rng.permutation(roots.size)
        plans: Deque[_BatchPlan] = deque()
        losses: List[float] = []

        def requests() -> Iterator[SampleRequest]:
            for start in range(0, order.size, self.batch_size):
                rows = order[start : start + self.batch_size]
                plan = self._plan_batch(roots[rows], rows)
                plans.append(plan)
                if plan.request_roots is not None:
                    yield SampleRequest(
                        roots=plan.request_roots,
                        fanouts=self.fanouts,
                        with_attributes=False,
                    )

        for result in self.executor.stream(requests()):
            # Fully-cached batches queued ahead of this result trained
            # first: batch order is the determinism contract.
            while plans and plans[0].request_roots is None:
                losses.append(self._train_plan(plans.popleft(), None))
            losses.append(self._train_plan(plans.popleft(), result))
        while plans:
            losses.append(self._train_plan(plans.popleft(), None))

        self._trained_epochs += 1
        return float(np.mean(losses))

    def _plan_batch(self, batch_roots: np.ndarray, rows: np.ndarray) -> _BatchPlan:
        """Probe the cache and decide what (if anything) to sample."""
        if self.cache is None:
            return _BatchPlan(
                roots=batch_roots, label_rows=rows, request_roots=batch_roots
            )
        hits = self.cache.probe(batch_roots)
        missing = np.unique(batch_roots[~hits])
        return _BatchPlan(
            roots=batch_roots,
            label_rows=rows,
            request_roots=missing if missing.size else None,
            hits=int(hits.sum()),
            misses=int(batch_roots.size - hits.sum()),
        )

    def _train_plan(
        self, plan: _BatchPlan, result: Optional[SampleResult]
    ) -> float:
        """Assemble one micro-batch's layers and run its training step."""
        if self.cache is not None:
            if result is not None:
                self.cache.insert(plan.request_roots, result)
            layers = self.cache.assemble(plan.roots, self.fanouts)
            self.store.record_neighborhood(plan.hits, plan.misses)
        else:
            layers = result.layers
        return self._train_step(layers, self.labels[plan.roots])

    def _train_step(
        self, layers: List[np.ndarray], labels: np.ndarray
    ) -> float:
        """Gather → forward/backward → scatter-add → step (one batch)."""
        features = [self.embeddings.lookup(layer) for layer in layers]

        def grad_fn(embeddings: np.ndarray) -> Tuple[float, np.ndarray]:
            logits = self.head.forward(embeddings)
            loss, grad_logits = multilabel_loss(logits, labels)
            return loss, self.head.backward(grad_logits)

        _, loss = self.encoder.forward_backward(features, grad_fn)
        for layer, grad in zip(layers, self.encoder.input_gradients):
            self.embeddings.accumulate_grad(
                layer.reshape(-1), grad.reshape(-1, self.embeddings.dim)
            )
        self.embeddings.step(self.lr)
        self.head.step(self.lr)
        self.encoder.step(self.lr)
        self._micro_batches += 1
        self._samples += int(layers[0].size)
        return loss

    # ----------------------------------------------------------- inspection
    def weights_digest(self) -> str:
        """SHA-256 over every trainable array, in a fixed order.

        Bit-identical runs (the workers=0/1/2/4 parity bar) produce the
        same digest; any single differing bit changes it.
        """
        digest = hashlib.sha256()
        for shard in self.embeddings.shards:
            digest.update(np.ascontiguousarray(shard.rows).tobytes())
        for dense in self.encoder.dense_layers() + [self.head]:
            digest.update(np.ascontiguousarray(dense.weight).tobytes())
            digest.update(np.ascontiguousarray(dense.bias).tobytes())
        return digest.hexdigest()
