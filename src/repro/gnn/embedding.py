"""Trainable embedding table (the optional CPU embedding stage).

LSD-GNN pipelines often learn an embedding per node ID alongside (or
instead of) raw attributes; the paper keeps this stage on CPU. The
table supports sparse gather/scatter-grad SGD, which is all the
mini-batch workflow needs.

:class:`ShardedEmbeddingTable` splits the same table across the store
partitioner's shards for the pipelined trainer: gathers deduplicate
rows per micro-batch, gradients scatter-add back to the owning shard,
and because every occurrence of a node routes to exactly one shard in
occurrence order, the float32 sums are bit-identical to the dense
:class:`EmbeddingTable` at any shard count.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.gnn.layers import segment_sum
from repro.graph.partition import Partitioner


class EmbeddingTable:
    """Dense embedding matrix with sparse mini-batch updates."""

    def __init__(self, num_nodes: int, dim: int, seed: int = 0) -> None:
        if num_nodes <= 0 or dim <= 0:
            raise ConfigurationError("num_nodes and dim must be positive")
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(dim)
        self.table = rng.uniform(-scale, scale, size=(num_nodes, dim)).astype(
            np.float32
        )
        self._pending_nodes = np.empty(0, dtype=np.int64)
        self._pending_grads = np.empty((0, dim), dtype=np.float32)

    @property
    def num_nodes(self) -> int:
        return int(self.table.shape[0])

    @property
    def dim(self) -> int:
        return int(self.table.shape[1])

    def lookup(self, nodes: np.ndarray) -> np.ndarray:
        """Gather embeddings; works for any integer-shaped index tensor."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise ConfigurationError("embedding lookup outside [0, num_nodes)")
        return self.table[nodes]

    def accumulate_grad(self, nodes: np.ndarray, grads: np.ndarray) -> None:
        """Accumulate gradients for the looked-up rows.

        Duplicate node IDs within a batch sum their gradients, matching
        dense autograd semantics. The merge is one segment-sum scatter
        over the pending rows plus the batch — no per-row Python loop
        (``np.add.at`` applies additions in occurrence order, so the
        float32 sums match the historical loop bit for bit).
        """
        nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
        grads = np.asarray(grads, dtype=np.float32).reshape(-1, self.dim)
        if nodes.size != grads.shape[0]:
            raise ConfigurationError(
                f"{nodes.size} indices but {grads.shape[0]} gradient rows"
            )
        all_nodes = np.concatenate([self._pending_nodes, nodes])
        all_grads = np.concatenate([self._pending_grads, grads])
        unique, inverse = np.unique(all_nodes, return_inverse=True)
        self._pending_nodes = unique
        self._pending_grads = segment_sum(all_grads, inverse, unique.size)

    def step(self, lr: float) -> None:
        """Apply pending sparse SGD updates.

        Pending node IDs are unique (deduplicated at accumulation), so
        the scatter-subtract is a plain fancy-index update.
        """
        self.table[self._pending_nodes] -= lr * self._pending_grads
        self._pending_nodes = np.empty(0, dtype=np.int64)
        self._pending_grads = np.empty((0, self.dim), dtype=np.float32)

    @property
    def pending_rows(self) -> int:
        """Number of rows with accumulated (unapplied) gradients."""
        return int(self._pending_nodes.size)


class EmbeddingShard:
    """One partition's rows of a :class:`ShardedEmbeddingTable`.

    The shard owns a disjoint subset of global node IDs and stores only
    those rows. Gradient routing is the caller's job; a batch containing
    a node this shard does not own is a contract violation and raises.
    """

    def __init__(
        self, shard: int, node_ids: np.ndarray, rows: np.ndarray
    ) -> None:
        node_ids = np.asarray(node_ids, dtype=np.int64).reshape(-1)
        if node_ids.size > 1 and not np.all(np.diff(node_ids) > 0):
            raise ConfigurationError("shard node_ids must be strictly sorted")
        rows = np.asarray(rows, dtype=np.float32)
        if rows.shape[0] != node_ids.size:
            raise ConfigurationError(
                f"{node_ids.size} node IDs but {rows.shape[0]} rows"
            )
        self.shard = shard
        self.node_ids = node_ids
        self.rows = rows
        self._pending_nodes = np.empty(0, dtype=np.int64)
        self._pending_grads = np.empty((0, self.dim), dtype=np.float32)

    @property
    def dim(self) -> int:
        return int(self.rows.shape[1])

    def _local(self, nodes: np.ndarray) -> np.ndarray:
        """Map global node IDs to local row indices (raises if unowned)."""
        local = np.searchsorted(self.node_ids, nodes)
        bad = (local >= self.node_ids.size) | (
            self.node_ids[np.minimum(local, self.node_ids.size - 1)] != nodes
        )
        if nodes.size and bad.any():
            offenders = np.asarray(nodes)[bad][:5].tolist()
            raise ConfigurationError(
                f"node IDs {offenders} are not owned by embedding shard "
                f"{self.shard}; gradients must be routed to the owning shard"
            )
        return local

    def lookup(self, nodes: np.ndarray) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
        return self.rows[self._local(nodes)]

    def accumulate_grad(self, nodes: np.ndarray, grads: np.ndarray) -> None:
        """Scatter-add gradients for owned rows (occurrence order).

        Same dedup-merge as :meth:`EmbeddingTable.accumulate_grad`; the
        segment-sum applies additions in occurrence order, so per-node
        float32 sums match the dense table bit for bit.
        """
        nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
        grads = np.asarray(grads, dtype=np.float32).reshape(-1, self.dim)
        if nodes.size != grads.shape[0]:
            raise ConfigurationError(
                f"{nodes.size} indices but {grads.shape[0]} gradient rows"
            )
        self._local(nodes)  # ownership check before any state mutation
        all_nodes = np.concatenate([self._pending_nodes, nodes])
        all_grads = np.concatenate([self._pending_grads, grads])
        unique, inverse = np.unique(all_nodes, return_inverse=True)
        self._pending_nodes = unique
        self._pending_grads = segment_sum(all_grads, inverse, unique.size)

    def step(self, lr: float) -> None:
        self.rows[self._local(self._pending_nodes)] -= lr * self._pending_grads
        self._pending_nodes = np.empty(0, dtype=np.int64)
        self._pending_grads = np.empty((0, self.dim), dtype=np.float32)

    @property
    def pending_rows(self) -> int:
        return int(self._pending_nodes.size)


class ShardedEmbeddingTable:
    """Embedding table sharded by the store's partitioner.

    Initialization draws the *same* RNG stream as ``EmbeddingTable(
    num_nodes, dim, seed)`` and then splits rows by owner, so a sharded
    table at any partition count starts bit-identical to the dense one
    and — because all occurrences of a node route to its single owning
    shard in occurrence order — stays bit-identical under training.
    """

    def __init__(
        self,
        num_nodes: int,
        dim: int,
        partitioner: Partitioner,
        seed: int = 0,
    ) -> None:
        if num_nodes <= 0 or dim <= 0:
            raise ConfigurationError("num_nodes and dim must be positive")
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(dim)
        dense = rng.uniform(-scale, scale, size=(num_nodes, dim)).astype(
            np.float32
        )
        self.partitioner = partitioner
        all_nodes = np.arange(num_nodes, dtype=np.int64)
        owners = np.asarray(partitioner.partition_of(all_nodes), dtype=np.int64)
        self.shards: List[EmbeddingShard] = []
        for shard in range(partitioner.num_partitions):
            owned = all_nodes[owners == shard]
            self.shards.append(EmbeddingShard(shard, owned, dense[owned]))
        self._num_nodes = num_nodes
        self._dim = dim

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def _check_range(self, nodes: np.ndarray) -> None:
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self._num_nodes):
            raise ConfigurationError("embedding lookup outside [0, num_nodes)")

    def lookup(self, nodes: np.ndarray) -> np.ndarray:
        """Dedup'd gather: each distinct row is fetched from its owning
        shard once, then broadcast back to every occurrence."""
        nodes = np.asarray(nodes, dtype=np.int64)
        self._check_range(nodes.reshape(-1))
        flat = nodes.reshape(-1)
        unique, inverse = np.unique(flat, return_inverse=True)
        gathered = np.empty((unique.size, self._dim), dtype=np.float32)
        owners = np.asarray(self.partitioner.partition_of(unique), dtype=np.int64)
        for shard_obj in self.shards:
            mask = owners == shard_obj.shard
            if mask.any():
                gathered[mask] = shard_obj.lookup(unique[mask])
        return gathered[inverse].reshape(nodes.shape + (self._dim,))

    def accumulate_grad(self, nodes: np.ndarray, grads: np.ndarray) -> None:
        """Route each gradient row to its owning shard (scatter-add).

        Boolean-mask routing preserves occurrence order within a shard,
        which keeps per-node float32 accumulation bit-identical to the
        dense table.
        """
        nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
        self._check_range(nodes)
        grads = np.asarray(grads, dtype=np.float32).reshape(-1, self._dim)
        if nodes.size != grads.shape[0]:
            raise ConfigurationError(
                f"{nodes.size} indices but {grads.shape[0]} gradient rows"
            )
        owners = np.asarray(self.partitioner.partition_of(nodes), dtype=np.int64)
        for shard_obj in self.shards:
            mask = owners == shard_obj.shard
            if mask.any():
                shard_obj.accumulate_grad(nodes[mask], grads[mask])

    def step(self, lr: float) -> None:
        """One optimizer step, shard by shard in shard order."""
        for shard_obj in self.shards:
            shard_obj.step(lr)

    @property
    def pending_rows(self) -> int:
        return sum(shard.pending_rows for shard in self.shards)

    def to_dense(self) -> np.ndarray:
        """Reassemble the full (num_nodes, dim) table (parity checks)."""
        dense = np.empty((self._num_nodes, self._dim), dtype=np.float32)
        for shard_obj in self.shards:
            dense[shard_obj.node_ids] = shard_obj.rows
        return dense
