"""Trainable embedding table (the optional CPU embedding stage).

LSD-GNN pipelines often learn an embedding per node ID alongside (or
instead of) raw attributes; the paper keeps this stage on CPU. The
table supports sparse gather/scatter-grad SGD, which is all the
mini-batch workflow needs.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import ConfigurationError


class EmbeddingTable:
    """Dense embedding matrix with sparse mini-batch updates."""

    def __init__(self, num_nodes: int, dim: int, seed: int = 0) -> None:
        if num_nodes <= 0 or dim <= 0:
            raise ConfigurationError("num_nodes and dim must be positive")
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(dim)
        self.table = rng.uniform(-scale, scale, size=(num_nodes, dim)).astype(
            np.float32
        )
        self._pending: Dict[int, np.ndarray] = {}

    @property
    def num_nodes(self) -> int:
        return int(self.table.shape[0])

    @property
    def dim(self) -> int:
        return int(self.table.shape[1])

    def lookup(self, nodes: np.ndarray) -> np.ndarray:
        """Gather embeddings; works for any integer-shaped index tensor."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise ConfigurationError("embedding lookup outside [0, num_nodes)")
        return self.table[nodes]

    def accumulate_grad(self, nodes: np.ndarray, grads: np.ndarray) -> None:
        """Accumulate gradients for the looked-up rows.

        Duplicate node IDs within a batch sum their gradients, matching
        dense autograd semantics.
        """
        nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
        grads = np.asarray(grads, dtype=np.float32).reshape(-1, self.dim)
        if nodes.size != grads.shape[0]:
            raise ConfigurationError(
                f"{nodes.size} indices but {grads.shape[0]} gradient rows"
            )
        for node, grad in zip(nodes, grads):
            key = int(node)
            if key in self._pending:
                self._pending[key] = self._pending[key] + grad
            else:
                self._pending[key] = grad.copy()

    def step(self, lr: float) -> None:
        """Apply pending sparse SGD updates."""
        for node, grad in self._pending.items():
            self.table[node] -= lr * grad
        self._pending.clear()

    @property
    def pending_rows(self) -> int:
        """Number of rows with accumulated (unapplied) gradients."""
        return len(self._pending)
