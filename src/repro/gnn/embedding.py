"""Trainable embedding table (the optional CPU embedding stage).

LSD-GNN pipelines often learn an embedding per node ID alongside (or
instead of) raw attributes; the paper keeps this stage on CPU. The
table supports sparse gather/scatter-grad SGD, which is all the
mini-batch workflow needs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gnn.layers import segment_sum


class EmbeddingTable:
    """Dense embedding matrix with sparse mini-batch updates."""

    def __init__(self, num_nodes: int, dim: int, seed: int = 0) -> None:
        if num_nodes <= 0 or dim <= 0:
            raise ConfigurationError("num_nodes and dim must be positive")
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(dim)
        self.table = rng.uniform(-scale, scale, size=(num_nodes, dim)).astype(
            np.float32
        )
        self._pending_nodes = np.empty(0, dtype=np.int64)
        self._pending_grads = np.empty((0, dim), dtype=np.float32)

    @property
    def num_nodes(self) -> int:
        return int(self.table.shape[0])

    @property
    def dim(self) -> int:
        return int(self.table.shape[1])

    def lookup(self, nodes: np.ndarray) -> np.ndarray:
        """Gather embeddings; works for any integer-shaped index tensor."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise ConfigurationError("embedding lookup outside [0, num_nodes)")
        return self.table[nodes]

    def accumulate_grad(self, nodes: np.ndarray, grads: np.ndarray) -> None:
        """Accumulate gradients for the looked-up rows.

        Duplicate node IDs within a batch sum their gradients, matching
        dense autograd semantics. The merge is one segment-sum scatter
        over the pending rows plus the batch — no per-row Python loop
        (``np.add.at`` applies additions in occurrence order, so the
        float32 sums match the historical loop bit for bit).
        """
        nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
        grads = np.asarray(grads, dtype=np.float32).reshape(-1, self.dim)
        if nodes.size != grads.shape[0]:
            raise ConfigurationError(
                f"{nodes.size} indices but {grads.shape[0]} gradient rows"
            )
        all_nodes = np.concatenate([self._pending_nodes, nodes])
        all_grads = np.concatenate([self._pending_grads, grads])
        unique, inverse = np.unique(all_nodes, return_inverse=True)
        self._pending_nodes = unique
        self._pending_grads = segment_sum(all_grads, inverse, unique.size)

    def step(self, lr: float) -> None:
        """Apply pending sparse SGD updates.

        Pending node IDs are unique (deduplicated at accumulation), so
        the scatter-subtract is a plain fancy-index update.
        """
        self.table[self._pending_nodes] -= lr * self._pending_grads
        self._pending_nodes = np.empty(0, dtype=np.int64)
        self._pending_grads = np.empty((0, self.dim), dtype=np.float32)

    @property
    def pending_rows(self) -> int:
        """Number of rows with accumulated (unapplied) gradients."""
        return int(self._pending_nodes.size)
