"""Neural-network layers for mini-batch GNN compute (NumPy).

Implements the Aggregate/Combine formulation of Section 2.1:

    a_v^k = Aggregate(h_u^{k-1} : u in S(v) + v)
    h_v^k = Combine(a_v^k)

with the graphSAGE family of aggregators. Forward and backward passes
are hand-written; parameters update with SGD. Shapes follow the sampled
mini-batch layout: hop-``k`` activations have shape
``(batch, width_k, dim)`` where ``width_k`` is the product of fanouts.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.framework.kernels import default_kernels


def segment_sum(
    values: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Sum ``values`` rows into ``num_segments`` buckets by ``segment_ids``.

    The vectorized neighbor-aggregation primitive (``np.add.at`` is an
    unbuffered scatter-add, so duplicate segment IDs accumulate —
    unlike plain fancy-index assignment which silently drops them).
    Row ``i`` of the result is ``sum(values[segment_ids == i])``; empty
    segments are zero. Validation runs here; the reduction is delegated
    to the process default kernel tier (every tier is bit-identical).
    """
    values = np.asarray(values)
    segment_ids = np.asarray(segment_ids, dtype=np.int64).reshape(-1)
    if segment_ids.size != values.shape[0]:
        raise ConfigurationError(
            f"{segment_ids.size} segment ids for {values.shape[0]} rows"
        )
    if segment_ids.size and (
        segment_ids.min() < 0 or segment_ids.max() >= num_segments
    ):
        raise ConfigurationError("segment ids outside [0, num_segments)")
    return default_kernels().segment_sum(values, segment_ids, num_segments)


def segment_mean(
    values: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Per-segment mean of ``values`` rows; empty segments are zero."""
    totals = segment_sum(values, segment_ids, num_segments)
    counts = np.bincount(
        np.asarray(segment_ids, dtype=np.int64).reshape(-1),
        minlength=num_segments,
    )
    counts = counts.reshape((num_segments,) + (1,) * (totals.ndim - 1))
    return np.divide(
        totals,
        counts,
        out=np.zeros_like(totals, dtype=np.result_type(totals, np.float32)),
        where=counts > 0,
    )


def ragged_segment_sum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sum contiguous ragged segments: row ``i`` covers
    ``values[offsets[i]:offsets[i + 1]]``.

    The CSR-adjacency form of :func:`segment_sum` (one reduction per
    neighborhood, as produced by
    :meth:`~repro.memstore.store.PartitionedStore.get_neighbors_batch`),
    computed in one ``np.add.reduceat`` sweep. Empty segments are zero.
    """
    values = np.asarray(values)
    offsets = np.asarray(offsets, dtype=np.int64).reshape(-1)
    if offsets.size < 1 or offsets[0] != 0 or offsets[-1] != values.shape[0]:
        raise ConfigurationError(
            "offsets must run from 0 to len(values) inclusive"
        )
    if np.any(np.diff(offsets) < 0):
        raise ConfigurationError("offsets must be non-decreasing")
    return default_kernels().ragged_segment_sum(values, offsets)


def relu(x: np.ndarray) -> np.ndarray:
    """Elementwise rectifier."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of :func:`relu` evaluated at pre-activation ``x``."""
    return (x > 0.0).astype(x.dtype)


class Dense:
    """Fully connected layer ``y = act(x @ W + b)``."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        seed: int = 0,
    ) -> None:
        if in_dim <= 0 or out_dim <= 0:
            raise ConfigurationError("layer dimensions must be positive")
        if activation not in ("relu", "linear"):
            raise ConfigurationError(f"unsupported activation {activation!r}")
        rng = np.random.default_rng(seed)
        limit = np.sqrt(6.0 / (in_dim + out_dim))
        self.weight = rng.uniform(-limit, limit, size=(in_dim, out_dim)).astype(
            np.float32
        )
        self.bias = np.zeros(out_dim, dtype=np.float32)
        self.activation = activation
        self._x: np.ndarray = np.empty(0, dtype=np.float32)
        self._pre: np.ndarray = np.empty(0, dtype=np.float32)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)

    @property
    def in_dim(self) -> int:
        return self.weight.shape[0]

    @property
    def out_dim(self) -> int:
        return self.weight.shape[1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches activations for backward."""
        self._x = x
        self._pre = x @ self.weight + self.bias
        if self.activation == "relu":
            return relu(self._pre)
        return self._pre

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward pass; accumulates parameter grads, returns grad wrt x."""
        if self.activation == "relu":
            grad_out = grad_out * relu_grad(self._pre)
        flat_x = self._x.reshape(-1, self.in_dim)
        flat_g = grad_out.reshape(-1, self.out_dim)
        self.grad_weight += flat_x.T @ flat_g
        self.grad_bias += flat_g.sum(axis=0)
        return grad_out @ self.weight.T

    def step(self, lr: float) -> None:
        """SGD update and gradient reset."""
        self.weight -= lr * self.grad_weight
        self.bias -= lr * self.grad_bias
        self.zero_grad()

    def zero_grad(self) -> None:
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)

    def parameters(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}


class MeanAggregator:
    """Mean over the neighbor axis."""

    def forward(self, neighbors: np.ndarray) -> np.ndarray:
        """``neighbors``: (batch, groups, fanout, dim) -> (batch, groups, dim)."""
        self._fanout = neighbors.shape[-2]
        return neighbors.mean(axis=-2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        expanded = np.expand_dims(grad_out / self._fanout, axis=-2)
        return np.broadcast_to(
            expanded, grad_out.shape[:-1] + (self._fanout, grad_out.shape[-1])
        ).copy()


class MaxPoolAggregator:
    """Elementwise max over the neighbor axis (graphSAGE-max)."""

    def forward(self, neighbors: np.ndarray) -> np.ndarray:
        self._input = neighbors
        self._out = neighbors.max(axis=-2)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        # Route gradient to the (first) argmax along the neighbor axis.
        is_max = self._input == np.expand_dims(self._out, axis=-2)
        first_max = np.cumsum(is_max, axis=-2) == 1
        mask = (is_max & first_max).astype(grad_out.dtype)
        return mask * np.expand_dims(grad_out, axis=-2)


_AGGREGATORS = {"mean": MeanAggregator, "max": MaxPoolAggregator}


class SageLayer:
    """One graphSAGE layer: transform neighbors, aggregate, combine.

    ``h_v' = relu(W_combine @ concat(h_v, Agg(relu(W_pool @ h_u))))``
    followed by L2 normalization (as in the original graphSAGE).
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        aggregator: str = "max",
        normalize: bool = True,
        seed: int = 0,
    ) -> None:
        if aggregator not in _AGGREGATORS:
            raise ConfigurationError(
                f"unknown aggregator {aggregator!r}; expected one of "
                f"{sorted(_AGGREGATORS)}"
            )
        self.pool = Dense(in_dim, out_dim, activation="relu", seed=seed)
        self.combine = Dense(in_dim + out_dim, out_dim, activation="relu", seed=seed + 1)
        self.aggregator = _AGGREGATORS[aggregator]()
        self.normalize = normalize

    def forward(self, self_feats: np.ndarray, neighbor_feats: np.ndarray) -> np.ndarray:
        """Forward one hop.

        ``self_feats``: (batch, groups, dim_in)
        ``neighbor_feats``: (batch, groups, fanout, dim_in)
        Returns (batch, groups, dim_out).
        """
        pooled = self.pool.forward(neighbor_feats)
        aggregated = self.aggregator.forward(pooled)
        self._concat = np.concatenate([self_feats, aggregated], axis=-1)
        out = self.combine.forward(self._concat)
        if self.normalize:
            self._norm = np.linalg.norm(out, axis=-1, keepdims=True) + 1e-12
            self._normed = out / self._norm
            return self._normed
        return out

    def backward(self, grad_out: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Backward one hop; returns (grad_self, grad_neighbors)."""
        if self.normalize:
            # d(x/||x||) = (I - nn^T)/||x|| applied to grad
            dot = np.sum(grad_out * self._normed, axis=-1, keepdims=True)
            grad_out = (grad_out - self._normed * dot) / self._norm
        grad_concat = self.combine.backward(grad_out)
        split = self._concat.shape[-1] - self.pool.out_dim
        grad_self = grad_concat[..., :split]
        grad_agg = grad_concat[..., split:]
        grad_pooled = self.aggregator.backward(grad_agg)
        grad_neighbors = self.pool.backward(grad_pooled)
        return grad_self, grad_neighbors

    def step(self, lr: float) -> None:
        self.pool.step(lr)
        self.combine.step(lr)

    def layers(self) -> List[Dense]:
        return [self.pool, self.combine]
