"""Mini-batch training: losses and a supervised trainer.

The trainer reproduces the 2-step LSD-GNN workflow at small scale:
sample a mini-batch neighborhood with the framework sampler, then run
dense NN compute on it. It is used by the examples and by the
streaming-vs-uniform sampler accuracy-parity experiment (Tech-2).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.framework.requests import SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.gnn.layers import Dense
from repro.gnn.metrics import micro_f1
from repro.gnn.models import GraphSageEncoder


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def multilabel_loss64(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """:func:`multilabel_loss` with the gradient left in float64.

    Every intermediate (sigmoid, log, mean, the gradient itself) stays
    in float64; callers that feed deterministic float32 accumulators
    (the pipelined trainer's embedding scatter-add) take this form and
    cast exactly once, at their own boundary.
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if logits.shape != labels.shape:
        raise ConfigurationError(
            f"shape mismatch: logits {logits.shape} vs labels {labels.shape}"
        )
    probs = _sigmoid(logits)
    eps = 1e-12
    loss = -np.mean(
        labels * np.log(probs + eps) + (1 - labels) * np.log(1 - probs + eps)
    )
    grad = (probs - labels) / logits.size
    return float(loss), grad


def multilabel_loss(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean sigmoid binary cross-entropy; returns (loss, grad_logits).

    The gradient is computed in float64 end-to-end and cast to float32
    exactly once, here at the public boundary — the historical float32
    values are pinned by regression test.
    """
    loss, grad = multilabel_loss64(logits, labels)
    return loss, grad.astype(np.float32)


def link_prediction_loss64(scores: np.ndarray) -> Tuple[float, np.ndarray]:
    """:func:`link_prediction_loss` with the gradient left in float64."""
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2 or scores.shape[1] < 2:
        raise ConfigurationError("scores must be (batch, 1 + num_negatives)")
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    loss = float(np.mean(-np.log(probs[:, 0] + 1e-12)))
    grad = probs.copy()
    grad[:, 0] -= 1.0
    grad /= scores.shape[0]
    return loss, grad


def link_prediction_loss(scores: np.ndarray) -> Tuple[float, np.ndarray]:
    """Sampled-softmax loss: column 0 is the positive pair's score,
    remaining columns are negatives. Returns (loss, grad_scores).

    Float64 internally (:func:`link_prediction_loss64`), cast to
    float32 once at this boundary.
    """
    loss, grad = link_prediction_loss64(scores)
    return loss, grad.astype(np.float32)


class Trainer:
    """Supervised multi-label node classification (PPI-style).

    Wires a :class:`MultiHopSampler`, a :class:`GraphSageEncoder`, and a
    linear classification head. Used to demonstrate that the streaming
    sampler reaches the same accuracy as uniform sampling.
    """

    def __init__(
        self,
        sampler: MultiHopSampler,
        encoder: GraphSageEncoder,
        num_labels: int,
        lr: float = 0.05,
        seed: int = 0,
    ) -> None:
        if num_labels <= 0:
            raise ConfigurationError(f"num_labels must be positive, got {num_labels}")
        if lr <= 0:
            raise ConfigurationError(f"lr must be positive, got {lr}")
        self.sampler = sampler
        self.encoder = encoder
        hidden = encoder.layers[-1].combine.out_dim
        self.head = Dense(hidden, num_labels, activation="linear", seed=seed)
        self.lr = lr

    def _sample_features(self, roots: np.ndarray):
        request = SampleRequest(
            roots=roots, fanouts=self.encoder.fanouts, with_attributes=True
        )
        result = self.sampler.sample(request)
        return result.attributes

    def train_step(self, roots: np.ndarray, labels: np.ndarray) -> float:
        """One SGD step; returns the batch loss."""
        features = self._sample_features(np.asarray(roots, dtype=np.int64))
        labels = np.asarray(labels, dtype=np.float32)

        def grad_fn(embeddings: np.ndarray):
            logits = self.head.forward(embeddings)
            loss, grad_logits = multilabel_loss(logits, labels)
            grad_emb = self.head.backward(grad_logits)
            return loss, grad_emb

        _, loss = self.encoder.forward_backward(features, grad_fn)
        self.head.step(self.lr)
        self.encoder.step(self.lr)
        return loss

    def predict(self, roots: np.ndarray) -> np.ndarray:
        """Binary multi-label predictions for ``roots``."""
        features = self._sample_features(np.asarray(roots, dtype=np.int64))
        embeddings = self.encoder.forward(features)
        logits = self.head.forward(embeddings)
        return (logits > 0).astype(np.int64)

    def evaluate(self, roots: np.ndarray, labels: np.ndarray) -> float:
        """Micro-F1 on a held-out root set."""
        predictions = self.predict(roots)
        return micro_f1(predictions, np.asarray(labels, dtype=np.int64))


def train_to_convergence(
    trainer: Trainer,
    roots: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 64,
    epochs: int = 5,
    rng: Optional[np.random.Generator] = None,
    on_epoch: Optional[Callable[[int, float], None]] = None,
) -> float:
    """Simple epoch loop; returns the final epoch's mean loss."""
    if rng is None:
        rng = np.random.default_rng(0)
    roots = np.asarray(roots, dtype=np.int64)
    labels = np.asarray(labels)
    mean_loss = float("nan")
    for epoch in range(epochs):
        order = rng.permutation(roots.size)
        losses = []
        for start in range(0, roots.size, batch_size):
            batch = order[start : start + batch_size]
            if batch.size == 0:
                continue
            losses.append(trainer.train_step(roots[batch], labels[batch]))
        mean_loss = float(np.mean(losses)) if losses else float("nan")
        if on_epoch is not None:
            on_epoch(epoch, mean_loss)
    return mean_loss
