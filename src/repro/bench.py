"""Wall-clock benchmark timing.

This is the **only** module in ``repro`` allowed to read the host
clock: the ``det-wallclock`` lint rule allowlists it. Everything
simulated takes time from the deterministic event kernel; the one
legitimate host-time consumer is benchmark reporting (``repro
bench-sampler`` and friends), which goes through :func:`bench_timer`
so the exemption stays greppable and reviewed.
"""

from __future__ import annotations

import time
from typing import Optional


class BenchTimer:
    """Context manager measuring elapsed host wall-clock seconds.

    >>> with bench_timer() as timer:
    ...     do_work()
    >>> timer.elapsed_s  # doctest: +SKIP
    0.0123
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._stop: Optional[float] = None

    def __enter__(self) -> "BenchTimer":
        self._stop = None
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop = time.perf_counter()

    @property
    def elapsed_s(self) -> float:
        """Seconds from entry to exit (or to now, while still running)."""
        if self._start is None:
            raise RuntimeError("BenchTimer was never entered")
        if self._stop is None:
            return time.perf_counter() - self._start
        return self._stop - self._start


def bench_timer() -> BenchTimer:
    """The allowlisted way to time a benchmark region."""
    return BenchTimer()
