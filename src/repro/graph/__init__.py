"""Graph substrate: CSR storage, synthetic generators, datasets, partitioning."""

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    erdos_renyi_graph,
    power_law_graph,
    scaled_synthesis,
)
from repro.graph.datasets import (
    DATASETS,
    DatasetSpec,
    get_dataset,
    instantiate_dataset,
)
from repro.graph.hetero import HeteroGraph, make_ecommerce_graph
from repro.graph.dynamic import DynamicGraph, GraphView, simulate_growth
from repro.graph.partition import (
    HashPartitioner,
    LdgPartitioner,
    Partitioner,
    RangePartitioner,
    edge_cut_fraction,
    locality_fraction,
)

__all__ = [
    "CSRGraph",
    "erdos_renyi_graph",
    "power_law_graph",
    "scaled_synthesis",
    "DATASETS",
    "DatasetSpec",
    "get_dataset",
    "instantiate_dataset",
    "HeteroGraph",
    "make_ecommerce_graph",
    "DynamicGraph",
    "GraphView",
    "simulate_growth",
    "HashPartitioner",
    "LdgPartitioner",
    "Partitioner",
    "RangePartitioner",
    "edge_cut_fraction",
    "locality_fraction",
]
