"""Synthetic graph generators.

The paper's six benchmark graphs (Table 2) are Alibaba-internal, so we
instantiate synthetic graphs with matching shape: the degree distribution
of e-commerce graphs is heavy-tailed, and the ``syn`` dataset in the
paper is itself "a synthesized large graph ... with a synthesized
adjacent matrix scaled from a smaller graph". We provide the same scaling
operation (:func:`scaled_synthesis`).

All generators are deterministic given a seed and return
:class:`~repro.graph.csr.CSRGraph`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph


def _make_attributes(
    num_nodes: int, attr_len: int, rng: np.random.Generator
) -> Optional[np.ndarray]:
    if attr_len <= 0:
        return None
    return rng.standard_normal((num_nodes, attr_len)).astype(np.float32)


def power_law_graph(
    num_nodes: int,
    avg_degree: float,
    attr_len: int = 0,
    exponent: float = 2.1,
    seed: int = 0,
) -> CSRGraph:
    """Directed graph whose out-neighbors are drawn from a Zipf-like law.

    Each node gets a degree drawn around ``avg_degree`` and picks
    neighbors with probability proportional to ``rank ** -1/(exponent-1)``
    so popular nodes attract most edges, matching the skew of e-commerce
    graphs. Duplicate edges are allowed (multi-edges exist in real logs).
    """
    if num_nodes <= 0:
        raise ConfigurationError(f"num_nodes must be positive, got {num_nodes}")
    if avg_degree < 0:
        raise ConfigurationError(f"avg_degree must be non-negative, got {avg_degree}")
    if exponent <= 1.0:
        raise ConfigurationError(f"exponent must exceed 1.0, got {exponent}")
    rng = np.random.default_rng(seed)
    degrees = rng.poisson(avg_degree, size=num_nodes).astype(np.int64)
    total_edges = int(degrees.sum())
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    # Target popularity: node i has weight (i + 1) ** -alpha after a random
    # permutation, so IDs do not correlate with popularity.
    alpha = 1.0 / (exponent - 1.0)
    weights = np.arange(1, num_nodes + 1, dtype=np.float64) ** -alpha
    weights /= weights.sum()
    permutation = rng.permutation(num_nodes)
    indices = permutation[
        rng.choice(num_nodes, size=total_edges, replace=True, p=weights)
    ].astype(np.int64)
    node_attr = _make_attributes(num_nodes, attr_len, rng)
    return CSRGraph(indptr, indices, node_attr=node_attr)


def erdos_renyi_graph(
    num_nodes: int,
    avg_degree: float,
    attr_len: int = 0,
    seed: int = 0,
) -> CSRGraph:
    """Uniform random directed graph with Poisson degrees.

    Used as the non-skewed control in tests and ablations.
    """
    if num_nodes <= 0:
        raise ConfigurationError(f"num_nodes must be positive, got {num_nodes}")
    if avg_degree < 0:
        raise ConfigurationError(f"avg_degree must be non-negative, got {avg_degree}")
    rng = np.random.default_rng(seed)
    degrees = rng.poisson(avg_degree, size=num_nodes).astype(np.int64)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    indices = rng.integers(0, num_nodes, size=int(degrees.sum()), dtype=np.int64)
    node_attr = _make_attributes(num_nodes, attr_len, rng)
    return CSRGraph(indptr, indices, node_attr=node_attr)


def scaled_synthesis(
    base: CSRGraph,
    scale_factor: int,
    attr_len: Optional[int] = None,
    seed: int = 0,
) -> CSRGraph:
    """Scale a small graph into a larger one with the same adjacency shape.

    This reproduces how the paper builds its ``syn`` dataset: replicate
    the base adjacency structure ``scale_factor`` times into disjoint
    blocks, then rewire a small fraction (10%) of edges across blocks so
    the result is connected like one large graph rather than
    ``scale_factor`` islands. Per-node degree distribution is preserved
    exactly; cross-block edges preserve the endpoint's within-block
    popularity.
    """
    if scale_factor <= 0:
        raise ConfigurationError(f"scale_factor must be positive, got {scale_factor}")
    rng = np.random.default_rng(seed)
    n = base.num_nodes
    m = base.num_edges
    big_n = n * scale_factor
    big_m = m * scale_factor

    degrees = base.degrees()
    indptr = np.zeros(big_n + 1, dtype=np.int64)
    np.cumsum(np.tile(degrees, scale_factor), out=indptr[1:])

    block_offsets = np.repeat(np.arange(scale_factor, dtype=np.int64) * n, m)
    indices = np.tile(base.indices, scale_factor) + block_offsets

    if scale_factor > 1 and big_m > 0:
        num_rewired = max(1, big_m // 10)
        picks = rng.choice(big_m, size=num_rewired, replace=False)
        # Send the edge to the same within-block endpoint in a random
        # *other* block, preserving local popularity.
        local = indices[picks] % n
        shift = rng.integers(1, scale_factor, size=num_rewired, dtype=np.int64)
        new_block = (indices[picks] // n + shift) % scale_factor
        indices[picks] = new_block * n + local

    if attr_len is None:
        attr_len = base.attr_len
    node_attr = _make_attributes(big_n, attr_len, rng)
    return CSRGraph(indptr, indices, node_attr=node_attr)
