"""Node-to-server partitioning for the distributed graph store.

AliGraph shards the graph across server processes; every sampling hop
that crosses a shard boundary becomes a remote access. The partitioner
is the single source of truth for "which server owns node v" and hence
for the local/remote traffic split that drives all performance models.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import PartitionError


class Partitioner:
    """Base class: maps node IDs to partition (server) IDs."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise PartitionError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        self.num_partitions = num_partitions

    def partition_of(self, nodes: Sequence[int]) -> np.ndarray:
        """Partition ID for each node in ``nodes``."""
        raise NotImplementedError

    def owned_mask(self, nodes: Sequence[int], partition: int) -> np.ndarray:
        """Boolean mask of which ``nodes`` live on ``partition``."""
        self._check_partition(partition)
        return self.partition_of(nodes) == partition

    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < self.num_partitions:
            raise PartitionError(
                f"partition {partition} outside [0, {self.num_partitions})"
            )


class HashPartitioner(Partitioner):
    """Stateless multiplicative-hash partitioner (AliGraph's default).

    Spreads hot nodes uniformly; locality for a random neighbor is
    ``1 / num_partitions``.
    """

    _MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)  # golden-ratio mixing

    def partition_of(self, nodes: Sequence[int]) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        mixed = (nodes.astype(np.uint64) * self._MULTIPLIER) >> np.uint64(32)
        return (mixed % np.uint64(self.num_partitions)).astype(np.int64)


class RangePartitioner(Partitioner):
    """Contiguous-range partitioner.

    Keeps ID-adjacent nodes together, which benefits graphs whose IDs
    correlate with community structure (our ``scaled_synthesis`` blocks).
    """

    def __init__(self, num_partitions: int, num_nodes: int) -> None:
        super().__init__(num_partitions)
        if num_nodes <= 0:
            raise PartitionError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        self._chunk = -(-num_nodes // num_partitions)  # ceil division

    def partition_of(self, nodes: Sequence[int]) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise PartitionError("node batch contains IDs outside [0, num_nodes)")
        return nodes // self._chunk


class LdgPartitioner(Partitioner):
    """Linear Deterministic Greedy streaming partitioner.

    AliGraph ships four graph-partition algorithms because locality
    determines the remote fraction every performance model here depends
    on. LDG streams nodes once, placing each where it has most already-
    placed neighbors, weighted by a capacity penalty — a one-pass
    approximation of balanced min-cut that beats hashing on clustered
    graphs.
    """

    def __init__(self, num_partitions: int, graph, slack: float = 1.1) -> None:
        super().__init__(num_partitions)
        if slack < 1.0:
            raise PartitionError(f"slack must be >= 1.0, got {slack}")
        self.num_nodes = graph.num_nodes
        capacity = slack * graph.num_nodes / num_partitions
        assignment = np.full(graph.num_nodes, -1, dtype=np.int64)
        sizes = np.zeros(num_partitions, dtype=np.float64)
        for node in range(graph.num_nodes):
            neighbors = graph.neighbors(node)
            scores = np.zeros(num_partitions, dtype=np.float64)
            if neighbors.size:
                placed = assignment[neighbors]
                placed = placed[placed >= 0]
                if placed.size:
                    counts = np.bincount(placed, minlength=num_partitions)
                    scores = counts.astype(np.float64)
            penalty = 1.0 - sizes / capacity
            # repro: allow[units-magic] deterministic tie-break epsilon on
            # the placement score, not a unit conversion
            best = int(np.argmax(scores * np.maximum(penalty, 0.0) + 1e-9 * penalty))
            assignment[node] = best
            sizes[best] += 1.0
        self._assignment = assignment

    def partition_of(self, nodes: Sequence[int]) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise PartitionError("node batch contains IDs outside [0, num_nodes)")
        return self._assignment[nodes]

    def partition_sizes(self) -> np.ndarray:
        return np.bincount(self._assignment, minlength=self.num_partitions)


def edge_cut_fraction(partitioner: Partitioner, graph) -> float:
    """Fraction of edges crossing partitions (lower = better locality)."""
    if graph.num_edges == 0:
        return 0.0
    sources = np.repeat(
        np.arange(graph.num_nodes, dtype=np.int64), graph.degrees()
    )
    src_parts = partitioner.partition_of(sources)
    dst_parts = partitioner.partition_of(graph.indices)
    return float(np.mean(src_parts != dst_parts))


def locality_fraction(
    partitioner: Partitioner,
    sources: Sequence[int],
    destinations: Sequence[int],
) -> float:
    """Fraction of (source, destination) pairs on the same partition.

    This is the probability that a sampling hop stays local; the paper's
    hash-partitioned deployments see roughly ``1/num_servers``.
    """
    sources = np.asarray(sources, dtype=np.int64)
    destinations = np.asarray(destinations, dtype=np.int64)
    if sources.shape != destinations.shape:
        raise PartitionError("sources and destinations must have the same shape")
    if sources.size == 0:
        return 1.0
    same = partitioner.partition_of(sources) == partitioner.partition_of(destinations)
    return float(np.mean(same))
