"""Dynamic graph support: streaming edge updates with snapshotting.

E-commerce graphs grow continuously ("the data size keeps expanding",
§3.1); AliGraph supports dynamic graphs. :class:`DynamicGraph` keeps a
compact CSR base plus an append-friendly delta, answers neighbor
queries over the union, and periodically *compacts* the delta into a
fresh CSR — the standard LSM-like recipe for in-memory graph services.

Two version counters with distinct meanings:

``epoch``
    Monotonic *content* version: advances on every mutation
    (``add_node``/``add_edge``). Version-keyed consumers (caches,
    replay digests, snapshot tokens) key off this. Compaction does not
    advance it — the merged CSR holds exactly the same adjacency.
``version``
    *Layout* version: advances on every compaction (the base CSR
    object was swapped).

:meth:`DynamicGraph.view` mints a :class:`GraphView` — an immutable
snapshot token pinning one epoch. Views stay valid across concurrent
mutations *and* compactions: the delta lists are append-only, each
compaction installs a fresh delta dict instead of clearing the old one
in place, and the view holds references to the base/delta objects it
was minted against plus the per-node delta lengths at mint time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, GraphError
from repro.graph.csr import CSRGraph


def _block_ranges(counts: np.ndarray) -> np.ndarray:
    """``[0..c0), [0..c1), ...`` concatenated (per-block aranges)."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    exclusive = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=exclusive[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(exclusive, counts)


class GraphView:
    """An immutable, consistent snapshot of a :class:`DynamicGraph`.

    The snapshot token of the ingest path: every query answers as of
    ``epoch``, no matter how many mutations or compactions land on the
    underlying graph after the view was minted. Duck-types the subset
    of :class:`~repro.graph.csr.CSRGraph` the sampler and store read
    (``num_nodes``, ``neighbors``, ``attributes``, ``attr_len``,
    ``edge_attr``), so a view can stand in for a static graph on the
    read path.
    """

    #: Views never expose per-edge weights: delta edges carry none, and
    #: a weighted read over a half-weighted union would be meaningless.
    edge_attr = None

    def __init__(
        self,
        base: CSRGraph,
        delta: Dict[int, List[int]],
        delta_lens: Dict[int, int],
        extra_attr: Tuple[np.ndarray, ...],
        num_nodes: int,
        epoch: int,
    ) -> None:
        self._base = base
        self._delta = delta
        self._delta_lens = delta_lens
        self._extra_attr = extra_attr
        self._num_nodes = num_nodes
        self.epoch = epoch

    # ------------------------------------------------------------ shape
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def base(self) -> CSRGraph:
        """The CSR base this view reads (pre-compaction if one ran)."""
        return self._base

    @property
    def num_edges(self) -> int:
        return self._base.num_edges + sum(self._delta_lens.values())

    @property
    def delta_edges(self) -> int:
        """Edges this view reads from the append log, not the base."""
        return sum(self._delta_lens.values())

    @property
    def attr_len(self) -> int:
        return self._base.attr_len

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise GraphError(f"node {node} outside [0, {self._num_nodes})")

    # ---------------------------------------------------------- queries
    def base_degree(self, node: int) -> int:
        if node < self._base.num_nodes:
            return self._base.degree(node)
        return 0

    def delta_degree(self, node: int) -> int:
        return self._delta_lens.get(node, 0)

    def degree(self, node: int) -> int:
        self._check_node(node)
        return self.base_degree(node) + self.delta_degree(node)

    def neighbors(self, node: int) -> np.ndarray:
        """Union adjacency as of this view's epoch (delta edges last)."""
        self._check_node(node)
        parts = []
        if node < self._base.num_nodes:
            block = self._base.neighbors(node)
            if block.size:
                parts.append(block)
        take = self._delta_lens.get(node, 0)
        if take:
            parts.append(np.asarray(self._delta[node][:take], dtype=np.int64))
        if not parts:
            return np.empty(0, dtype=np.int64)
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def gather(
        self, nodes: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batch adjacency in concatenated-CSR form.

        Returns ``(values, offsets, base_degrees, delta_degrees)``:
        node ``i`` owns ``values[offsets[i]:offsets[i + 1]]``, its base
        block first, then its delta prefix. The base blocks are copied
        vectorized; delta prefixes (typically few nodes) fill in a
        short loop.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self._num_nodes):
            raise GraphError("node batch contains IDs outside [0, num_nodes)")
        base_deg = np.zeros(nodes.size, dtype=np.int64)
        starts = np.zeros(nodes.size, dtype=np.int64)
        in_base = nodes < self._base.num_nodes
        if in_base.any():
            b_starts, b_stops = self._base.neighbor_slices(nodes[in_base])
            starts[in_base] = b_starts
            base_deg[in_base] = b_stops - b_starts
        if self._delta_lens:
            delta_deg = np.fromiter(
                (self._delta_lens.get(int(n), 0) for n in nodes),
                dtype=np.int64,
                count=nodes.size,
            )
        else:
            delta_deg = np.zeros(nodes.size, dtype=np.int64)
        offsets = np.zeros(nodes.size + 1, dtype=np.int64)
        np.cumsum(base_deg + delta_deg, out=offsets[1:])
        values = np.empty(int(offsets[-1]), dtype=np.int64)
        if base_deg.sum():
            src = np.repeat(starts, base_deg) + _block_ranges(base_deg)
            dst = np.repeat(offsets[:-1], base_deg) + _block_ranges(base_deg)
            values[dst] = self._base.indices[src]
        if delta_deg.any():
            for i in np.flatnonzero(delta_deg):
                node = int(nodes[i])
                lo = offsets[i] + base_deg[i]
                values[lo : offsets[i + 1]] = self._delta[node][: int(delta_deg[i])]
        return values, offsets, base_deg, delta_deg

    def attributes(self, nodes: Sequence[int]) -> np.ndarray:
        """Attribute rows; nodes added after the base read their
        ingest-time rows."""
        if self._base.node_attr is None:
            raise GraphError("graph carries no node attributes")
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self._num_nodes):
            raise GraphError("node batch contains IDs outside [0, num_nodes)")
        base_n = self._base.num_nodes
        in_base = nodes < base_n
        if in_base.all():
            return self._base.attributes(nodes)
        rows = np.zeros((nodes.size, self.attr_len), dtype=np.float32)
        if in_base.any():
            rows[in_base] = self._base.attributes(nodes[in_base])
        for i in np.flatnonzero(~in_base):
            rows[i] = self._extra_attr[int(nodes[i]) - base_n]
        return rows

    def __repr__(self) -> str:
        return (
            f"GraphView(epoch={self.epoch}, num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges}, delta_edges={self.delta_edges})"
        )


class DynamicGraph:
    """CSR base + delta adjacency with explicit compaction.

    Parameters
    ----------
    base:
        Initial snapshot (may be empty).
    compact_threshold:
        Automatic compaction once the delta holds this many edges.
    """

    def __init__(self, base: CSRGraph, compact_threshold: int = 100_000) -> None:
        if compact_threshold <= 0:
            raise ConfigurationError(
                f"compact_threshold must be positive, got {compact_threshold}"
            )
        self._base = base
        self._delta: Dict[int, List[int]] = defaultdict(list)
        self._delta_edges = 0
        self._num_nodes = base.num_nodes
        #: Attribute rows of nodes added since the last compaction
        #: (only when the base carries attributes).
        self._extra_attr: List[np.ndarray] = []
        self.compact_threshold = compact_threshold
        self.compactions = 0
        #: Layout version: bumps on every compaction (base swap).
        self.version = 0
        #: Content version: bumps on every mutation.
        self.epoch = 0

    # ------------------------------------------------------------ queries
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return self._base.num_edges + self._delta_edges

    @property
    def delta_edges(self) -> int:
        """Edges not yet compacted into the CSR base."""
        return self._delta_edges

    @property
    def base(self) -> CSRGraph:
        """The current CSR base (read-only; excludes the delta)."""
        return self._base

    @property
    def attr_len(self) -> int:
        """Node attribute length of the base (0 without attributes)."""
        return self._base.attr_len

    def degree(self, node: int) -> int:
        self._check_node(node)
        base_degree = (
            self._base.degree(node) if node < self._base.num_nodes else 0
        )
        return base_degree + len(self._delta.get(node, ()))

    def neighbors(self, node: int) -> np.ndarray:
        """Union of base and delta adjacency (delta edges last)."""
        self._check_node(node)
        parts = []
        if node < self._base.num_nodes:
            base = self._base.neighbors(node)
            if base.size:
                parts.append(base)
        delta = self._delta.get(node)
        if delta:
            parts.append(np.asarray(delta, dtype=np.int64))
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise GraphError(f"node {node} outside [0, {self._num_nodes})")

    # ------------------------------------------------------------ snapshots
    def view(self) -> GraphView:
        """Mint a snapshot token for the current epoch.

        O(nodes-with-delta-entries): records the per-node append-log
        lengths, so later appends (and compactions, which swap rather
        than clear the delta) never leak into the view.
        """
        return GraphView(
            base=self._base,
            delta=self._delta,
            delta_lens={node: len(extra) for node, extra in self._delta.items()},
            extra_attr=tuple(self._extra_attr),
            num_nodes=self._num_nodes,
            epoch=self.epoch,
        )

    # ------------------------------------------------------------ updates
    def add_node(self, attr_row: Optional[np.ndarray] = None) -> int:
        """Append a new node; returns its ID.

        When the base carries attributes the new node needs a row too:
        ``attr_row`` (length ``attr_len``) or zeros by default.
        """
        if self._base.attr_len:
            if attr_row is None:
                row = np.zeros(self._base.attr_len, dtype=np.float32)
            else:
                row = np.asarray(attr_row, dtype=np.float32).reshape(-1)
                if row.size != self._base.attr_len:
                    raise ConfigurationError(
                        f"attr_row has {row.size} values, expected "
                        f"{self._base.attr_len}"
                    )
            self._extra_attr.append(row)
        elif attr_row is not None:
            raise ConfigurationError(
                "attr_row given but the base graph carries no attributes"
            )
        node = self._num_nodes
        self._num_nodes += 1
        self.epoch += 1
        return node

    def add_edge(self, src: int, dst: int) -> None:
        """Append a directed edge (src and dst must exist)."""
        self._check_node(src)
        self._check_node(dst)
        self._delta[src].append(dst)
        self._delta_edges += 1
        self.epoch += 1
        if self._delta_edges >= self.compact_threshold:
            self.compact()

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        for src, dst in edges:
            self.add_edge(int(src), int(dst))

    # --------------------------------------------------------- compaction
    def compact(self) -> None:
        """Merge the delta into a fresh CSR base (a new layout).

        Preserves per-node neighbor order (base block first, delta
        appends after, in insertion order), node attributes (base rows
        plus the rows recorded by :meth:`add_node`), and — when the
        base carries per-edge attributes — edge attributes, with delta
        edges assigned weight 1. Outstanding :class:`GraphView` tokens
        keep reading their original base and delta objects.
        """
        if self._delta_edges == 0 and self._base.num_nodes == self._num_nodes:
            return
        counts = np.zeros(self._num_nodes, dtype=np.int64)
        old_n = self._base.num_nodes
        counts[:old_n] = self._base.degrees()
        for node, extra in self._delta.items():
            counts[node] += len(extra)
        indptr = np.zeros(self._num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        edge_attr = None
        if self._base.edge_attr is not None:
            edge_attr = np.ones(
                (int(indptr[-1]),) + self._base.edge_attr.shape[1:],
                dtype=np.float32,
            )
        cursor = indptr[:-1].copy()
        for node in range(old_n):
            base = self._base.neighbors(node)
            if base.size:
                indices[cursor[node] : cursor[node] + base.size] = base
                if edge_attr is not None:
                    lo = int(self._base.indptr[node])
                    edge_attr[cursor[node] : cursor[node] + base.size] = (
                        self._base.edge_attr[lo : lo + base.size]
                    )
                cursor[node] += base.size
        for node, extra in self._delta.items():
            block = np.asarray(extra, dtype=np.int64)
            indices[cursor[node] : cursor[node] + block.size] = block
            cursor[node] += block.size
        node_attr = None
        if self._base.node_attr is not None:
            if self._extra_attr:
                node_attr = np.concatenate(
                    [self._base.node_attr, np.stack(self._extra_attr)]
                )
            else:
                node_attr = self._base.node_attr
        self._base = CSRGraph(
            indptr, indices, node_attr=node_attr, edge_attr=edge_attr
        )
        # Install fresh delta state instead of clearing in place, so
        # outstanding GraphView tokens keep their pre-compaction data.
        self._delta = defaultdict(list)
        self._delta_edges = 0
        self._extra_attr = []
        self.compactions += 1
        self.version += 1

    def snapshot(self) -> CSRGraph:
        """An immutable CSR of the current state (forces compaction)."""
        self.compact()
        return self._base


def simulate_growth(
    graph: DynamicGraph,
    num_events: int,
    new_node_probability: float = 0.05,
    seed: int = 0,
) -> DynamicGraph:
    """Replay a preferential-attachment growth trace onto ``graph``.

    Each event either adds a node (with one edge to an existing node)
    or adds an edge between existing nodes, destinations biased toward
    low IDs (early nodes are popular, as in real e-commerce graphs).
    """
    if not 0.0 <= new_node_probability <= 1.0:
        raise ConfigurationError(
            f"new_node_probability must be in [0, 1], got {new_node_probability}"
        )
    if graph.num_nodes == 0:
        raise ConfigurationError("seed graph must have at least one node")
    rng = np.random.default_rng(seed)
    for _ in range(num_events):
        if rng.random() < new_node_probability:
            new = graph.add_node()
            target = int(rng.integers(0, new))
            graph.add_edge(new, target)
        else:
            src = int(rng.integers(0, graph.num_nodes))
            # Zipf-biased destination: early IDs attract more edges.
            # Zipf draws start at 1, so shift by one — node 0 must be
            # the *most* popular destination, not the least.
            dst = (int(rng.zipf(1.8)) - 1) % graph.num_nodes
            graph.add_edge(src, dst)
    return graph
