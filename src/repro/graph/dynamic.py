"""Dynamic graph support: streaming edge updates with snapshotting.

E-commerce graphs grow continuously ("the data size keeps expanding",
§3.1); AliGraph supports dynamic graphs. :class:`DynamicGraph` keeps a
compact CSR base plus an append-friendly delta, answers neighbor
queries over the union, and periodically *compacts* the delta into a
fresh CSR — the standard LSM-like recipe for in-memory graph services.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import ConfigurationError, GraphError
from repro.graph.csr import CSRGraph


class DynamicGraph:
    """CSR base + delta adjacency with explicit compaction.

    Parameters
    ----------
    base:
        Initial snapshot (may be empty).
    compact_threshold:
        Automatic compaction once the delta holds this many edges.
    """

    def __init__(self, base: CSRGraph, compact_threshold: int = 100_000) -> None:
        if compact_threshold <= 0:
            raise ConfigurationError(
                f"compact_threshold must be positive, got {compact_threshold}"
            )
        self._base = base
        self._delta: Dict[int, List[int]] = defaultdict(list)
        self._delta_edges = 0
        self._num_nodes = base.num_nodes
        self.compact_threshold = compact_threshold
        self.compactions = 0
        self.version = 0

    # ------------------------------------------------------------ queries
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return self._base.num_edges + self._delta_edges

    @property
    def delta_edges(self) -> int:
        """Edges not yet compacted into the CSR base."""
        return self._delta_edges

    def degree(self, node: int) -> int:
        self._check_node(node)
        base_degree = (
            self._base.degree(node) if node < self._base.num_nodes else 0
        )
        return base_degree + len(self._delta.get(node, ()))

    def neighbors(self, node: int) -> np.ndarray:
        """Union of base and delta adjacency (delta edges last)."""
        self._check_node(node)
        parts = []
        if node < self._base.num_nodes:
            base = self._base.neighbors(node)
            if base.size:
                parts.append(base)
        delta = self._delta.get(node)
        if delta:
            parts.append(np.asarray(delta, dtype=np.int64))
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise GraphError(f"node {node} outside [0, {self._num_nodes})")

    # ------------------------------------------------------------ updates
    def add_node(self) -> int:
        """Append a new node; returns its ID."""
        node = self._num_nodes
        self._num_nodes += 1
        return node

    def add_edge(self, src: int, dst: int) -> None:
        """Append a directed edge (src and dst must exist)."""
        self._check_node(src)
        self._check_node(dst)
        self._delta[src].append(dst)
        self._delta_edges += 1
        if self._delta_edges >= self.compact_threshold:
            self.compact()

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        for src, dst in edges:
            self.add_edge(int(src), int(dst))

    # --------------------------------------------------------- compaction
    def compact(self) -> None:
        """Merge the delta into a fresh CSR base (a new snapshot)."""
        if self._delta_edges == 0 and self._base.num_nodes == self._num_nodes:
            return
        counts = np.zeros(self._num_nodes, dtype=np.int64)
        old_n = self._base.num_nodes
        counts[:old_n] = self._base.degrees()
        for node, extra in self._delta.items():
            counts[node] += len(extra)
        indptr = np.zeros(self._num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        cursor = indptr[:-1].copy()
        for node in range(old_n):
            base = self._base.neighbors(node)
            if base.size:
                indices[cursor[node] : cursor[node] + base.size] = base
                cursor[node] += base.size
        for node, extra in self._delta.items():
            block = np.asarray(extra, dtype=np.int64)
            indices[cursor[node] : cursor[node] + block.size] = block
            cursor[node] += block.size
        self._base = CSRGraph(indptr, indices)
        self._delta.clear()
        self._delta_edges = 0
        self.compactions += 1
        self.version += 1

    def snapshot(self) -> CSRGraph:
        """An immutable CSR of the current state (forces compaction)."""
        self.compact()
        return self._base


def simulate_growth(
    graph: DynamicGraph,
    num_events: int,
    new_node_probability: float = 0.05,
    seed: int = 0,
) -> DynamicGraph:
    """Replay a preferential-attachment growth trace onto ``graph``.

    Each event either adds a node (with one edge to an existing node)
    or adds an edge between existing nodes, destinations biased toward
    low IDs (early nodes are popular, as in real e-commerce graphs).
    """
    if not 0.0 <= new_node_probability <= 1.0:
        raise ConfigurationError(
            f"new_node_probability must be in [0, 1], got {new_node_probability}"
        )
    if graph.num_nodes == 0:
        raise ConfigurationError("seed graph must have at least one node")
    rng = np.random.default_rng(seed)
    for _ in range(num_events):
        if rng.random() < new_node_probability:
            new = graph.add_node()
            target = int(rng.integers(0, new))
            graph.add_edge(new, target)
        else:
            src = int(rng.integers(0, graph.num_nodes))
            # Zipf-biased destination: early IDs attract more edges.
            dst = int(rng.zipf(1.8)) % graph.num_nodes
            graph.add_edge(src, dst)
    return graph
