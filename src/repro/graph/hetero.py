"""Heterogeneous graph support.

AliGraph "supports a large variety of GNN models, including
heterogeneous graph and dynamic graph" (§2.4); e-commerce graphs mix
node types (user, item, shop) and edge types (click, buy, ...). A
:class:`HeteroGraph` stores one CSR relation per (src_type, edge_type,
dst_type) triple with per-type attribute tables, and supports typed
neighbor sampling via metapaths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, GraphError
from repro.graph.csr import CSRGraph


#: A relation key: (source node type, edge type, destination node type).
Relation = Tuple[str, str, str]


@dataclass(frozen=True)
class NodeTypeInfo:
    """Per-node-type metadata."""

    name: str
    num_nodes: int
    attr_len: int


class HeteroGraph:
    """Typed multi-relation graph.

    Parameters
    ----------
    node_types:
        ``{type_name: (num_nodes, attr_len)}``.
    relations:
        ``{(src_type, edge_type, dst_type): CSRGraph}`` where each
        relation's CSR is indexed by the source type's node IDs and its
        ``indices`` contain destination-type node IDs.
    seed:
        Seed for generated attribute tables.
    """

    def __init__(
        self,
        node_types: Mapping[str, Tuple[int, int]],
        relations: Mapping[Relation, CSRGraph],
        seed: int = 0,
    ) -> None:
        if not node_types:
            raise ConfigurationError("at least one node type is required")
        rng = np.random.default_rng(seed)
        self.node_types: Dict[str, NodeTypeInfo] = {}
        self._attrs: Dict[str, Optional[np.ndarray]] = {}
        for name, (num_nodes, attr_len) in node_types.items():
            if num_nodes <= 0 or attr_len < 0:
                raise ConfigurationError(
                    f"node type {name!r}: num_nodes must be positive and "
                    f"attr_len non-negative"
                )
            self.node_types[name] = NodeTypeInfo(name, num_nodes, attr_len)
            self._attrs[name] = (
                rng.standard_normal((num_nodes, attr_len)).astype(np.float32)
                if attr_len
                else None
            )
        self.relations: Dict[Relation, CSRGraph] = {}
        for key, csr in relations.items():
            self._validate_relation(key, csr)
            self.relations[key] = csr

    def _validate_relation(self, key: Relation, csr: CSRGraph) -> None:
        if len(key) != 3:
            raise ConfigurationError(f"relation key must be a 3-tuple, got {key}")
        src_type, _edge_type, dst_type = key
        if src_type not in self.node_types:
            raise ConfigurationError(f"unknown source node type {src_type!r}")
        if dst_type not in self.node_types:
            raise ConfigurationError(f"unknown destination node type {dst_type!r}")
        if csr.num_nodes != self.node_types[src_type].num_nodes:
            raise GraphError(
                f"relation {key}: CSR has {csr.num_nodes} sources, node "
                f"type {src_type!r} has {self.node_types[src_type].num_nodes}"
            )
        if csr.num_edges and csr.indices.max() >= self.node_types[dst_type].num_nodes:
            raise GraphError(
                f"relation {key}: destination IDs exceed node type "
                f"{dst_type!r}'s {self.node_types[dst_type].num_nodes} nodes"
            )

    # ------------------------------------------------------------- access
    def relation(self, key: Relation) -> CSRGraph:
        """The CSR for one relation."""
        try:
            return self.relations[key]
        except KeyError:
            raise GraphError(
                f"unknown relation {key}; have {sorted(self.relations)}"
            ) from None

    def neighbors(self, key: Relation, node: int) -> np.ndarray:
        """Typed adjacency: destinations of ``node`` under ``key``."""
        return self.relation(key).neighbors(node)

    def attributes(self, node_type: str, nodes: Sequence[int]) -> np.ndarray:
        """Attribute rows for nodes of one type."""
        table = self._attrs.get(node_type)
        if table is None:
            raise GraphError(f"node type {node_type!r} carries no attributes")
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (
            nodes.min() < 0 or nodes.max() >= self.node_types[node_type].num_nodes
        ):
            raise GraphError(f"node IDs outside type {node_type!r}'s range")
        return table[nodes]

    def relations_from(self, src_type: str) -> List[Relation]:
        """All relations whose source is ``src_type``."""
        return [key for key in self.relations if key[0] == src_type]

    # ----------------------------------------------------------- sampling
    def sample_metapath(
        self,
        roots: np.ndarray,
        metapath: Sequence[Relation],
        fanouts: Sequence[int],
        rng: np.random.Generator,
        selector=None,
    ) -> List[np.ndarray]:
        """Sample along a metapath (e.g. user-click-item, item-by-shop).

        Returns one layer per metapath step; layer ``k`` has shape
        ``(batch, prod(fanouts[:k]))`` of destination-type node IDs.
        Consecutive relations must type-chain (dst of step k == src of
        step k+1). Zero-degree nodes self-loop (the destination falls
        back to the source only if types match; otherwise a uniform
        random destination-type node is drawn, modeling AliGraph's
        fallback negative fill).
        """
        from repro.framework.selectors import select_uniform

        if len(metapath) != len(fanouts):
            raise ConfigurationError("metapath and fanouts lengths differ")
        if not metapath:
            raise ConfigurationError("metapath must not be empty")
        for earlier, later in zip(metapath, metapath[1:]):
            if earlier[2] != later[0]:
                raise ConfigurationError(
                    f"metapath does not chain: {earlier} -> {later}"
                )
        selector = selector or select_uniform
        roots = np.asarray(roots, dtype=np.int64)
        layers: List[np.ndarray] = [roots.copy()]
        frontier = roots.reshape(roots.size, 1)
        for key, fanout in zip(metapath, fanouts):
            csr = self.relation(key)
            dst_nodes = self.node_types[key[2]].num_nodes
            same_type = key[0] == key[2]
            out = np.empty((roots.size, frontier.shape[1] * fanout), dtype=np.int64)
            for row in range(roots.size):
                groups = []
                for node in frontier[row]:
                    neighbors = csr.neighbors(int(node))
                    if neighbors.size == 0:
                        if same_type:
                            groups.append(np.full(fanout, node, dtype=np.int64))
                        else:
                            groups.append(
                                rng.integers(0, dst_nodes, size=fanout)
                            )
                    else:
                        groups.append(
                            np.asarray(
                                selector(neighbors, fanout, rng), dtype=np.int64
                            )
                        )
                out[row] = np.concatenate(groups)
            layers.append(out)
            frontier = out
        return layers


def make_ecommerce_graph(
    num_users: int = 1000,
    num_items: int = 2000,
    num_shops: int = 50,
    clicks_per_user: float = 8.0,
    buys_per_user: float = 2.0,
    user_attr_len: int = 16,
    item_attr_len: int = 32,
    shop_attr_len: int = 8,
    seed: int = 0,
) -> HeteroGraph:
    """A synthetic e-commerce heterogeneous graph (user/item/shop).

    Relations: user -click-> item, user -buy-> item, item -in-> shop,
    shop -sells-> item. Popular items attract most clicks (Zipf-like),
    matching the skew the paper's workloads exhibit.
    """
    if min(num_users, num_items, num_shops) <= 0:
        raise ConfigurationError("all node counts must be positive")
    rng = np.random.default_rng(seed)

    def zipf_targets(count, total):
        weights = 1.0 / np.arange(1, total + 1)
        weights /= weights.sum()
        return rng.choice(total, size=count, replace=True, p=weights)

    def behavior_relation(rate):
        degrees = rng.poisson(rate, size=num_users)
        indptr = np.zeros(num_users + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = zipf_targets(int(degrees.sum()), num_items).astype(np.int64)
        return CSRGraph(indptr, indices, num_dst_nodes=num_items)

    item_shop = rng.integers(0, num_shops, size=num_items)
    item_in_shop = CSRGraph(
        np.arange(num_items + 1, dtype=np.int64),
        item_shop.astype(np.int64),
        num_dst_nodes=num_shops,
    )
    order = np.argsort(item_shop, kind="stable")
    counts = np.bincount(item_shop, minlength=num_shops)
    shop_indptr = np.zeros(num_shops + 1, dtype=np.int64)
    np.cumsum(counts, out=shop_indptr[1:])
    shop_sells = CSRGraph(
        shop_indptr, order.astype(np.int64), num_dst_nodes=num_items
    )

    return HeteroGraph(
        node_types={
            "user": (num_users, user_attr_len),
            "item": (num_items, item_attr_len),
            "shop": (num_shops, shop_attr_len),
        },
        relations={
            ("user", "click", "item"): behavior_relation(clicks_per_user),
            ("user", "buy", "item"): behavior_relation(buys_per_user),
            ("item", "in", "shop"): item_in_shop,
            ("shop", "sells", "item"): shop_sells,
        },
        seed=seed,
    )
