"""Compressed sparse row (CSR) graph with node and edge attributes.

This is the storage format the paper's distributed store keeps in memory:
a contiguous ``indptr`` array, a neighbor ``indices`` array, an optional
per-edge weight array, and a dense per-node attribute matrix. Graph
structure accesses (indptr/indices) are the fine-grained 8-64B indirect
accesses the paper characterizes in Figure 2(c); attribute rows are the
larger transfers.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError


class CSRGraph:
    """Directed graph in CSR form with optional attributes.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_nodes + 1``; ``indptr[v]`` is the
        offset of node ``v``'s adjacency list in ``indices``.
    indices:
        ``int64`` array of neighbor IDs, length ``num_edges``.
    node_attr:
        Optional ``float32`` matrix of shape ``(num_nodes, attr_len)``.
    edge_attr:
        Optional ``float32`` array of per-edge weights/attributes with
        first dimension ``num_edges``.
    num_dst_nodes:
        Size of the destination ID space. Defaults to ``num_nodes``
        (homogeneous graph); bipartite relations (e.g. user -> item in
        a heterogeneous graph) set it to the destination type's count.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        node_attr: Optional[np.ndarray] = None,
        edge_attr: Optional[np.ndarray] = None,
        num_dst_nodes: Optional[int] = None,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self._num_dst_nodes = num_dst_nodes
        self.node_attr = (
            None if node_attr is None else np.ascontiguousarray(node_attr, dtype=np.float32)
        )
        self.edge_attr = (
            None if edge_attr is None else np.ascontiguousarray(edge_attr, dtype=np.float32)
        )
        self._validate()

    def _validate(self) -> None:
        if self.indptr.ndim != 1 or self.indptr.size < 1:
            raise GraphError("indptr must be a 1-D array of length num_nodes + 1")
        if self.indptr[0] != 0:
            raise GraphError(f"indptr must start at 0, got {self.indptr[0]}")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if self.indptr[-1] != self.indices.size:
            raise GraphError(
                f"indptr[-1] ({self.indptr[-1]}) must equal len(indices) ({self.indices.size})"
            )
        n = self.num_nodes
        if self._num_dst_nodes is not None and self._num_dst_nodes <= 0:
            raise GraphError(
                f"num_dst_nodes must be positive, got {self._num_dst_nodes}"
            )
        dst_space = self.num_dst_nodes
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= dst_space
        ):
            raise GraphError(
                "indices contains node IDs outside [0, num_dst_nodes)"
            )
        if self.node_attr is not None and self.node_attr.shape[0] != n:
            raise GraphError(
                f"node_attr has {self.node_attr.shape[0]} rows, expected {n}"
            )
        if self.edge_attr is not None and self.edge_attr.shape[0] != self.indices.size:
            raise GraphError(
                f"edge_attr has {self.edge_attr.shape[0]} rows, expected {self.indices.size}"
            )

    @property
    def num_nodes(self) -> int:
        """Number of (source) nodes."""
        return int(self.indptr.size - 1)

    @property
    def num_dst_nodes(self) -> int:
        """Size of the destination ID space (== num_nodes unless
        bipartite)."""
        if self._num_dst_nodes is not None:
            return self._num_dst_nodes
        return self.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self.indices.size)

    @property
    def attr_len(self) -> int:
        """Node attribute length (0 when the graph carries no attributes)."""
        if self.node_attr is None:
            return 0
        return int(self.node_attr.shape[1]) if self.node_attr.ndim == 2 else 1

    def degree(self, node: int) -> int:
        """Out-degree of ``node``."""
        self._check_node(node)
        return int(self.indptr[node + 1] - self.indptr[node])

    def degrees(self) -> np.ndarray:
        """Out-degree of every node as an ``int64`` array."""
        return np.diff(self.indptr)

    def neighbors(self, node: int) -> np.ndarray:
        """Adjacency list of ``node`` (a view into ``indices``)."""
        self._check_node(node)
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def neighbor_slices(self, nodes: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized (start, stop) adjacency offsets for a batch of nodes."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise GraphError("node batch contains IDs outside [0, num_nodes)")
        return self.indptr[nodes], self.indptr[nodes + 1]

    def attributes(self, nodes: Sequence[int]) -> np.ndarray:
        """Attribute rows for a batch of nodes."""
        if self.node_attr is None:
            raise GraphError("graph carries no node attributes")
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise GraphError("node batch contains IDs outside [0, num_nodes)")
        return self.node_attr[nodes]

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise GraphError(f"node {node} outside [0, {self.num_nodes})")

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        node_attr: Optional[np.ndarray] = None,
        edge_attr_fill: Optional[float] = None,
    ) -> "CSRGraph":
        """Build a CSR graph from an iterable of (src, dst) pairs.

        Edges are sorted by source; relative order of a node's neighbors
        follows the input order after a stable sort.
        """
        if isinstance(edges, (np.ndarray, list, tuple)):
            edge_array = np.asarray(edges, dtype=np.int64)
            if edge_array.size == 0:
                edge_array = edge_array.reshape(0, 2)
            if edge_array.ndim != 2 or edge_array.shape[1] != 2:
                raise GraphError("edges must be (src, dst) pairs")
        else:
            # Lazy iterables (generators) stream straight into the
            # target buffer: peak memory is the edge array itself, not
            # a Python list of tuples plus the array.
            try:
                edge_array = np.fromiter(edges, dtype=np.dtype((np.int64, 2)))
            except (TypeError, ValueError) as exc:
                raise GraphError("edges must be (src, dst) pairs") from exc
        if edge_array.size and (
            edge_array.min() < 0 or edge_array.max() >= num_nodes
        ):
            raise GraphError("edge endpoints outside [0, num_nodes)")
        order = np.argsort(edge_array[:, 0], kind="stable")
        src = edge_array[order, 0]
        dst = edge_array[order, 1]
        counts = np.bincount(src, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        edge_attr = None
        if edge_attr_fill is not None:
            edge_attr = np.full(dst.size, edge_attr_fill, dtype=np.float32)
        return cls(indptr, dst, node_attr=node_attr, edge_attr=edge_attr)

    def structure_nbytes(self) -> int:
        """Bytes used by the graph structure (indptr + indices)."""
        return int(self.indptr.nbytes + self.indices.nbytes)

    def attribute_nbytes(self) -> int:
        """Bytes used by node and edge attributes."""
        total = 0
        if self.node_attr is not None:
            total += int(self.node_attr.nbytes)
        if self.edge_attr is not None:
            total += int(self.edge_attr.nbytes)
        return total

    def __repr__(self) -> str:
        return (
            f"CSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"attr_len={self.attr_len})"
        )
