"""Table 2 dataset registry.

The paper's six benchmark graphs are Alibaba-internal; we register their
published *specifications* (node count, edge count, attribute length) and
instantiate scaled-down synthetic graphs with the same shape for
execution. Full-scale numbers feed the analytical models (footprint,
throughput projection); the scaled instances feed everything that
actually samples a graph.

Dataset names follow the paper: first letter is node-count scale, second
is attribute-length scale (e.g. ``ml`` = medium nodes, large attributes).
``syn`` is the extra-large synthesized graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.graph.generators import power_law_graph, scaled_synthesis


@dataclass(frozen=True)
class DatasetSpec:
    """Full-scale specification of one Table 2 graph."""

    name: str
    num_nodes: int
    num_edges: int
    attr_len: int
    #: True for the paper's ``syn`` graph, built by scaling a smaller
    #: adjacency structure (we reproduce that construction).
    synthesized: bool = False

    @property
    def avg_degree(self) -> float:
        """Average out-degree of the full-scale graph."""
        return self.num_edges / self.num_nodes


_MILLION = 1_000_000
_BILLION = 1_000_000_000

#: Published Table 2 configurations.
DATASETS: Dict[str, DatasetSpec] = {
    "ss": DatasetSpec("ss", int(65.2 * _MILLION), int(592 * _MILLION), 72),
    "ls": DatasetSpec("ls", int(1.9 * _BILLION), int(5.2 * _BILLION), 84),
    "sl": DatasetSpec("sl", int(67.3 * _MILLION), int(601 * _MILLION), 128),
    "ml": DatasetSpec("ml", int(207 * _MILLION), int(5.7 * _BILLION), 136),
    "ll": DatasetSpec("ll", int(702 * _MILLION), int(12.3 * _BILLION), 152),
    "syn": DatasetSpec(
        "syn", int(5.9 * _BILLION), int(105 * _BILLION), 152, synthesized=True
    ),
}

#: Order used by every figure in the paper.
DATASET_ORDER: Tuple[str, ...] = ("ss", "ls", "sl", "ml", "ll", "syn")

#: Sampling application setup shared by all Table 2 rows (Table 2, "model"
#: column): 2-hop random sampling, fanout 10 per hop, batch of 512 roots,
#: negative sample rate 10, hidden/embedding size 128.
SAMPLING_CONFIG = {
    "batch_size": 512,
    "num_hops": 2,
    "fanouts": (10, 10),
    "negative_rate": 10,
    "hidden_size": 128,
}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a Table 2 dataset spec by name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {name!r}; expected one of {sorted(DATASETS)}"
        ) from None


def instantiate_dataset(
    name: str,
    max_nodes: int = 100_000,
    seed: int = 0,
) -> CSRGraph:
    """Instantiate a scaled-down executable graph for a Table 2 dataset.

    The instance preserves the full-scale average degree and attribute
    length; node count is scaled to at most ``max_nodes``. The ``syn``
    dataset is built the way the paper builds it: synthesize a smaller
    base graph, then scale its adjacency structure up 4x.
    """
    if max_nodes <= 0:
        raise ConfigurationError(f"max_nodes must be positive, got {max_nodes}")
    spec = get_dataset(name)
    num_nodes = min(spec.num_nodes, max_nodes)
    if spec.synthesized:
        scale = 4
        base_nodes = max(1, num_nodes // scale)
        base = power_law_graph(
            base_nodes, spec.avg_degree, attr_len=0, seed=seed
        )
        return scaled_synthesis(base, scale, attr_len=spec.attr_len, seed=seed)
    return power_law_graph(
        num_nodes, spec.avg_degree, attr_len=spec.attr_len, seed=seed
    )
