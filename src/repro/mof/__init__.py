"""Memory-over-Fabric (MoF): framing, compression, fabric, protocol."""

from repro.mof.frames import (
    GENZ,
    MOF,
    FrameFormat,
    FrameBreakdown,
    batch_breakdown,
)
from repro.mof.bdi import bdi_compress, bdi_decompress, compressed_size
from repro.mof.fabric import MofFabric
from repro.mof.protocol import LossyWire, MofEndpoint, TransferResult, run_transfer
from repro.mof.topology import FabricTopology, chain, full_mesh, ring

__all__ = [
    "GENZ",
    "MOF",
    "FrameFormat",
    "FrameBreakdown",
    "batch_breakdown",
    "bdi_compress",
    "bdi_decompress",
    "compressed_size",
    "MofFabric",
    "LossyWire",
    "MofEndpoint",
    "TransferResult",
    "run_transfer",
    "FabricTopology",
    "chain",
    "full_mesh",
    "ring",
]
