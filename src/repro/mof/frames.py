"""MoF frame format and the multi-request packing analysis (Table 5).

GNN sampling issues fine-grained (8-64B) reads, so per-request framing
overhead dominates the wire. Gen-Z packs up to 4 requests per package;
the MoF frame packs 64, with small headers and 32-bit base-relative
addresses. This module computes, for a batch of reads, the number of
frames and the header/address/data byte split — the Table 5 numbers.

Byte accounting covers the full round trip: request frames carry
addresses, response frames carry data; both carry headers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FrameFormat:
    """One fabric's read framing parameters."""

    name: str
    header_bytes: int
    addr_bytes: int
    requests_per_frame: int

    def __post_init__(self) -> None:
        if self.header_bytes < 0 or self.addr_bytes <= 0:
            raise ConfigurationError("header must be >= 0 and addr_bytes positive")
        if self.requests_per_frame <= 0:
            raise ConfigurationError(
                f"requests_per_frame must be positive, got {self.requests_per_frame}"
            )

    def frames_for(self, num_requests: int) -> int:
        """Frames needed in one direction for ``num_requests``."""
        if num_requests <= 0:
            raise ConfigurationError(
                f"num_requests must be positive, got {num_requests}"
            )
        return -(-num_requests // self.requests_per_frame)


#: Gen-Z multi-read packaging: 4 requests per package, 50B of
#: header/framing per package, full 64-bit addresses.
GENZ = FrameFormat("genz", header_bytes=50, addr_bytes=8, requests_per_frame=4)

#: The proposed MoF frame: 64 requests per frame, minimal framing, and
#: 32-bit base-relative addresses (Tech-1).
MOF = FrameFormat("mof", header_bytes=31, addr_bytes=4, requests_per_frame=64)


@dataclass(frozen=True)
class FrameBreakdown:
    """Round-trip byte accounting for a batch of reads."""

    format_name: str
    num_requests: int
    request_bytes: int
    frames: int
    header_bytes: int
    addr_bytes: int
    data_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.header_bytes + self.addr_bytes + self.data_bytes

    @property
    def header_fraction(self) -> float:
        return self.header_bytes / self.total_bytes

    @property
    def addr_fraction(self) -> float:
        return self.addr_bytes / self.total_bytes

    @property
    def data_utilization(self) -> float:
        return self.data_bytes / self.total_bytes


def batch_breakdown(
    fmt: FrameFormat,
    num_requests: int,
    request_bytes: int,
    compressed_data_bytes: Optional[int] = None,
    compressed_addr_bytes: Optional[int] = None,
) -> FrameBreakdown:
    """Table 5/6 accounting for reading ``num_requests`` x ``request_bytes``.

    ``compressed_data_bytes`` / ``compressed_addr_bytes`` override the
    raw payload sizes when BDI compression is applied (Table 6 rows).
    """
    if request_bytes <= 0:
        raise ConfigurationError(
            f"request_bytes must be positive, got {request_bytes}"
        )
    one_way_frames = fmt.frames_for(num_requests)
    frames = one_way_frames * 2  # request + response directions
    header = frames * fmt.header_bytes
    addr = (
        compressed_addr_bytes
        if compressed_addr_bytes is not None
        else num_requests * fmt.addr_bytes
    )
    data = (
        compressed_data_bytes
        if compressed_data_bytes is not None
        else num_requests * request_bytes
    )
    if addr < 0 or data < 0:
        raise ConfigurationError("compressed sizes must be non-negative")
    return FrameBreakdown(
        format_name=fmt.name,
        num_requests=num_requests,
        request_bytes=request_bytes,
        frames=frames,
        header_bytes=header,
        addr_bytes=addr,
        data_bytes=data,
    )


def packing_gain(num_requests: int, request_bytes: int) -> float:
    """Data-utilization gain of MoF packing over Gen-Z for one batch."""
    genz = batch_breakdown(GENZ, num_requests, request_bytes)
    mof = batch_breakdown(MOF, num_requests, request_bytes)
    return mof.data_utilization / genz.data_utilization
