"""Base-Delta-Immediate (BDI) compression (Tech-2 of the MoF design).

Fine-grained remote reads spend comparable wire bytes on 64-bit
addresses as on data, so MoF compresses both with BDI: each block is
encoded as one base value plus narrow deltas when all elements are
close to the base. This is a faithful, lossless implementation: blocks
compress to a header byte + base + deltas, or fall back to raw bytes.

Encodings tried per block, best (smallest) wins:
  zeros        - all-zero block, 1 byte
  repeat8      - one repeated 8-byte value
  base8-delta{1,2,4} - 8-byte base, per-element narrow deltas
  base4-delta{1,2}   - 4-byte base over 4-byte elements
  raw          - uncompressed fallback
"""

from __future__ import annotations

import struct
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError, ProtocolError

_BLOCK_BYTES = 64

# encoding id -> (element_bytes, delta_bytes); raw/zeros/repeat special.
_ENCODINGS = {
    2: (8, 1),
    3: (8, 2),
    4: (8, 4),
    5: (4, 1),
    6: (4, 2),
}
_ZEROS, _REPEAT, _RAW = 0, 1, 7


def _pad_block(block: bytes) -> bytes:
    if len(block) < _BLOCK_BYTES:
        return block + b"\x00" * (_BLOCK_BYTES - len(block))
    return block


def _try_fixed(block: bytes) -> Tuple[int, bytes]:
    """Try the zeros/repeat encodings; return (encoding, payload) or raw."""
    if block == b"\x00" * _BLOCK_BYTES:
        return _ZEROS, b""
    first = block[:8]
    if block == first * (_BLOCK_BYTES // 8):
        return _REPEAT, first
    return _RAW, block


def _try_base_delta(block: bytes, element_bytes: int, delta_bytes: int) -> bytes:
    """Return the encoded payload, or ``None`` if deltas do not fit."""
    count = _BLOCK_BYTES // element_bytes
    fmt = {4: "<%di" % count, 8: "<%dq" % count}[element_bytes]
    # Interpret elements as unsigned for the base, signed deltas.
    raw_fmt = {4: "<%dI" % count, 8: "<%dQ" % count}[element_bytes]
    values = struct.unpack(raw_fmt, block)
    base = values[0]
    limit = 1 << (8 * delta_bytes - 1)
    deltas = []
    for value in values:
        delta = value - base
        # Wrap into signed range of the element width first.
        mod = 1 << (8 * element_bytes)
        delta = (delta + mod // 2) % mod - mod // 2
        if not -limit <= delta < limit:
            return None
        deltas.append(delta)
    base_bytes = base.to_bytes(element_bytes, "little")
    delta_fmt = {1: "<%db" % count, 2: "<%dh" % count, 4: "<%di" % count}[delta_bytes]
    return base_bytes + struct.pack(delta_fmt, *deltas)


def compress_block(block: bytes) -> bytes:
    """Compress one 64B block; returns header byte + payload."""
    if len(block) > _BLOCK_BYTES:
        raise ConfigurationError(
            f"block must be at most {_BLOCK_BYTES} bytes, got {len(block)}"
        )
    block = _pad_block(bytes(block))
    best_encoding, best_payload = _try_fixed(block)
    if best_encoding == _RAW:
        for encoding, (element_bytes, delta_bytes) in _ENCODINGS.items():
            payload = _try_base_delta(block, element_bytes, delta_bytes)
            if payload is not None and (
                best_encoding == _RAW or len(payload) < len(best_payload)
            ):
                best_encoding, best_payload = encoding, payload
    return bytes([best_encoding]) + best_payload


def decompress_block(encoded: bytes) -> bytes:
    """Invert :func:`compress_block`; always returns 64 bytes."""
    if not encoded:
        raise ProtocolError("empty encoded block")
    encoding, payload = encoded[0], encoded[1:]
    if encoding == _ZEROS:
        return b"\x00" * _BLOCK_BYTES
    if encoding == _REPEAT:
        if len(payload) != 8:
            raise ProtocolError("repeat encoding needs an 8-byte payload")
        return payload * (_BLOCK_BYTES // 8)
    if encoding == _RAW:
        if len(payload) != _BLOCK_BYTES:
            raise ProtocolError("raw encoding needs a 64-byte payload")
        return payload
    if encoding not in _ENCODINGS:
        raise ProtocolError(f"unknown BDI encoding {encoding}")
    element_bytes, delta_bytes = _ENCODINGS[encoding]
    count = _BLOCK_BYTES // element_bytes
    expected = element_bytes + count * delta_bytes
    if len(payload) != expected:
        raise ProtocolError(
            f"encoding {encoding} expects {expected} payload bytes, "
            f"got {len(payload)}"
        )
    base = int.from_bytes(payload[:element_bytes], "little")
    delta_fmt = {1: "<%db" % count, 2: "<%dh" % count, 4: "<%di" % count}[delta_bytes]
    deltas = struct.unpack(delta_fmt, payload[element_bytes:])
    mod = 1 << (8 * element_bytes)
    values = [(base + delta) % mod for delta in deltas]
    raw_fmt = {4: "<%dI" % count, 8: "<%dQ" % count}[element_bytes]
    return struct.pack(raw_fmt, *values)


def bdi_compress(data: bytes) -> List[bytes]:
    """Compress arbitrary data as a list of encoded 64B blocks."""
    data = bytes(data)
    if not data:
        raise ConfigurationError("cannot compress empty data")
    return [
        compress_block(data[offset : offset + _BLOCK_BYTES])
        for offset in range(0, len(data), _BLOCK_BYTES)
    ]


def bdi_decompress(blocks: List[bytes], original_length: int) -> bytes:
    """Invert :func:`bdi_compress` (original length trims the padding)."""
    if original_length < 0:
        raise ConfigurationError("original_length must be non-negative")
    out = b"".join(decompress_block(block) for block in blocks)
    if original_length > len(out):
        raise ProtocolError(
            f"original_length {original_length} exceeds decoded size {len(out)}"
        )
    return out[:original_length]


def compressed_size(data: bytes) -> int:
    """Total encoded bytes for ``data`` under BDI."""
    return sum(len(block) for block in bdi_compress(data))


def compress_addresses(addresses: np.ndarray) -> int:
    """Compressed byte size of a 64-bit address vector (Tech-2).

    Sampling requests target a handful of memory regions, so addresses
    cluster tightly around per-region bases — exactly BDI's sweet spot.
    """
    addresses = np.ascontiguousarray(np.asarray(addresses, dtype=np.uint64))
    return compressed_size(addresses.tobytes())
