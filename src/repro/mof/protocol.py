"""MoF data-link reliability protocol.

The MoF link must provide "data-link capability with high reliability
without much software overhead". This module implements a go-back-N
sliding-window protocol with sequence numbers, cumulative ACKs, and
timeout-driven retransmission over a lossy wire — the mechanism that
makes a raw point-to-point fabric dependable without a host network
stack. Tests inject frame loss and verify exactly-once, in-order
delivery.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError, ProtocolError


@dataclass
class _Frame:
    seq: int
    payload: bytes
    is_ack: bool = False
    ack_seq: int = -1


class LossyWire:
    """A unidirectional wire that drops frames with fixed probability."""

    def __init__(self, loss_rate: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {loss_rate}"
            )
        self.loss_rate = loss_rate
        self._rng = np.random.default_rng(seed)
        self._in_flight: Deque[_Frame] = deque()
        self.delivered = 0
        self.dropped = 0

    def send(self, frame: _Frame) -> None:
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.dropped += 1
            return
        self._in_flight.append(frame)
        self.delivered += 1

    def receive(self) -> Optional[_Frame]:
        if not self._in_flight:
            return None
        return self._in_flight.popleft()


class MofEndpoint:
    """One side of a MoF link running go-back-N.

    Drive with :meth:`tick`: each tick models one protocol step
    (transmit window, process incoming, handle timeout).
    """

    def __init__(
        self,
        tx_wire: LossyWire,
        rx_wire: LossyWire,
        window: int = 8,
        timeout_ticks: int = 16,
    ) -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        if timeout_ticks <= 0:
            raise ConfigurationError(
                f"timeout_ticks must be positive, got {timeout_ticks}"
            )
        self.tx_wire = tx_wire
        self.rx_wire = rx_wire
        self.window = window
        self.timeout_ticks = timeout_ticks
        # Sender state
        self._send_queue: Deque[bytes] = deque()
        self._unacked: "Dict[int, bytes]" = {}
        self._send_base = 0
        self._next_seq = 0
        self._ticks_since_progress = 0
        # Receiver state
        self._expected_seq = 0
        self.received: List[bytes] = []
        self.retransmissions = 0

    # ------------------------------------------------------------ sender
    def queue(self, payload: bytes) -> None:
        """Queue a payload for reliable transmission."""
        self._send_queue.append(bytes(payload))

    @property
    def all_acked(self) -> bool:
        return not self._send_queue and not self._unacked

    def _transmit_window(self) -> None:
        while self._send_queue and self._next_seq < self._send_base + self.window:
            payload = self._send_queue.popleft()
            self._unacked[self._next_seq] = payload
            self.tx_wire.send(_Frame(seq=self._next_seq, payload=payload))
            self._next_seq += 1

    def _retransmit_all(self) -> None:
        for seq in sorted(self._unacked):
            self.tx_wire.send(_Frame(seq=seq, payload=self._unacked[seq]))
            self.retransmissions += 1

    # ---------------------------------------------------------- receiver
    def _process_incoming(self) -> bool:
        made_progress = False
        while True:
            frame = self.rx_wire.receive()
            if frame is None:
                break
            if frame.is_ack:
                # Cumulative ACK: everything below ack_seq is delivered.
                if frame.ack_seq > self._send_base:
                    for seq in range(self._send_base, frame.ack_seq):
                        self._unacked.pop(seq, None)
                    self._send_base = frame.ack_seq
                    made_progress = True
            else:
                if frame.seq == self._expected_seq:
                    self.received.append(frame.payload)
                    self._expected_seq += 1
                    made_progress = True
                # Always (re-)ACK the cumulative position.
                self.tx_wire.send(
                    _Frame(seq=-1, payload=b"", is_ack=True, ack_seq=self._expected_seq)
                )
        return made_progress

    # -------------------------------------------------------------- tick
    def tick(self) -> None:
        """One protocol step: receive, send window, timeout check."""
        progress = self._process_incoming()
        self._transmit_window()
        if self._unacked:
            self._ticks_since_progress = 0 if progress else self._ticks_since_progress + 1
            if self._ticks_since_progress >= self.timeout_ticks:
                self._retransmit_all()
                self._ticks_since_progress = 0
        else:
            self._ticks_since_progress = 0


def run_transfer(
    payloads: List[bytes],
    loss_rate: float = 0.0,
    window: int = 8,
    seed: int = 0,
    max_ticks: int = 100_000,
) -> "TransferResult":
    """Send ``payloads`` from A to B over lossy wires.

    Returns both endpoints so callers can inspect delivery *and*
    retransmission counts. Raises :class:`ProtocolError` if the
    transfer does not complete — with go-back-N and loss_rate < 1 it
    always should.
    """
    wire_ab = LossyWire(loss_rate, seed=seed)
    wire_ba = LossyWire(loss_rate, seed=seed + 1)
    sender = MofEndpoint(tx_wire=wire_ab, rx_wire=wire_ba, window=window)
    receiver = MofEndpoint(tx_wire=wire_ba, rx_wire=wire_ab, window=window)
    for payload in payloads:
        sender.queue(payload)
    for tick in range(max_ticks):
        sender.tick()
        receiver.tick()
        if sender.all_acked and len(receiver.received) == len(payloads):
            return TransferResult(sender, receiver, ticks=tick + 1)
    raise ProtocolError(
        f"transfer incomplete after {max_ticks} ticks "
        f"({len(receiver.received)}/{len(payloads)} delivered)"
    )


@dataclass(frozen=True)
class TransferResult:
    """Outcome of :func:`run_transfer`."""

    sender: MofEndpoint
    receiver: MofEndpoint
    ticks: int

    @property
    def received(self) -> List[bytes]:
        return self.receiver.received

    @property
    def retransmissions(self) -> int:
        return self.sender.retransmissions
