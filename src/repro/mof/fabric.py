"""MoF fabric link model: QSFP-DD channels carrying MoF frames.

The PoC connects 4 FPGA cards point-to-point over Direct Attach Copper
with 3x QSFP-DD cages per card (200Gb/s each). This module converts the
frame-level accounting of :mod:`repro.mof.frames` into an effective
payload bandwidth and a :class:`~repro.memstore.links.LinkModel` the
rest of the system can plug in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mof.frames import MOF, FrameFormat, batch_breakdown
from repro.memstore.links import LinkModel
from repro.units import US, gbps_to_bytes_per_s


@dataclass(frozen=True)
class MofFabric:
    """One card's MoF fabric attachment."""

    num_qsfp: int = 3
    gbps_per_qsfp: float = 200.0
    base_latency_s: float = 1.2 * US
    frame_format: FrameFormat = MOF

    def __post_init__(self) -> None:
        if self.num_qsfp <= 0:
            raise ConfigurationError(f"num_qsfp must be positive, got {self.num_qsfp}")
        if self.gbps_per_qsfp <= 0:
            raise ConfigurationError(
                f"gbps_per_qsfp must be positive, got {self.gbps_per_qsfp}"
            )
        if self.base_latency_s <= 0:
            raise ConfigurationError(
                f"base_latency_s must be positive, got {self.base_latency_s}"
            )

    @property
    def raw_bandwidth(self) -> float:
        """Aggregate raw wire bandwidth in bytes/second."""
        return self.num_qsfp * gbps_to_bytes_per_s(self.gbps_per_qsfp)

    def effective_bandwidth(self, request_bytes: int, batch: int = 64) -> float:
        """Payload bandwidth after framing overhead for a request size."""
        breakdown = batch_breakdown(self.frame_format, batch, request_bytes)
        return self.raw_bandwidth * breakdown.data_utilization

    def as_link(self, request_bytes: int = 64) -> LinkModel:
        """LinkModel view of the fabric for a typical request size.

        The per-request overhead is the amortized frame header + address
        cost at full packing.
        """
        breakdown = batch_breakdown(self.frame_format, 128, request_bytes)
        per_request_overhead = (
            breakdown.header_bytes + breakdown.addr_bytes
        ) // breakdown.num_requests
        return LinkModel(
            name=f"mof_{self.num_qsfp}x{int(self.gbps_per_qsfp)}g",
            base_latency_s=self.base_latency_s,
            peak_bandwidth=self.raw_bandwidth,
            packet_overhead_bytes=int(per_request_overhead),
        )
