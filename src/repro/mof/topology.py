"""Inter-FPGA fabric topology (the PoC's 4-card P2P mesh).

The PoC connects four FPGA cards point-to-point over DAC cables, one
QSFP-DD cage per peer (3 cages per card = full mesh of 4). This module
models fabric topologies — full mesh, ring, and chain — with shortest-
path routing, link-load accounting under an all-to-all sampling
traffic pattern, and bisection bandwidth, so scaling-out decisions
(§4.1 "MoF is designed for supporting multi-node communication") can
be evaluated quantitatively.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.units import gbps_to_bytes_per_s


Link = Tuple[int, int]


def _canonical(link: Link) -> Link:
    a, b = link
    return (a, b) if a <= b else (b, a)


class FabricTopology:
    """Undirected fabric with per-link bandwidth and hop latency."""

    def __init__(
        self,
        num_nodes: int,
        links: Sequence[Link],
        link_bandwidth: float = gbps_to_bytes_per_s(200),
        hop_latency_s: float = 0.4e-6,
    ) -> None:
        if num_nodes <= 1:
            raise ConfigurationError(
                f"a fabric needs at least 2 nodes, got {num_nodes}"
            )
        if link_bandwidth <= 0 or hop_latency_s <= 0:
            raise ConfigurationError("bandwidth and latency must be positive")
        self.num_nodes = num_nodes
        self.link_bandwidth = link_bandwidth
        self.hop_latency_s = hop_latency_s
        self._adjacency: Dict[int, List[int]] = {n: [] for n in range(num_nodes)}
        self.links: List[Link] = []
        seen = set()
        for link in links:
            a, b = _canonical(link)
            if not (0 <= a < num_nodes and 0 <= b < num_nodes) or a == b:
                raise ConfigurationError(f"invalid link {link}")
            if (a, b) in seen:
                raise ConfigurationError(f"duplicate link {link}")
            seen.add((a, b))
            self.links.append((a, b))
            self._adjacency[a].append(b)
            self._adjacency[b].append(a)
        self._check_connected()

    def _check_connected(self) -> None:
        visited = {0}
        frontier = deque([0])
        while frontier:
            node = frontier.popleft()
            for peer in self._adjacency[node]:
                if peer not in visited:
                    visited.add(peer)
                    frontier.append(peer)
        if len(visited) != self.num_nodes:
            raise ConfigurationError("fabric is not connected")

    # -------------------------------------------------------------- paths
    def shortest_path(self, src: int, dst: int) -> List[int]:
        """BFS shortest path (node list, inclusive of both ends)."""
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise ConfigurationError(f"nodes outside [0, {self.num_nodes})")
        if src == dst:
            return [src]
        parents: Dict[int, int] = {src: src}
        frontier = deque([src])
        while frontier:
            node = frontier.popleft()
            for peer in self._adjacency[node]:
                if peer not in parents:
                    parents[peer] = node
                    if peer == dst:
                        path = [dst]
                        while path[-1] != src:
                            path.append(parents[path[-1]])
                        return list(reversed(path))
                    frontier.append(peer)
        raise ConfigurationError("fabric is not connected")  # unreachable

    def hops(self, src: int, dst: int) -> int:
        return len(self.shortest_path(src, dst)) - 1

    def path_latency(self, src: int, dst: int) -> float:
        """Propagation latency along the shortest path."""
        return self.hops(src, dst) * self.hop_latency_s

    # --------------------------------------------------------------- load
    def all_to_all_link_load(self) -> Dict[Link, float]:
        """Relative load per link when every node sends equally to
        every other node (hash-partitioned sampling traffic)."""
        load: Dict[Link, float] = {link: 0.0 for link in self.links}
        for src in range(self.num_nodes):
            for dst in range(self.num_nodes):
                if src == dst:
                    continue
                path = self.shortest_path(src, dst)
                for a, b in zip(path, path[1:]):
                    load[_canonical((a, b))] += 1.0
        return load

    def effective_pair_bandwidth(self) -> float:
        """Per-(src,dst)-pair bandwidth under all-to-all traffic.

        The most-loaded link bounds the whole pattern: each pair gets
        ``link_bandwidth / max_load`` of it.
        """
        load = self.all_to_all_link_load()
        worst = max(load.values())
        return self.link_bandwidth / worst

    def per_node_egress(self) -> float:
        """Aggregate fabric bandwidth leaving one node (its cages)."""
        degree = min(len(self._adjacency[n]) for n in range(self.num_nodes))
        return degree * self.link_bandwidth

    def bisection_bandwidth(self) -> float:
        """Minimum bandwidth across any even node bipartition.

        Exact for the small fabrics we model (exhaustive over
        bipartitions up to 16 nodes).
        """
        if self.num_nodes > 16:
            raise ConfigurationError(
                "exhaustive bisection only supported up to 16 nodes"
            )
        half = self.num_nodes // 2
        best = None
        for mask in range(1, 1 << self.num_nodes):
            if bin(mask).count("1") != half:
                continue
            crossing = sum(
                1
                for (a, b) in self.links
                if ((mask >> a) & 1) != ((mask >> b) & 1)
            )
            if best is None or crossing < best:
                best = crossing
        return (best or 0) * self.link_bandwidth


def full_mesh(num_nodes: int, **kwargs) -> FabricTopology:
    """Every pair directly connected (the PoC's 4-card configuration)."""
    links = [
        (a, b) for a in range(num_nodes) for b in range(a + 1, num_nodes)
    ]
    return FabricTopology(num_nodes, links, **kwargs)


def ring(num_nodes: int, **kwargs) -> FabricTopology:
    """A ring: cheaper cabling, multi-hop forwarding."""
    links = [(n, (n + 1) % num_nodes) for n in range(num_nodes)]
    return FabricTopology(num_nodes, links, **kwargs)


def chain(num_nodes: int, **kwargs) -> FabricTopology:
    """A linear chain (worst case for bisection)."""
    links = [(n, n + 1) for n in range(num_nodes - 1)]
    return FabricTopology(num_nodes, links, **kwargs)
