"""Implementation of the ``repro lint`` CLI subcommand.

Exit-code semantics:

* ``0`` — no unsuppressed, unbaselined findings and no stale baseline
  entries (also after a successful ``--update-baseline`` or for the
  informational modes ``--explain`` / ``--list-rules``).
* ``1`` — new findings, or stale baseline entries that need
  ``--update-baseline``.

Stale entries fail the run on purpose: the baseline is a reviewed
artifact, and letting it rot silently would hide how much debt remains.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

import repro
from repro.analysis.baseline import Baseline, BaselineResult
from repro.analysis.engine import (
    AnalysisEngine,
    AnalysisResult,
    DeepAnalysisResult,
)
from repro.analysis.rules import all_rules, get_rule

#: File name of the committed baseline, looked up at the repo root.
BASELINE_FILENAME = "lint-baseline.json"


def default_scan_root() -> Path:
    """The installed ``repro`` package directory."""
    return Path(repro.__file__).resolve().parent


def default_baseline_path(scan_root: Path) -> Path:
    """Locate the committed baseline for ``scan_root``.

    Prefers ``lint-baseline.json`` at the repo root (the directory
    holding ``pyproject.toml`` two levels above ``src/repro``), falling
    back to the current working directory.
    """
    repo_root = scan_root.parent.parent
    if (repo_root / "pyproject.toml").exists():
        return repo_root / BASELINE_FILENAME
    return Path.cwd() / BASELINE_FILENAME


def fixture_path(rule_id: str, kind: str) -> Path:
    """Path of a rule's ``bad``/``good`` fixture file."""
    name = f"{rule_id.replace('-', '_')}_{kind}.py"
    return Path(__file__).resolve().parent / "fixtures" / name


def fixture_dir(rule_id: str, kind: str) -> Path:
    """Directory of a cross-module rule's multi-file fixture project."""
    return (
        Path(__file__).resolve().parent
        / "fixtures"
        / "crossmodule"
        / rule_id.replace("-", "_")
        / kind
    )


def explain_rule(rule_id: str, out: Any = None) -> int:
    """Print a rule's documentation plus its bad/good fixture pair."""
    out = out if out is not None else sys.stdout
    rule = get_rule(rule_id)
    if rule is None:
        known = ", ".join(sorted(r.rule_id for r in all_rules()))
        print(f"unknown rule id '{rule_id}' (known: {known})", file=out)
        return 1
    print(f"{rule.rule_id} — {rule.title}", file=out)
    print(file=out)
    print(rule.rationale, file=out)
    for kind, label in (("bad", "fires on"), ("good", "clean")):
        path = fixture_path(rule_id, kind)
        if path.exists():
            print(file=out)
            print(f"--- {label} ({path.name}) ---", file=out)
            print(path.read_text(encoding="utf-8").rstrip(), file=out)
            continue
        directory = fixture_dir(rule_id, kind)
        if directory.is_dir():
            for file in sorted(directory.glob("*.py")):
                print(file=out)
                print(
                    f"--- {label} ({directory.name}/{file.name}) ---",
                    file=out,
                )
                print(file.read_text(encoding="utf-8").rstrip(), file=out)
    return 0


def list_rules(out: Any = None) -> int:
    out = out if out is not None else sys.stdout
    for rule in all_rules():
        print(f"{rule.rule_id:<18} {rule.title}", file=out)
    return 0


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` argument set to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help="also run the whole-program (cross-module) rules",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file (default: {BASELINE_FILENAME} at the repo root)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--cache", default=None, metavar="PATH",
        help="persist per-file results here keyed by content hash",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RULE_ID",
        help="print a rule's doc plus its bad/good fixture pair",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )


def run_lint(args: argparse.Namespace, out: Any = None) -> int:
    """Execute ``repro lint`` for parsed ``args``; returns exit code."""
    out = out if out is not None else sys.stdout
    if args.explain is not None:
        return explain_rule(args.explain, out=out)
    if args.list_rules:
        return list_rules(out=out)

    scan_paths = (
        [Path(p) for p in args.paths] if args.paths else [default_scan_root()]
    )
    baseline_path = (
        Path(args.baseline)
        if args.baseline is not None
        else default_baseline_path(default_scan_root())
    )
    engine = AnalysisEngine(
        cache_path=Path(args.cache) if args.cache else None
    )
    deep: Optional[DeepAnalysisResult] = None
    if args.deep:
        deep = engine.run_deep(scan_paths)
        result: AnalysisResult = deep
    else:
        result = engine.run(scan_paths)

    if args.update_baseline:
        updated = Baseline.from_findings(
            result.findings,
            deep.project_findings if deep is not None else None,
        )
        if deep is None:
            # Shallow update: preserve the --deep section untouched.
            updated.project_entries = Baseline.load(
                baseline_path
            ).project_entries
        updated.save(baseline_path)
        recorded = len(result.findings) + (
            len(deep.project_findings) if deep is not None else 0
        )
        print(
            f"baseline updated: {recorded} finding(s) recorded "
            f"in {baseline_path}",
            file=out,
        )
        return 0

    baseline = Baseline.load(baseline_path)
    applied = baseline.apply(result.findings)
    applied_project = (
        baseline.apply_project(deep.project_findings)
        if deep is not None
        else None
    )
    exit_code = 1 if (applied.new or applied.stale) else 0
    if applied_project is not None and (
        applied_project.new or applied_project.stale
    ):
        exit_code = 1

    if args.format == "json":
        report = _json_report(result, applied, exit_code)
        if deep is not None and applied_project is not None:
            report["project"] = _json_project_report(deep, applied_project)
        print(json.dumps(report), file=out)
    else:
        _text_report(result, applied, exit_code, out, deep, applied_project)
    return exit_code


def _json_report(
    result: AnalysisResult, applied: BaselineResult, exit_code: int
) -> Dict[str, Any]:
    return {
        "files_scanned": result.files_scanned,
        "cache_hits": result.cache_hits,
        "findings": [f.to_dict() for f in applied.new],
        "baselined": applied.baselined_count,
        "suppressed": len(result.suppressed),
        "stale_baseline": [e.to_dict() for e in applied.stale],
        "exit_code": exit_code,
    }


def _json_project_report(
    deep: DeepAnalysisResult, applied: BaselineResult
) -> Dict[str, Any]:
    return {
        "modules": deep.project_modules,
        "cache_hits": deep.project_cache_hits,
        "reused": deep.project_reused,
        "findings": [f.to_dict() for f in applied.new],
        "baselined": applied.baselined_count,
        "suppressed": len(deep.project_suppressed),
        "stale_baseline": [e.to_dict() for e in applied.stale],
    }


def _text_report(
    result: AnalysisResult,
    applied: BaselineResult,
    exit_code: int,
    out: Any,
    deep: Optional[DeepAnalysisResult] = None,
    applied_project: Optional[BaselineResult] = None,
) -> None:
    sections = [("", applied)]
    if applied_project is not None:
        sections.append(("deep: ", applied_project))
    for prefix, section in sections:
        for finding in section.new:
            print(prefix + finding.format(), file=out)
            if finding.snippet:
                print(f"    {finding.line} | {finding.snippet}", file=out)
        for entry in section.stale:
            print(
                f"{prefix}stale baseline entry: [{entry.rule}] {entry.path} "
                f"({entry.count}x) — fixed? run --update-baseline",
                file=out,
            )
    summary = (
        f"{len(applied.new)} finding(s), {applied.baselined_count} "
        f"baselined, {len(result.suppressed)} suppressed, "
        f"{len(applied.stale)} stale baseline entr(y/ies) across "
        f"{result.files_scanned} file(s)"
    )
    if result.cache_hits:
        summary += f" [{result.cache_hits} cached]"
    print(summary, file=out)
    if deep is not None and applied_project is not None:
        deep_summary = (
            f"deep: {len(applied_project.new)} finding(s), "
            f"{applied_project.baselined_count} baselined, "
            f"{len(deep.project_suppressed)} suppressed, "
            f"{len(applied_project.stale)} stale across "
            f"{deep.project_modules} module(s)"
        )
        if deep.project_reused:
            deep_summary += " [project cache reused]"
        elif deep.project_cache_hits:
            deep_summary += f" [{deep.project_cache_hits} closure-cached]"
        print(deep_summary, file=out)
    if exit_code == 0:
        print("lint: clean", file=out)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.lintcli``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter for the repro package",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
