"""Project graph: imports, symbols, def-use origins, and calls.

One :func:`build_project` call turns a set of source files into a
:class:`ProjectGraph`:

* **Module identity** is the *module path* (``repro/parallel/shm.py``),
  derived from the file path or overridden by a ``# repro-module:``
  marker — exactly like the per-file engine, so fixture mini-projects
  can impersonate real modules. Imports resolve against the dotted form
  of that identity (``repro.parallel.shm``), which is how multi-file
  fixtures import each other through canonical ``repro.*`` paths.
* **Symbols**: top-level functions, classes (with methods and a
  ``self.*`` attribute-origin table harvested from method bodies), and
  import bindings. Module-level statements form a ``<module>`` pseudo
  function so script-style code is analyzed too.
* **Def-use**: a flow-insensitive intraprocedural environment mapping
  local names to :class:`Origin` values (constructor calls, parameters,
  attribute chains, set displays, ...). Deliberately last-write-wins
  and branch-blind — good enough for lint, documented as such.
* **Calls**: every call site is resolved through imports, ``self.*``
  methods (including single-level inheritance walks), module-level
  defs, and locally-typed objects, to a :class:`Callee` that is either
  a project ``(module, qualname)`` or an external dotted name. Call
  sites record whether they sit lexically inside a
  ``with *.read_view():`` block (the pin-discipline primitive).

Known approximations (also documented in ARCHITECTURE.md): no
flow-sensitivity, nested ``def`` bodies are attributed to their
enclosing function, attribute calls on objects of unknown type are
unresolved (they create no call edge), and dynamic dispatch is resolved
by the static class of the receiver only.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.rules import MODULE_MARKER_RE, dotted_name

#: Builtins that matter to rules (resolved as external callees).
_KNOWN_BUILTINS = frozenset(
    {"set", "frozenset", "dict", "sorted", "list", "tuple", "hash", "id"}
)


def module_path_for(path: Union[str, Path], root: Optional[Path] = None) -> str:
    """Module path for a file: anchored on ``repro`` or root-relative."""
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    if root is not None:
        try:
            return Path(path).resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return Path(path).name


def dotted_for(module_path: str) -> str:
    """Dotted import name of a module path (``a/b/c.py`` -> ``a.b.c``)."""
    stem = module_path[:-3] if module_path.endswith(".py") else module_path
    if stem.endswith("/__init__"):
        stem = stem[: -len("/__init__")]
    return stem.replace("/", ".")


@dataclass(frozen=True)
class Callee:
    """Resolution of one call site.

    ``kind == "project"``: ``module`` is a module path and ``qualname``
    a function, class (constructor), or ``Class.method`` in it.
    ``kind == "external"``: ``dotted`` is the full dotted name
    (``numpy.random.default_rng``, ``hash``).
    """

    kind: str
    module: str = ""
    qualname: str = ""
    dotted: str = ""


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    callee: Optional[Callee]
    #: Lexically inside a ``with <expr>.read_view():`` block.
    pinned: bool


@dataclass
class Origin:
    """Abstract value of an expression under the def-use approximation."""

    kind: str  # call|param|const|attr|selfattr|sub|set|tuple|binop|elt|unknown
    callee: Optional[Callee] = None
    node: Optional[ast.AST] = None
    name: str = ""
    attr: str = ""
    base: Optional["Origin"] = None
    items: Tuple["Origin", ...] = ()
    value: object = None


UNKNOWN = Origin("unknown")


@dataclass
class FunctionInfo:
    """One function, method, or the ``<module>`` pseudo-function."""

    module_path: str
    qualname: str
    name: str
    class_name: Optional[str]
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module]

    @property
    def key(self) -> Tuple[str, str]:
        return (self.module_path, self.qualname)

    def param_names(self) -> List[str]:
        if isinstance(self.node, ast.Module):
            return []
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        names.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ClassInfo:
    """One top-level class: methods, bases, ``self.*`` attribute origins."""

    module_path: str
    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` -> Origin of the (last) value assigned to it.
    attr_origins: Dict[str, Origin] = field(default_factory=dict)
    #: Class-body constant flags (``__counter_class__ = True`` etc.).
    class_constants: Dict[str, object] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module of the project."""

    path: str
    module_path: str
    dotted: str
    tree: ast.Module
    lines: List[str]
    #: Local name -> dotted import target (``np`` -> ``numpy``).
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


def _resolve_marker(source: str) -> Optional[str]:
    for raw in source.splitlines()[:3]:
        match = MODULE_MARKER_RE.match(raw.strip())
        if match:
            return match.group(1)
    return None


def _harvest_imports(
    tree: ast.Module, module_dotted: str, is_package: bool
) -> Dict[str, str]:
    """Map each locally-bound name to its dotted import target."""
    bindings: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    bindings[alias.asname] = alias.name
                else:
                    bindings[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base_parts = module_dotted.split(".") if module_dotted else []
            if node.level > 0:
                if not is_package:
                    base_parts = base_parts[:-1]
                if node.level > 1:
                    base_parts = base_parts[: len(base_parts) - (node.level - 1)]
                prefix = ".".join(base_parts)
            else:
                prefix = ""
            module = node.module or ""
            if prefix and module:
                source_module = f"{prefix}.{module}"
            else:
                source_module = prefix or module
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                target = (
                    f"{source_module}.{alias.name}" if source_module else alias.name
                )
                bindings[bound] = target
    return bindings


def _function_info(
    module_path: str,
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    class_name: Optional[str] = None,
) -> FunctionInfo:
    qualname = f"{class_name}.{node.name}" if class_name else node.name
    return FunctionInfo(
        module_path=module_path,
        qualname=qualname,
        name=node.name,
        class_name=class_name,
        node=node,
    )


def _parse_module(path: str, source: str, root: Optional[Path]) -> ModuleInfo:
    module_path = _resolve_marker(source) or module_path_for(path, root)
    tree = ast.parse(source)
    dotted = dotted_for(module_path)
    is_package = module_path.endswith("/__init__.py") or module_path == "__init__.py"
    minfo = ModuleInfo(
        path=path,
        module_path=module_path,
        dotted=dotted,
        tree=tree,
        lines=source.splitlines(),
        imports=_harvest_imports(tree, dotted, is_package),
    )
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _function_info(module_path, stmt)
            minfo.functions[info.qualname] = info
        elif isinstance(stmt, ast.ClassDef):
            cinfo = ClassInfo(module_path=module_path, name=stmt.name, node=stmt)
            for base in stmt.bases:
                base_dotted = dotted_name(base)
                if base_dotted is not None:
                    cinfo.bases.append(base_dotted)
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = _function_info(module_path, item, stmt.name)
                    cinfo.methods[item.name] = info
                    minfo.functions[info.qualname] = info
                elif isinstance(item, ast.Assign) and len(item.targets) == 1:
                    target = item.targets[0]
                    if isinstance(target, ast.Name) and isinstance(
                        item.value, ast.Constant
                    ):
                        cinfo.class_constants[target.id] = item.value.value
            minfo.classes[stmt.name] = cinfo
    pseudo = FunctionInfo(
        module_path=module_path,
        qualname="<module>",
        name="<module>",
        class_name=None,
        node=tree,
    )
    minfo.functions["<module>"] = pseudo
    return minfo


class _BodyWalker:
    """Walks a function body without crossing into methods of nested
    classes or module-level defs; nested ``def`` bodies are *included*
    (attributed to the enclosing function — closure approximation)."""

    def __init__(self, skip_defs_at_top: bool) -> None:
        self.skip_defs_at_top = skip_defs_at_top

    def walk(self, node: ast.AST) -> Iterator[Tuple[ast.AST, bool]]:
        """Yield ``(node, pinned)`` pairs in source order."""
        body: Sequence[ast.stmt]
        if isinstance(node, ast.Module):
            body = node.body
        else:
            body = node.body  # type: ignore[attr-defined]
        yield from self._walk_stmts(body, False, top=True)

    def _walk_stmts(
        self, stmts: Sequence[ast.stmt], pinned: bool, top: bool = False
    ) -> Iterator[Tuple[ast.AST, bool]]:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if top and self.skip_defs_at_top:
                    continue
                if isinstance(stmt, ast.ClassDef):
                    continue
                yield from self._walk_stmts(stmt.body, pinned)
                continue
            yield (stmt, pinned)
            child_pinned = pinned
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                if any(_is_read_view(item.context_expr) for item in stmt.items):
                    child_pinned = True
            for block in _stmt_blocks(stmt):
                yield from self._walk_stmts(block, child_pinned)


def stmt_expressions(stmt: ast.AST) -> Iterator[ast.AST]:
    """All nodes in ``stmt``'s own expression fields.

    Nested statement blocks (``body``/``orelse``/``finalbody``/except
    handlers) are excluded — :class:`_BodyWalker` yields those
    statements separately, so walking them here would visit each
    nested expression twice (and under the wrong pinned flag).
    """
    for field, value in ast.iter_fields(stmt):
        if field in ("body", "orelse", "finalbody", "handlers"):
            continue
        if isinstance(value, ast.AST):
            yield from ast.walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.AST):
                    yield from ast.walk(item)


def _stmt_blocks(stmt: ast.stmt) -> List[List[ast.stmt]]:
    blocks: List[List[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            blocks.append(block)
    handlers = getattr(stmt, "handlers", None)
    if handlers:
        for handler in handlers:
            blocks.append(handler.body)
    return blocks


def _is_read_view(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "read_view"
    )


class ProjectGraph:
    """The whole-program view consumed by cross-module rules."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self._dotted_index: Dict[str, str] = {
            minfo.dotted: module_path for module_path, minfo in modules.items()
        }
        self._env_cache: Dict[Tuple[str, str], Dict[str, Origin]] = {}
        self._calls_cache: Dict[Tuple[str, str], List[CallSite]] = {}
        self._import_edges: Optional[Dict[str, Set[str]]] = None

    # ----------------------------------------------------------- iteration
    def functions(self) -> Iterator[FunctionInfo]:
        for module_path in sorted(self.modules):
            minfo = self.modules[module_path]
            for qualname in sorted(minfo.functions):
                yield minfo.functions[qualname]

    def function(self, module_path: str, qualname: str) -> Optional[FunctionInfo]:
        """Look up a function, walking base classes for methods."""
        minfo = self.modules.get(module_path)
        if minfo is None:
            return None
        found = minfo.functions.get(qualname)
        if found is not None:
            return found
        if "." in qualname:
            class_name, method = qualname.split(".", 1)
            resolved = self.resolve_method(minfo, class_name, method)
            if resolved is not None:
                return resolved
        return None

    def class_info(self, module_path: str, name: str) -> Optional[ClassInfo]:
        minfo = self.modules.get(module_path)
        return minfo.classes.get(name) if minfo is not None else None

    def is_class(self, module_path: str, name: str) -> bool:
        return self.class_info(module_path, name) is not None

    # ------------------------------------------------------ import closure
    def import_edges(self) -> Dict[str, Set[str]]:
        """Module path -> project module paths it imports."""
        if self._import_edges is None:
            edges: Dict[str, Set[str]] = {}
            for module_path, minfo in self.modules.items():
                targets: Set[str] = set()
                for target_dotted in minfo.imports.values():
                    resolved = self._resolve_module_prefix(target_dotted)
                    if resolved is not None and resolved != module_path:
                        targets.add(resolved)
                edges[module_path] = targets
            self._import_edges = edges
        return self._import_edges

    def import_closure(self, module_path: str) -> Set[str]:
        """``module_path`` plus everything it transitively imports."""
        edges = self.import_edges()
        seen: Set[str] = set()
        stack = [module_path]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(edges.get(current, ()))
        return seen

    def _resolve_module_prefix(self, dotted: str) -> Optional[str]:
        parts = dotted.split(".")
        for length in range(len(parts), 0, -1):
            prefix = ".".join(parts[:length])
            if prefix in self._dotted_index:
                return self._dotted_index[prefix]
        return None

    # ------------------------------------------------------ call resolution
    def resolve_dotted(self, dotted: str) -> Optional[Callee]:
        """Resolve a fully-expanded dotted name to a callee."""
        parts = dotted.split(".")
        for length in range(len(parts), 0, -1):
            prefix = ".".join(parts[:length])
            module_path = self._dotted_index.get(prefix)
            if module_path is None:
                continue
            rest = parts[length:]
            if not rest:
                return Callee("module", module=module_path)
            if len(rest) <= 2:
                return Callee(
                    "project", module=module_path, qualname=".".join(rest)
                )
            return None
        return Callee("external", dotted=dotted)

    def resolve_method(
        self, minfo: ModuleInfo, class_name: str, method: str
    ) -> Optional[FunctionInfo]:
        """Find ``method`` on ``class_name``, walking project bases."""
        seen: Set[Tuple[str, str]] = set()

        def _search(owner: ModuleInfo, name: str) -> Optional[FunctionInfo]:
            if (owner.module_path, name) in seen:
                return None
            seen.add((owner.module_path, name))
            cinfo = owner.classes.get(name)
            if cinfo is None:
                return None
            if method in cinfo.methods:
                return cinfo.methods[method]
            for base_dotted in cinfo.bases:
                callee = self._resolve_name_in(owner, base_dotted)
                if (
                    callee is not None
                    and callee.kind == "project"
                    and "." not in callee.qualname
                ):
                    base_module = self.modules.get(callee.module)
                    if base_module is not None:
                        found = _search(base_module, callee.qualname)
                        if found is not None:
                            return found
            return None

        return _search(minfo, class_name)

    def _resolve_name_in(self, minfo: ModuleInfo, dotted: str) -> Optional[Callee]:
        """Resolve a dotted name as seen from inside ``minfo``."""
        parts = dotted.split(".")
        head = parts[0]
        target = minfo.imports.get(head)
        if target is not None:
            return self.resolve_dotted(".".join([target] + parts[1:]))
        if head in minfo.classes or head in minfo.functions:
            if len(parts) <= 2:
                return Callee(
                    "project", module=minfo.module_path, qualname=dotted
                )
            return None
        if head in _KNOWN_BUILTINS or len(parts) > 1:
            return Callee("external", dotted=dotted)
        return Callee("external", dotted=dotted)

    def resolve_call(
        self, func: FunctionInfo, call: ast.Call
    ) -> Optional[Callee]:
        """Best-effort resolution of one call site."""
        minfo = self.modules[func.module_path]
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if parts[0] == "self" and func.class_name is not None:
            if len(parts) == 2:
                method = self.resolve_method(minfo, func.class_name, parts[1])
                if method is not None:
                    return Callee(
                        "project",
                        module=method.module_path,
                        qualname=method.qualname,
                    )
            return None
        if parts[0] in minfo.imports or parts[0] in minfo.classes or (
            parts[0] in minfo.functions and len(parts) == 1
        ):
            return self._resolve_name_in(minfo, dotted)
        # Locally-typed receiver: x = ClassName(...); x.method()
        if len(parts) == 2:
            env = self.env_of(func)
            origin = env.get(parts[0])
            if (
                origin is not None
                and origin.kind == "call"
                and origin.callee is not None
                and origin.callee.kind == "project"
                and "." not in origin.callee.qualname
                and self.is_class(origin.callee.module, origin.callee.qualname)
            ):
                method = self.resolve_method(
                    self.modules[origin.callee.module],
                    origin.callee.qualname,
                    parts[1],
                )
                if method is not None:
                    return Callee(
                        "project",
                        module=method.module_path,
                        qualname=method.qualname,
                    )
            return None
        if len(parts) == 1:
            return Callee("external", dotted=dotted)
        return None

    def calls_of(self, func: FunctionInfo) -> List[CallSite]:
        """All call sites in ``func`` (nested defs inlined), resolved."""
        cached = self._calls_cache.get(func.key)
        if cached is not None:
            return cached
        walker = _BodyWalker(skip_defs_at_top=isinstance(func.node, ast.Module))
        sites: List[CallSite] = []
        for stmt, pinned in walker.walk(func.node):
            for node in stmt_expressions(stmt):
                if isinstance(node, ast.Call):
                    sites.append(
                        CallSite(
                            node=node,
                            callee=self.resolve_call(func, node),
                            pinned=pinned,
                        )
                    )
        self._calls_cache[func.key] = sites
        return sites

    def statements_of(self, func: FunctionInfo) -> List[Tuple[ast.AST, bool]]:
        """Function-body statements with their pinned flags."""
        walker = _BodyWalker(skip_defs_at_top=isinstance(func.node, ast.Module))
        return list(walker.walk(func.node))

    def returns_of(self, func: FunctionInfo) -> List[ast.expr]:
        """Return-value expressions of ``func`` (nested defs excluded)."""
        if isinstance(func.node, ast.Module):
            return []
        out: List[ast.expr] = []

        def _scan(stmts: Sequence[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    out.append(stmt.value)
                for block in _stmt_blocks(stmt):
                    _scan(block)

        _scan(func.node.body)
        return out

    # --------------------------------------------------------- def-use env
    def env_of(self, func: FunctionInfo) -> Dict[str, Origin]:
        """Flow-insensitive name -> Origin map for ``func``'s body."""
        cached = self._env_cache.get(func.key)
        if cached is not None:
            return cached
        env: Dict[str, Origin] = {}
        self._env_cache[func.key] = env  # placed first: cycle guard
        params = set(func.param_names())
        walker = _BodyWalker(skip_defs_at_top=isinstance(func.node, ast.Module))
        for stmt, _pinned in walker.walk(func.node):
            if isinstance(stmt, ast.Assign):
                value = self.origin_of(stmt.value, func, env, params)
                for target in stmt.targets:
                    self._bind(target, value, env)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value = self.origin_of(stmt.value, func, env, params)
                if annotation_is_set(stmt.annotation):
                    value = Origin("set", node=stmt.value)
                self._bind(stmt.target, value, env)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                iter_origin = self.origin_of(stmt.iter, func, env, params)
                self._bind(stmt.target, Origin("elt", base=iter_origin), env)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        value = self.origin_of(
                            item.context_expr, func, env, params
                        )
                        self._bind(item.optional_vars, value, env)
        return env

    def _bind(self, target: ast.expr, value: Origin, env: Dict[str, Origin]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for index, elt in enumerate(target.elts):
                if value.kind == "tuple" and index < len(value.items):
                    self._bind(elt, value.items[index], env)
                else:
                    self._bind(elt, Origin("elt", base=value), env)

    def origin_of(
        self,
        expr: ast.expr,
        func: FunctionInfo,
        env: Optional[Dict[str, Origin]] = None,
        params: Optional[Set[str]] = None,
    ) -> Origin:
        """Abstract value of ``expr`` in ``func``'s environment."""
        if env is None:
            env = self.env_of(func)
        if params is None:
            params = set(func.param_names())
        if isinstance(expr, ast.Name):
            bound = env.get(expr.id)
            if bound is not None:
                return bound
            if expr.id in params:
                return Origin("param", name=expr.id)
            return Origin("name", name=expr.id, node=expr)
        if isinstance(expr, ast.Constant):
            return Origin("const", value=expr.value, node=expr)
        if isinstance(expr, ast.Call):
            return Origin(
                "call", callee=self.resolve_call(func, expr), node=expr
            )
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                return Origin("selfattr", attr=expr.attr, node=expr)
            return Origin(
                "attr",
                base=self.origin_of(expr.value, func, env, params),
                attr=expr.attr,
                node=expr,
            )
        if isinstance(expr, ast.Subscript):
            return Origin(
                "sub",
                base=self.origin_of(expr.value, func, env, params),
                node=expr,
            )
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return Origin("set", node=expr)
        if isinstance(expr, (ast.Tuple, ast.List)):
            return Origin(
                "tuple",
                items=tuple(
                    self.origin_of(elt, func, env, params) for elt in expr.elts
                ),
                node=expr,
            )
        if isinstance(expr, ast.BinOp):
            return Origin(
                "binop",
                items=(
                    self.origin_of(expr.left, func, env, params),
                    self.origin_of(expr.right, func, env, params),
                ),
                node=expr,
            )
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            return Origin("tuple", node=expr)
        if isinstance(expr, ast.IfExp):
            return Origin(
                "binop",
                items=(
                    self.origin_of(expr.body, func, env, params),
                    self.origin_of(expr.orelse, func, env, params),
                ),
                node=expr,
            )
        if isinstance(expr, ast.Starred):
            return self.origin_of(expr.value, func, env, params)
        return Origin("unknown", node=expr)

    # ------------------------------------------------------- class helpers
    def self_attr_origin(self, func: FunctionInfo, attr: str) -> Origin:
        """Origin of ``self.<attr>`` inside a method of ``func``'s class."""
        if func.class_name is None:
            return UNKNOWN
        minfo = self.modules[func.module_path]
        cinfo = minfo.classes.get(func.class_name)
        if cinfo is None:
            return UNKNOWN
        if not cinfo.attr_origins:
            self._harvest_attr_origins(cinfo)
        return cinfo.attr_origins.get(attr, UNKNOWN)

    def _harvest_attr_origins(self, cinfo: ClassInfo) -> None:
        """Collect ``self.X = <expr>`` origins from all methods."""
        cinfo.attr_origins["__harvested__"] = UNKNOWN
        for method in cinfo.methods.values():
            env = self.env_of(method)
            params = set(method.param_names())
            walker = _BodyWalker(skip_defs_at_top=False)
            for stmt, _pinned in walker.walk(method.node):
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                annotation: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign):
                    targets = list(stmt.targets)
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    targets = [stmt.target]
                    value = stmt.value
                    annotation = stmt.annotation
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        if annotation is not None and annotation_is_set(annotation):
                            cinfo.attr_origins[target.attr] = Origin("set")
                        elif value is not None:
                            cinfo.attr_origins[target.attr] = self.origin_of(
                                value, method, env, params
                            )

    def resolve_annotation(
        self, minfo: ModuleInfo, annotation: Optional[ast.expr]
    ) -> Optional[Tuple[str, str]]:
        """Resolve a type annotation to a project ``(module, Class)``."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        dotted = dotted_name(annotation)
        if dotted is None:
            if isinstance(annotation, ast.Subscript):
                return self.resolve_annotation(minfo, annotation.value)
            return None
        callee = self._resolve_name_in(minfo, dotted)
        if (
            callee is not None
            and callee.kind == "project"
            and "." not in callee.qualname
            and self.is_class(callee.module, callee.qualname)
        ):
            return (callee.module, callee.qualname)
        return None


def annotation_is_set(annotation: ast.expr) -> bool:
    dotted = dotted_name(annotation)
    if dotted is None and isinstance(annotation, ast.Subscript):
        dotted = dotted_name(annotation.value)
    if dotted is None and isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        dotted = annotation.value.split("[", 1)[0].strip()
    if dotted is None:
        return False
    return dotted.split(".")[-1] in ("Set", "set", "FrozenSet", "frozenset")


def build_project_from_sources(
    sources: Dict[str, str], root: Optional[Path] = None
) -> ProjectGraph:
    """Build a project graph from ``{file path: source text}``.

    Files that fail to parse are skipped (the per-file engine already
    reports them as ``parse-error`` findings).
    """
    modules: Dict[str, ModuleInfo] = {}
    for path in sorted(sources):
        try:
            minfo = _parse_module(path, sources[path], root)
        except SyntaxError:
            continue
        modules[minfo.module_path] = minfo
    return ProjectGraph(modules)


def build_project(
    files: Sequence[Union[str, Path]], root: Optional[Path] = None
) -> ProjectGraph:
    """Build a project graph by reading ``files`` from disk."""
    sources: Dict[str, str] = {}
    for file in files:
        sources[str(file)] = Path(file).read_text(encoding="utf-8")
    return build_project_from_sources(sources, root)
