"""Whole-program analysis layer: the project graph behind ``--deep``.

Where :mod:`repro.analysis.engine` sees one parsed file at a time, this
package builds a *project* view over a set of files: the module import
graph, a per-module symbol table (top-level functions, classes, their
methods and ``self.*`` attribute types), an intraprocedural def-use
approximation (:class:`~repro.analysis.project.graph.Origin`), and a
call-graph approximation resolving dotted calls through imports,
``self.*`` methods, and locally-typed objects. The cross-module rule
family under :mod:`repro.analysis.rules.crossmodule` consumes this view
to check contracts no single file can witness: shared-memory planes
stay read-only, store reads stay under a pinned snapshot, RNG seeds
trace to injected entropy, and accounting counters mutate only in
their owning module.
"""

from repro.analysis.project.graph import (
    CallSite,
    Callee,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Origin,
    ProjectGraph,
    build_project,
    build_project_from_sources,
)

__all__ = [
    "CallSite",
    "Callee",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Origin",
    "ProjectGraph",
    "build_project",
    "build_project_from_sources",
]
