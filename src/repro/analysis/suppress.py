"""Per-line suppression comments.

Syntax::

    some_code()  # repro: allow[rule-id] reason text

    # repro: allow[rule-id,other-rule] reason text
    some_code()

An inline suppression covers its own line; a comment-only suppression
line covers the next non-blank, non-comment line. The reason is
mandatory and the rule ids must be registered — a malformed suppression
does not suppress anything and instead yields a ``suppress-format``
finding, so a typo cannot silently disable enforcement.

Suppressions are recognized only in *actual comments* (via
:mod:`tokenize`), never in string literals or docstrings that merely
mention the syntax.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.findings import Finding

SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\](.*)$")


@dataclass
class Suppression:
    """One parsed suppression comment."""

    line: int  # line the suppression was written on (1-based)
    applies_to: int  # line whose findings it suppresses
    rules: Tuple[str, ...]
    reason: str
    #: Rules from this suppression that actually matched a finding.
    used_rules: Set[str] = field(default_factory=set)


def _iter_comments(source: str) -> List[Tuple[int, int, str]]:
    """All ``(line, col, text)`` comment tokens in ``source``."""
    comments: List[Tuple[int, int, str]] = []
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                comments.append(
                    (token.start[0], token.start[1], token.string)
                )
    except (tokenize.TokenError, SyntaxError):
        # The engine only parses suppressions after a successful
        # ast.parse, so this is unreachable for lintable files; stay
        # total anyway and treat the file as suppression-free.
        return []
    return comments


def _is_comment_only(line: str) -> bool:
    return line.strip().startswith("#")


def _next_code_line(lines: List[str], start: int) -> int:
    """First 1-based line after ``start`` that holds code (or ``start``)."""
    for offset in range(start + 1, len(lines) + 1):
        text = lines[offset - 1].strip()
        if text and not text.startswith("#"):
            return offset
    return start


def parse_suppressions(
    path: str, source: str, known_rules: Iterable[str]
) -> Tuple[Dict[int, List[Suppression]], List[Finding]]:
    """Extract suppressions and malformed-suppression findings.

    Returns ``(by_line, findings)`` where ``by_line`` maps the covered
    source line to its suppressions.
    """
    known = set(known_rules)
    lines = source.splitlines()
    by_line: Dict[int, List[Suppression]] = {}
    findings: List[Finding] = []
    for lineno, col, text in _iter_comments(source):
        match = SUPPRESS_RE.search(text)
        if match is None:
            continue
        rule_ids = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        reason = match.group(2).strip()
        snippet = lines[lineno - 1].strip() if lineno <= len(lines) else text

        def _bad(message: str) -> Finding:
            return Finding(
                path=path,
                line=lineno,
                col=col + match.start() + 1,
                rule="suppress-format",
                message=message,
                snippet=snippet,
            )

        if not rule_ids:
            findings.append(_bad("suppression names no rule ids"))
            continue
        unknown = [rule for rule in rule_ids if rule not in known]
        if unknown:
            findings.append(
                _bad(
                    "suppression names unknown rule id(s): "
                    + ", ".join(sorted(unknown))
                )
            )
            continue
        if not reason:
            findings.append(
                _bad(
                    "suppression must give a reason: "
                    "'# repro: allow[rule-id] why it is safe'"
                )
            )
            continue
        applies_to = (
            _next_code_line(lines, lineno)
            if lineno <= len(lines) and _is_comment_only(lines[lineno - 1])
            else lineno
        )
        suppression = Suppression(
            line=lineno, applies_to=applies_to, rules=rule_ids, reason=reason
        )
        by_line.setdefault(applies_to, []).append(suppression)
    return by_line, findings


def apply_suppressions(
    findings: List[Finding],
    by_line: Dict[int, List[Suppression]],
) -> Tuple[List[Finding], List[Finding]]:
    """Split ``findings`` into (kept, suppressed)."""
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        matched = False
        for suppression in by_line.get(finding.line, ()):
            if finding.rule in suppression.rules:
                suppression.used_rules.add(finding.rule)
                matched = True
        if matched:
            suppressed.append(finding)
        else:
            kept.append(finding)
    return kept, suppressed
