# repro-module: repro/memstore/store.py
"""Fixture: the owning module's recording helper may mutate counters."""

from typing import Any


class _Recorder:
    def __init__(self, summary: Any) -> None:
        self._summary = summary

    def _record(self, nbytes: int) -> None:
        self._summary.structure_count += 1
        self._summary.structure_bytes += nbytes
