"""Fixture: benchmark timing goes through the allowlisted helper."""

from repro.bench import bench_timer


def measure() -> float:
    with bench_timer() as timer:
        sum(range(1000))
    return timer.elapsed_s
