"""Fixture: randomness is an injected, explicitly-seeded Generator."""

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def sample_roots(rng: np.random.Generator, n: int) -> "np.ndarray":
    return rng.integers(0, 10, size=n)
