"""Fixture: mutable-default fires on shared mutable default values."""

from typing import Any, Dict, List


def collect(items: List[int], seen: List[int] = []) -> List[int]:
    seen.extend(items)
    return seen


def index_rows(rows: List[Any], table: Dict[str, Any] = {}) -> Dict[str, Any]:
    for row in rows:
        table[str(row)] = row
    return table
