# repro-module: repro/memstore/reads_fixture.py
"""Fixture: except-swallow fires on bare except and silent handlers."""

from typing import Any, Iterable


def read_all(reads: Iterable[Any]) -> None:
    for read in reads:
        try:
            read()
        except:  # noqa: E722
            pass


def read_quietly(read: Any) -> None:
    try:
        read()
    except ValueError:
        pass
