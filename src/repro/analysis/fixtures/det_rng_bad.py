"""Fixture: det-rng fires on unseeded / module-global randomness."""

import random

import numpy as np


def sample_roots(n: int) -> "np.ndarray":
    rng = np.random.default_rng()
    np.random.seed(7)
    return rng.integers(0, int(random.random() * 10) + 1, size=n)
