"""Fixture: det-wallclock fires on host-clock imports and calls."""

import time


def elapsed_since_start() -> float:
    start = time.perf_counter()
    return time.time() - start
