# repro-module: repro/gnn/rng_trainer.py
"""GOOD: the seed is injected configuration, threaded to the helper."""

from repro.framework.rngmaker import make_rng


def shuffled_ids(config_seed):
    rng = make_rng(config_seed)
    return rng.permutation(16)
