# repro-module: repro/gnn/rng_trainer.py
"""BAD: the seed is laundered through another module's helper.

Per-file, this module never touches an RNG API and the helper module
never sees an ambient value; only the interprocedural seed trace
connects ``hash(...)`` here to ``default_rng`` over there.
"""

from repro.framework.rngmaker import make_rng


def shuffled_ids(run_name):
    rng = make_rng(hash(run_name))  # ambient: hash() varies per process
    return rng.permutation(16)
