# repro-module: repro/framework/rngmaker.py
"""Helper that builds generators from whatever seed it is handed."""

from numpy.random import default_rng


def make_rng(seed):
    return default_rng(seed)
