# repro-module: repro/gnn/stats_worker.py
"""GOOD: counters advance only through the owner's recording helper."""

from repro.framework.run_stats import make_stats


def run_once():
    s = make_stats()
    s.record_widget()
    return s
