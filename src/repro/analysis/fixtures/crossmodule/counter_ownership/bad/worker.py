# repro-module: repro/gnn/stats_worker.py
"""BAD: mutates another module's counter field directly.

The receiver's type is only known through the cross-module factory, so
a per-file pass cannot tell that ``s`` is a RunStats owned elsewhere.
"""

from repro.framework.run_stats import make_stats


def run_once():
    s = make_stats()
    s.widget_count += 1  # bypasses the owner's recording helper
    return s
