# repro-module: repro/framework/run_stats.py
"""Owner module for RunStats; mutations belong here."""


class RunStats:
    __counter_class__ = True

    def __init__(self):
        self.widget_count = 0

    def record_widget(self):
        self.widget_count += 1


def make_stats():
    return RunStats()
