# repro-module: repro/gnn/plane_reader.py
"""GOOD: reads the plane view; writes only to a private copy."""

from repro.parallel.shm import attach_graph


def degrees(handle):
    attached = attach_graph(handle)
    indices = attached.indices
    total = indices[0]  # reading is fine
    scratch = indices.copy()
    scratch[0] = 0  # writing a copy is fine
    return total, scratch
