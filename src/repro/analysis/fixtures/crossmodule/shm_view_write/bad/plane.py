# repro-module: repro/parallel/shm.py
"""Stand-in plane module: the taint source the rule keys on."""


def attach_graph(handle):
    return handle
