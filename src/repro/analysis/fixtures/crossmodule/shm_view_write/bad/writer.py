# repro-module: repro/gnn/plane_writer.py
"""BAD: writes through a plane view obtained from another module.

No single file can see the violation: this file only calls an opaque
helper, and the helper never writes. Only the cross-module taint
(attach_graph -> helper return -> arr) exposes it.
"""

from repro.gnn.plane_helper import plane_indices


def clobber(handle):
    arr = plane_indices(handle)
    arr[0] = 1  # writes shared plane memory
    arr += 2  # in-place on the same view
    return arr
