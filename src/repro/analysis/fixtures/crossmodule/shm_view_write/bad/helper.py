# repro-module: repro/gnn/plane_helper.py
"""Launders a plane array through a helper's return value."""

from repro.parallel.shm import attach_graph


def plane_indices(handle):
    attached = attach_graph(handle)
    return attached.indices
