# repro-module: repro/framework/hop_walker.py
"""Helper that issues store reads; has no idea about pinning."""


def expand_frontier(store, frontier):
    return store.get_neighbors_batch(frontier)


def gather(store, nodes):
    return store.get_attributes_batch(nodes)
