# repro-module: repro/framework/hop_sampler.py
"""GOOD: every store read reached from sample() is under the pin."""

from repro.framework.hop_walker import expand_frontier, gather


class HopSampler:
    def __init__(self, store):
        self.store = store

    def sample(self, roots):
        with self.store.read_view():
            frontier = expand_frontier(self.store, roots)
            return gather(self.store, frontier)
