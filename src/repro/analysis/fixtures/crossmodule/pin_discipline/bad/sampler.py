# repro-module: repro/framework/hop_sampler.py
"""BAD: the attribute gather escapes the read_view() pin.

The helper lives in another module and looks innocent on its own; the
entry point pins the hop expansion but calls the gather *outside* the
``with`` block, so only the cross-module call graph sees the unpinned
store read.
"""

from repro.framework.hop_walker import expand_frontier, gather


class HopSampler:
    def __init__(self, store):
        self.store = store

    def sample(self, roots):
        with self.store.read_view():
            frontier = expand_frontier(self.store, roots)
        return gather(self.store, frontier)  # outside the pin
