"""Fixture: acct-mutation fires on counter writes outside the owner."""

from typing import Any


def tamper(summary: Any, stats: Any, cache: Any) -> None:
    summary.structure_count += 1
    stats.failed_reads = 0
    cache.neighbor_hits += 2
