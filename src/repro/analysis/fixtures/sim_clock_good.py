# repro-module: repro/serving/stamp_fixture.py
"""Fixture: event timestamps come from the simulator clock."""

from typing import Any


def stamp(event: Any, sim: Any) -> None:
    event.timestamp = sim.now
