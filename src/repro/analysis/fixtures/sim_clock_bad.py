# repro-module: repro/serving/stamp_fixture.py
"""Fixture: sim-clock fires when an event module imports host clocks."""

import time
from typing import Any


def stamp(event: Any) -> None:
    event.timestamp = time.time()
