# repro-module: repro/memstore/reads_fixture.py
"""Fixture: fault-path handlers re-raise or record to stats."""

from typing import Any, Iterable


def read_all(reads: Iterable[Any], stats: Any) -> None:
    for read in reads:
        try:
            read()
        except ValueError:
            stats.record_failure()


def read_or_raise(read: Any) -> None:
    try:
        read()
    except ValueError:
        raise
