"""Fixture: default to None, construct inside the function."""

from typing import Any, Dict, List, Optional


def collect(items: List[int], seen: Optional[List[int]] = None) -> List[int]:
    out: List[int] = [] if seen is None else seen
    out.extend(items)
    return out


def index_rows(
    rows: List[Any], table: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    result: Dict[str, Any] = {} if table is None else table
    for row in rows:
        result[str(row)] = row
    return result
