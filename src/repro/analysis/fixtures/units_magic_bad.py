"""Fixture: units-magic fires on inline conversion arithmetic."""


def link_bytes_per_s(gbps: float) -> float:
    return gbps * 1e9 / 8.0


def footprint_bytes(mib: int) -> int:
    return mib * 1024 ** 2


def show_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f} ms"
