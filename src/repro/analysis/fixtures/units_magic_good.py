"""Fixture: conversions go through repro.units names and helpers."""

from repro.units import MB, MS_PER_S, gbps_to_bytes_per_s


def link_bytes_per_s(gbps: float) -> float:
    return gbps_to_bytes_per_s(gbps)


def footprint_bytes(mib: int) -> int:
    return mib * MB


def show_ms(seconds: float) -> str:
    return f"{seconds * MS_PER_S:.2f} ms"
