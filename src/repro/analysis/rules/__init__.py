"""Rule registry and the per-file context rules run against.

Every rule is a small object with an ``rule_id``, human documentation
(``title``/``rationale``), and a ``check(ctx)`` returning findings for
one parsed file. Rules register themselves via :func:`register`, so
importing the rule modules is enough to populate :data:`RULES`.

Path scoping
------------
Rules scope themselves by *module path* (``repro/units.py``), which the
engine derives from the filesystem path. Fixture files (and tests) can
override it with a first-lines marker::

    # repro-module: repro/serving/gateway_fixture.py

so a fixture stored under ``repro/analysis/fixtures/`` can exercise a
rule that only applies inside, say, ``repro/serving/``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional

from repro.analysis.findings import Finding

#: Marker comment overriding the derived module path (first 3 lines).
MODULE_MARKER_RE = re.compile(r"^#\s*repro-module:\s*(\S+)\s*$")


class FileContext:
    """One parsed source file, as seen by every rule."""

    def __init__(
        self,
        path: str,
        module_path: str,
        tree: ast.Module,
        lines: List[str],
    ) -> None:
        self.path = path
        self.module_path = module_path
        self.tree = tree
        self.lines = lines

    def snippet(self, line: int) -> str:
        """Stripped source text of 1-based ``line`` ('' out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        line = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0)) + 1
        return Finding(
            path=self.module_path,
            line=line,
            col=col,
            rule=rule_id,
            message=message,
            snippet=self.snippet(line),
        )


class Rule:
    """Base class: one statically-checkable invariant."""

    #: Stable identifier used in findings, suppressions, and baselines.
    rule_id: str = ""
    #: One-line summary for ``repro lint --list-rules``.
    title: str = ""
    #: Why the invariant matters (shown by ``repro lint --explain``).
    rationale: str = ""

    def check(self, ctx: FileContext) -> List[Finding]:
        raise NotImplementedError

    def signature(self) -> str:
        """Cache-key contribution of this rule.

        Must change whenever the rule's *configuration* changes in a
        way that can change its findings — scope lists, allowlists,
        ownership registries. The engine folds every rule's signature
        into the result-cache key, so widening a rule's scope re-lints
        cached files instead of serving stale clean results. Rules
        with config beyond their id must override this.
        """
        return self.rule_id


class MetaRule(Rule):
    """A rule whose findings the engine emits itself (no AST check)."""

    def check(self, ctx: FileContext) -> List[Finding]:
        return []


class ProjectRule(Rule):
    """A whole-program rule: consumes the project graph, not one file.

    Project rules run only under ``repro lint --deep``. They register
    in the same registry as file rules (so suppressions validate and
    ``--explain`` documents them), but their per-file :meth:`check` is
    a no-op; the deep engine calls :meth:`check_project` once with the
    cross-module view built by :mod:`repro.analysis.project`.
    """

    def check(self, ctx: FileContext) -> List[Finding]:
        return []

    def check_project(self, project: object) -> List[Finding]:
        raise NotImplementedError


#: Registry of all known rules, keyed by ``rule_id``.
RULES: Dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add ``rule`` to the registry (idempotent per rule id)."""
    if not rule.rule_id:
        raise ValueError("rule must define a non-empty rule_id")
    RULES[rule.rule_id] = rule
    return rule


def all_rules() -> List[Rule]:
    """Registered rules in deterministic (id-sorted) order."""
    _load_builtin_rules()
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def all_project_rules() -> List[ProjectRule]:
    """Registered whole-program rules in deterministic (id-sorted) order."""
    _load_builtin_rules()
    return [
        rule
        for rule in (RULES[rule_id] for rule_id in sorted(RULES))
        if isinstance(rule, ProjectRule)
    ]


def get_rule(rule_id: str) -> Optional[Rule]:
    _load_builtin_rules()
    return RULES.get(rule_id)


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _load_builtin_rules() -> None:
    """Import the built-in rule modules (self-registering)."""
    from repro.analysis.rules import (  # noqa: F401
        accounting,
        defaults,
        determinism,
        exceptions,
        meta,
        simclock,
        units,
    )
    from repro.analysis.rules.crossmodule import (  # noqa: F401
        counters,
        pins,
        rng,
        shm,
    )
