"""Rule registry and the per-file context rules run against.

Every rule is a small object with an ``rule_id``, human documentation
(``title``/``rationale``), and a ``check(ctx)`` returning findings for
one parsed file. Rules register themselves via :func:`register`, so
importing the rule modules is enough to populate :data:`RULES`.

Path scoping
------------
Rules scope themselves by *module path* (``repro/units.py``), which the
engine derives from the filesystem path. Fixture files (and tests) can
override it with a first-lines marker::

    # repro-module: repro/serving/gateway_fixture.py

so a fixture stored under ``repro/analysis/fixtures/`` can exercise a
rule that only applies inside, say, ``repro/serving/``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional

from repro.analysis.findings import Finding

#: Marker comment overriding the derived module path (first 3 lines).
MODULE_MARKER_RE = re.compile(r"^#\s*repro-module:\s*(\S+)\s*$")


class FileContext:
    """One parsed source file, as seen by every rule."""

    def __init__(
        self,
        path: str,
        module_path: str,
        tree: ast.Module,
        lines: List[str],
    ) -> None:
        self.path = path
        self.module_path = module_path
        self.tree = tree
        self.lines = lines

    def snippet(self, line: int) -> str:
        """Stripped source text of 1-based ``line`` ('' out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        line = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0)) + 1
        return Finding(
            path=self.module_path,
            line=line,
            col=col,
            rule=rule_id,
            message=message,
            snippet=self.snippet(line),
        )


class Rule:
    """Base class: one statically-checkable invariant."""

    #: Stable identifier used in findings, suppressions, and baselines.
    rule_id: str = ""
    #: One-line summary for ``repro lint --list-rules``.
    title: str = ""
    #: Why the invariant matters (shown by ``repro lint --explain``).
    rationale: str = ""

    def check(self, ctx: FileContext) -> List[Finding]:
        raise NotImplementedError


class MetaRule(Rule):
    """A rule whose findings the engine emits itself (no AST check)."""

    def check(self, ctx: FileContext) -> List[Finding]:
        return []


#: Registry of all known rules, keyed by ``rule_id``.
RULES: Dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add ``rule`` to the registry (idempotent per rule id)."""
    if not rule.rule_id:
        raise ValueError("rule must define a non-empty rule_id")
    RULES[rule.rule_id] = rule
    return rule


def all_rules() -> List[Rule]:
    """Registered rules in deterministic (id-sorted) order."""
    _load_builtin_rules()
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def get_rule(rule_id: str) -> Optional[Rule]:
    _load_builtin_rules()
    return RULES.get(rule_id)


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _load_builtin_rules() -> None:
    """Import the built-in rule modules (self-registering)."""
    from repro.analysis.rules import (  # noqa: F401
        accounting,
        defaults,
        determinism,
        exceptions,
        meta,
        simclock,
        units,
    )
