"""Accounting discipline: counters mutate only in their owning module.

The access-accounting counters (``AccessSummary``), the hot-node-cache
hit/miss counters, and the fault/retry counters are the measured
quantities behind the Figure 2 access mix, the cache calibration, and
the fault-tolerance reporting. They are only meaningful if every
mutation goes through the owning module's recording helpers — a stray
``summary.remote_count += 1`` elsewhere silently skews a published
number.
"""

from __future__ import annotations

import ast
import hashlib
from typing import List

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule, register

#: Attribute-name ownership map: declared in the crossmodule
#: registry (single source of truth shared with the whole-program
#: counter-ownership rule), re-exported here for compatibility.
from repro.analysis.rules.crossmodule.registry import (  # noqa: E402
    COUNTER_OWNERS,
    registry_signature,
)


class AccountingMutationRule(Rule):
    rule_id = "acct-mutation"
    title = "accounting counters mutate only via their recording helpers"
    rationale = (
        "AccessSummary, cache hit/miss, and fault counters back the "
        "paper-facing characterization numbers and the replay-equivalence "
        "checks. Mutations outside the owning module bypass the recording "
        "helpers' occurrence accounting and corrupt those measurements."
    )

    def signature(self) -> str:
        digest = hashlib.sha1(
            registry_signature().encode("utf-8")
        ).hexdigest()
        return f"{self.rule_id}:{digest}"

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.Assign):
                targets = list(node.targets)
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                owners = COUNTER_OWNERS.get(target.attr)
                if owners is None or ctx.module_path in owners:
                    continue
                findings.append(
                    ctx.finding(
                        self.rule_id,
                        node,
                        f"accounting counter '.{target.attr}' may only be "
                        f"mutated in {' or '.join(sorted(owners))} (its "
                        "recording helpers); call the helper instead",
                    )
                )
        return findings


register(AccountingMutationRule())
