"""Accounting discipline: counters mutate only in their owning module.

The access-accounting counters (``AccessSummary``), the hot-node-cache
hit/miss counters, and the fault/retry counters are the measured
quantities behind the Figure 2 access mix, the cache calibration, and
the fault-tolerance reporting. They are only meaningful if every
mutation goes through the owning module's recording helpers — a stray
``summary.remote_count += 1`` elsewhere silently skews a published
number.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule, register

#: Counter attribute name -> modules allowed to mutate it.
COUNTER_OWNERS: Dict[str, FrozenSet[str]] = {
    # AccessSummary (repro/memstore/store.py): _record/_record_batch only.
    "structure_count": frozenset({"repro/memstore/store.py"}),
    "structure_bytes": frozenset({"repro/memstore/store.py"}),
    "attribute_count": frozenset({"repro/memstore/store.py"}),
    "attribute_bytes": frozenset({"repro/memstore/store.py"}),
    "remote_count": frozenset({"repro/memstore/store.py"}),
    "remote_bytes": frozenset({"repro/memstore/store.py"}),
    # FaultStats (repro/memstore/faults.py); retry counters are shared
    # with the closed-loop service model's own _RetryCounters.
    "reads": frozenset({"repro/memstore/faults.py"}),
    "attempts": frozenset({"repro/memstore/faults.py"}),
    "retries": frozenset(
        {"repro/memstore/faults.py", "repro/framework/service.py"}
    ),
    "timeouts": frozenset(
        {"repro/memstore/faults.py", "repro/framework/service.py"}
    ),
    "hedges": frozenset(
        {"repro/memstore/faults.py", "repro/framework/service.py"}
    ),
    "hedge_wins": frozenset(
        {"repro/memstore/faults.py", "repro/framework/service.py"}
    ),
    "failovers": frozenset({"repro/memstore/faults.py"}),
    "failed_reads": frozenset({"repro/memstore/faults.py"}),
    # HotNodeCache hit/miss/invalidation counters (repro/framework/cache.py).
    "neighbor_hits": frozenset({"repro/framework/cache.py"}),
    "neighbor_misses": frozenset({"repro/framework/cache.py"}),
    "attribute_hits": frozenset({"repro/framework/cache.py"}),
    "attribute_misses": frozenset({"repro/framework/cache.py"}),
    "invalidations": frozenset({"repro/framework/cache.py"}),
    # Online-mutation ingest counters (repro/memstore/ingest.py).
    "delta_hits": frozenset({"repro/memstore/ingest.py"}),
    "delta_edges_read": frozenset({"repro/memstore/ingest.py"}),
    "cache_invalidations": frozenset({"repro/memstore/ingest.py"}),
    # CoalescingCache stats (repro/axe/cache.py).
    "line_hits": frozenset({"repro/axe/cache.py"}),
    "line_misses": frozenset({"repro/axe/cache.py"}),
    "element_accesses": frozenset({"repro/axe/cache.py"}),
}


class AccountingMutationRule(Rule):
    rule_id = "acct-mutation"
    title = "accounting counters mutate only via their recording helpers"
    rationale = (
        "AccessSummary, cache hit/miss, and fault counters back the "
        "paper-facing characterization numbers and the replay-equivalence "
        "checks. Mutations outside the owning module bypass the recording "
        "helpers' occurrence accounting and corrupt those measurements."
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.Assign):
                targets = list(node.targets)
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                owners = COUNTER_OWNERS.get(target.attr)
                if owners is None or ctx.module_path in owners:
                    continue
                findings.append(
                    ctx.finding(
                        self.rule_id,
                        node,
                        f"accounting counter '.{target.attr}' may only be "
                        f"mutated in {' or '.join(sorted(owners))} (its "
                        "recording helpers); call the helper instead",
                    )
                )
        return findings


register(AccountingMutationRule())
