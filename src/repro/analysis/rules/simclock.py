"""Simulated-time discipline for event-driven modules.

The serving gateway, the closed-loop service model, and the event
kernel itself advance a *virtual* clock (``sim.now``): arrival
timestamps, deadlines, and latency percentiles are all virtual-time
quantities, which is what makes a run a pure function of its seed.
These modules must not even import the host-clock modules — a
``time.time()`` timestamp mixed into virtual-time arithmetic produces
garbage latencies that no test can distinguish from load.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule, register

#: Event-driven modules whose clocks are simulated.
SIM_MODULE_PREFIXES = ("repro/serving/", "repro/cluster/")
SIM_MODULES = frozenset(
    {
        "repro/framework/service.py",
        "repro/axe/events.py",
        # Online-mutation ingest: mutation timelines interleave with the
        # gateway's virtual clock, so Mutation.time_s must be sim time.
        "repro/graph/dynamic.py",
        "repro/memstore/ingest.py",
        # Layout/kernel tier: benchmarked via perf_counter at the CLI
        # only; the modules themselves must stay clock-free.
        "repro/memstore/locality.py",
        "repro/framework/kernels.py",
        # Pipelined trainer: epoch wall-clock is measured by the
        # train-bench CLI via bench_timer; the trainer itself (and its
        # neighborhood cache) must stay clock-free so runs are a pure
        # function of the seed.
        "repro/gnn/pipeline.py",
    }
)


def _is_sim_module(module_path: str) -> bool:
    if module_path in SIM_MODULES:
        return True
    return any(module_path.startswith(p) for p in SIM_MODULE_PREFIXES)


class SimulatedClockRule(Rule):
    rule_id = "sim-clock"
    title = "event-driven modules take timestamps from the simulator clock"
    rationale = (
        "Gateway/scheduler/service timestamps are virtual-time values "
        "from the deterministic event kernel (sim.now). Importing time/"
        "datetime in these modules mixes host time into virtual-time "
        "arithmetic, silently corrupting latency and SLO accounting."
    )

    def signature(self) -> str:
        scope = sorted(SIM_MODULES) + sorted(SIM_MODULE_PREFIXES)
        return f"{self.rule_id}:{','.join(scope)}"

    def check(self, ctx: FileContext) -> List[Finding]:
        if not _is_sim_module(ctx.module_path):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in ("time", "datetime"):
                        findings.append(
                            ctx.finding(
                                self.rule_id,
                                node,
                                f"simulated-time module imports host-clock "
                                f"module '{alias.name}'; event timestamps "
                                "must come from the Simulator clock "
                                "(sim.now)",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module in ("time", "datetime"):
                    findings.append(
                        ctx.finding(
                            self.rule_id,
                            node,
                            f"simulated-time module imports from host-clock "
                            f"module '{node.module}'; use the Simulator "
                            "clock (sim.now)",
                        )
                    )
        return findings


register(SimulatedClockRule())
