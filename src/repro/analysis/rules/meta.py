"""Engine-emitted meta rules.

These two rule ids never run an AST check themselves; the engine emits
their findings while reading and pre-processing a file. They are
registered so suppressions referencing them validate and ``--explain``
can document them.
"""

from __future__ import annotations

from repro.analysis.rules import MetaRule, register


class ParseErrorRule(MetaRule):
    rule_id = "parse-error"
    title = "file must parse under the supported Python grammar"
    rationale = (
        "A file that does not parse cannot be checked at all, so a "
        "syntax error is itself a finding rather than a crash: the lint "
        "run stays total over the tree."
    )


class SuppressFormatRule(MetaRule):
    rule_id = "suppress-format"
    title = "suppression comments must name a known rule and give a reason"
    rationale = (
        "'# repro: allow[rule-id] reason' is a reviewed, greppable "
        "exemption. A suppression without a reason (or naming an unknown "
        "rule id) is indistinguishable from a typo and would silently "
        "disable enforcement."
    )


register(ParseErrorRule())
register(SuppressFormatRule())
