"""Exception hygiene on the fault paths.

The retry/fault/serving machinery exists to *account for* failures:
a handler that silently discards an exception on those paths erases
exactly the events the fault counters and degraded-completion stats
are supposed to measure. Bare ``except:`` is banned everywhere (it
also catches ``KeyboardInterrupt``/``SystemExit``); on the fault-path
modules a handler must do *something* — re-raise, return/record a
value, or call a recording helper — rather than pass/continue.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule, register

#: Module prefixes whose except handlers must not swallow-and-continue.
FAULT_PATH_PREFIXES = (
    "repro/memstore/",
    "repro/serving/",
    "repro/cluster/",
)
FAULT_PATH_MODULES = frozenset(
    {
        "repro/framework/sampler.py",
        "repro/framework/service.py",
        # Compaction/ingest errors must surface, not be swallowed —
        # a half-applied mutation batch is a correctness bug.
        # (repro/memstore/ingest.py is covered by the prefix above.)
        "repro/graph/dynamic.py",
        # Kernel-tier loading: a failed numba import/compile must be
        # recorded (get_kernels reports it), never silently dropped.
        # (repro/memstore/locality.py is covered by the prefix above.)
        "repro/framework/kernels.py",
        # Pipelined trainer: a failed micro-batch must drain the
        # pipeline (counted in drain_failures) and propagate, never be
        # swallowed mid-epoch.
        "repro/gnn/pipeline.py",
        "repro/parallel/pipeline.py",
    }
)


def _on_fault_path(module_path: str) -> bool:
    if module_path in FAULT_PATH_MODULES:
        return True
    return any(module_path.startswith(p) for p in FAULT_PATH_PREFIXES)


def _is_noop(stmt: ast.stmt) -> bool:
    """Statements that neither handle, record, nor re-raise."""
    if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
        return True
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
        return True  # docstring / ellipsis
    return False


class ExceptionSwallowRule(Rule):
    rule_id = "except-swallow"
    title = "no bare except; fault paths must not swallow-and-continue"
    rationale = (
        "The fault injector, retry path, and serving gateway are "
        "measurement instruments: a swallowed exception is a fault that "
        "happened but was never counted, which silently falsifies "
        "failed_reads/degraded statistics. Handlers must re-raise or "
        "record to stats."
    )

    def signature(self) -> str:
        scope = sorted(FAULT_PATH_MODULES) + sorted(FAULT_PATH_PREFIXES)
        return f"{self.rule_id}:{','.join(scope)}"

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        fault_path = _on_fault_path(ctx.module_path)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    ctx.finding(
                        self.rule_id,
                        node,
                        "bare 'except:' catches KeyboardInterrupt/"
                        "SystemExit too; name the exception type",
                    )
                )
                continue
            if fault_path and all(_is_noop(stmt) for stmt in node.body):
                exc = ast.unparse(node.type) if node.type is not None else ""
                findings.append(
                    ctx.finding(
                        self.rule_id,
                        node,
                        f"handler for {exc} swallows the exception on a "
                        "fault path; re-raise or record it to the fault "
                        "stats",
                    )
                )
        return findings


register(ExceptionSwallowRule())
