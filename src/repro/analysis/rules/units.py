"""Units discipline: no magic conversion constants outside repro.units.

All internal quantities are SI base units (bytes, seconds, hertz), and
every conversion at a human boundary is supposed to go through the
named constants and helpers in :mod:`repro.units`. Inline ``* 1e9``,
``/ 8.0``, ``* 1024`` arithmetic is where silent unit bugs live — the
memory-access characterization this reproduction is built on is only
as good as its unit plumbing.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule, register

#: The one module allowed to spell conversion constants literally.
UNITS_MODULE = "repro/units.py"

#: Decimal scale factors that should be KILO/MEGA/GIGA/MS/US/NS/MS_PER_S.
MAGIC_FLOATS = (1e9, 1e-9, 1e6, 1e-6, 1e3, 1e-3)

#: Binary scale factor that should be KB/MB/GB/TB.
MAGIC_INT = 1024

#: Bits-per-byte divisor that should be gbps_to_bytes_per_s or friends.
BITS_PER_BYTE = 8.0


def _magic_float(node: ast.AST) -> Optional[float]:
    if isinstance(node, ast.Constant) and type(node.value) is float:
        for magic in MAGIC_FLOATS:
            if node.value == magic:
                return magic
    return None


def _is_int_1024(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and type(node.value) is int
        and node.value == MAGIC_INT
    )


class UnitsMagicRule(Rule):
    rule_id = "units-magic"
    title = "unit conversions go through repro.units, not magic literals"
    rationale = (
        "Inline conversion arithmetic (* 1e9, / 8.0, * 1024**n) is "
        "unreviewable: nothing says whether 1e9 meant GIGA, nanoseconds, "
        "or a coincidence. repro.units names every conversion once; "
        "call sites stay greppable and dimension-checked by eye."
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        if ctx.module_path == UNITS_MODULE:
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if isinstance(node.op, (ast.Mult, ast.Div)):
                for operand in (node.left, node.right):
                    magic = _magic_float(operand)
                    if magic is not None:
                        findings.append(
                            ctx.finding(
                                self.rule_id,
                                operand,
                                f"magic conversion constant {magic:g}; use "
                                "the named repro.units constant "
                                "(KILO/MEGA/GIGA, MS/US/NS, MS_PER_S) or a "
                                "conversion helper",
                            )
                        )
            if isinstance(node.op, ast.Mult):
                for operand in (node.left, node.right):
                    if _is_int_1024(operand):
                        findings.append(
                            ctx.finding(
                                self.rule_id,
                                operand,
                                "magic binary scale 1024; use repro.units "
                                "KB/MB/GB/TB",
                            )
                        )
            elif isinstance(node.op, ast.Pow) and _is_int_1024(node.left):
                findings.append(
                    ctx.finding(
                        self.rule_id,
                        node.left,
                        "magic binary scale 1024**n; use repro.units "
                        "KB/MB/GB/TB",
                    )
                )
            elif isinstance(node.op, ast.Div):
                right = node.right
                if (
                    isinstance(right, ast.Constant)
                    and type(right.value) is float
                    and right.value == BITS_PER_BYTE
                ):
                    findings.append(
                        ctx.finding(
                            self.rule_id,
                            right,
                            "magic bits-per-byte divisor 8.0; use "
                            "repro.units.gbps_to_bytes_per_s or a named "
                            "constant",
                        )
                    )
        return findings


register(UnitsMagicRule())
