"""Mutable default arguments.

A ``def f(xs=[])`` default is evaluated once at function definition and
shared across calls — state leaks between requests, which in a serving
system means cross-tenant leakage and in a simulator means run-order-
dependent results. Use ``None`` plus an explicit ``Optional`` type.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule, register

#: No-arg constructor calls that produce a fresh-but-shared mutable.
MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


def _mutable_default(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.List):
        return "[]"
    if isinstance(node, ast.Dict):
        return "{}"
    if isinstance(node, ast.Set):
        return "{...}"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in MUTABLE_CONSTRUCTORS
        and not node.args
        and not node.keywords
    ):
        return f"{node.func.id}()"
    return None


class MutableDefaultRule(Rule):
    rule_id = "mutable-default"
    title = "no mutable default arguments"
    rationale = (
        "A mutable default is evaluated once and shared by every call: "
        "requests contaminate each other and results depend on call "
        "order, which breaks both serving isolation and simulator "
        "determinism. Default to None and construct inside the function."
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                rendered = _mutable_default(default)
                if rendered is not None:
                    findings.append(
                        ctx.finding(
                            self.rule_id,
                            default,
                            f"mutable default argument {rendered} is shared "
                            "across calls; default to None and build it "
                            "inside the function",
                        )
                    )
        return findings


register(MutableDefaultRule())
