"""rng-provenance: seeds trace to injected entropy; sets never feed
accounting.

Determinism in this reproduction is an end-to-end property: a run is a
pure function of its configuration seed. The per-file ``det-rng`` rule
already bans *seedless* RNG construction; this whole-program rule
closes the two leaks a single file cannot see:

1. **Ambient seed provenance.** ``default_rng(seed)`` is only as
   deterministic as ``seed``. A seed derived from ``hash()`` (salted
   per process), ``id()``, ``time.*``, ``uuid.*``, ``secrets.*``,
   ``os.getpid()``/``os.urandom()`` or the stdlib ``random`` module is
   ambient — different every run — even when it is laundered through a
   cross-module helper (``make_rng(entropy())``). The rule evaluates
   the seed argument's def-use origin, follows project helper returns,
   and propagates *parameter* sinks up the resolved call graph so the
   ambient value is flagged at the call site that introduces it.

2. **Unordered iteration feeding accounting.** Functions that feed the
   accounting counters (directly, or transitively through the resolved
   call graph into recording helpers) must not iterate Python sets:
   set order varies across processes/hash seeds, so occurrence-ordered
   counters diverge between a run and its replay. Iterate
   ``sorted(...)`` instead.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple, cast

from repro.analysis.findings import Finding
from repro.analysis.project.graph import (
    Callee,
    FunctionInfo,
    Origin,
    ProjectGraph,
    annotation_is_set,
)
from repro.analysis.rules import ProjectRule, register
from repro.analysis.rules.crossmodule import module_finding, param_annotation
from repro.analysis.rules.crossmodule.registry import (
    COUNTER_CLASSES,
    COUNTER_OWNERS,
    counter_fields,
)

#: Exact dotted callables whose result differs per process/run.
AMBIENT_CALLS = frozenset(
    {"hash", "id", "input", "os.urandom", "os.getpid", "os.getppid"}
)

#: Module prefixes whose every callable is ambient.
AMBIENT_PREFIXES = frozenset({"time", "uuid", "secrets", "random"})

#: Recording helpers: calling one means the function feeds accounting.
ACCOUNTING_SINKS = frozenset(
    {"_record", "_record_batch", "_record_gather", "absorb_summary"}
)

_MAX_DEPTH = 6


def _is_default_rng(callee: Optional[Callee]) -> bool:
    return (
        callee is not None
        and callee.kind == "external"
        and callee.dotted.split(".")[-1] == "default_rng"
    )


class RngProvenanceRule(ProjectRule):
    rule_id = "rng-provenance"
    title = "RNG seeds trace to injected entropy; no set iteration in accounting"
    rationale = (
        "A seed derived from hash()/id()/time/uuid/pid is different "
        "every process, so the run stops being a function of its "
        "configuration — even when the ambient value flows through a "
        "helper in another module. Likewise, set iteration order varies "
        "per process, so a set-driven loop that feeds AccessSummary-"
        "style occurrence counters diverges from its replay."
    )

    def signature(self) -> str:
        scope = (
            sorted(AMBIENT_CALLS)
            + sorted(AMBIENT_PREFIXES)
            + sorted(ACCOUNTING_SINKS)
        )
        return f"{self.rule_id}:{','.join(scope)}"

    def check_project(self, project: object) -> List[Finding]:
        pg = cast(ProjectGraph, project)
        findings: Dict[Tuple[str, int, int], Finding] = {}
        self._check_seed_provenance(pg, findings)
        self._check_set_iteration(pg, findings)
        return [findings[key] for key in sorted(findings)]

    # ------------------------------------------------------ seed provenance
    def _check_seed_provenance(
        self,
        pg: ProjectGraph,
        findings: Dict[Tuple[str, int, int], Finding],
    ) -> None:
        #: Functions whose parameter, if ambient at a caller, taints a seed.
        sinks: Dict[Tuple[str, str], Set[str]] = {}
        for func in pg.functions():
            for site in pg.calls_of(func):
                if not _is_default_rng(site.callee):
                    continue
                seed = self._seed_expr(site.node)
                if seed is None:
                    continue  # seedless: det-rng's per-file business
                origin = pg.origin_of(seed, func)
                ambient = self._ambient(pg, func, origin, _MAX_DEPTH)
                if ambient is not None:
                    self._flag_seed(pg, func, seed, ambient, findings)
                elif origin.kind == "param":
                    sinks.setdefault(func.key, set()).add(origin.name)
        # Propagate parameter sinks up the call graph: a caller passing
        # an ambient value (or its own parameter) into a sink parameter
        # is flagged (or becomes a sink itself).
        for _ in range(_MAX_DEPTH):
            changed = False
            for func in pg.functions():
                for site in pg.calls_of(func):
                    target = self._project_target(pg, site.callee)
                    if target is None or target.key not in sinks:
                        continue
                    mapping = self._map_args(target, site.node)
                    for name in sorted(sinks[target.key]):
                        arg = mapping.get(name)
                        if arg is None:
                            continue
                        origin = pg.origin_of(arg, func)
                        ambient = self._ambient(pg, func, origin, _MAX_DEPTH)
                        if ambient is not None:
                            self._flag_seed(pg, func, arg, ambient, findings)
                        elif origin.kind == "param":
                            bucket = sinks.setdefault(func.key, set())
                            if origin.name not in bucket:
                                bucket.add(origin.name)
                                changed = True
            if not changed:
                break

    def _flag_seed(
        self,
        pg: ProjectGraph,
        func: FunctionInfo,
        expr: ast.expr,
        ambient: str,
        findings: Dict[Tuple[str, int, int], Finding],
    ) -> None:
        minfo = pg.modules[func.module_path]
        key = (func.module_path, expr.lineno, expr.col_offset)
        if key not in findings:
            findings[key] = module_finding(
                minfo,
                self.rule_id,
                expr,
                f"RNG seed derives from ambient '{ambient}' — different "
                "every process, so the run is no longer a function of "
                "its configuration; thread the seed from a SeedSequence "
                "or the session seed instead",
            )

    @staticmethod
    def _seed_expr(call: ast.Call) -> Optional[ast.expr]:
        if call.args and not isinstance(call.args[0], ast.Starred):
            first = call.args[0]
            if isinstance(first, ast.Constant):
                return None  # literal seed: deterministic
            return first
        for keyword in call.keywords:
            if keyword.arg == "seed":
                if isinstance(keyword.value, ast.Constant):
                    return None
                return keyword.value
        return None

    def _ambient(
        self,
        pg: ProjectGraph,
        func: FunctionInfo,
        origin: Origin,
        depth: int,
    ) -> Optional[str]:
        """Dotted name of the ambient source feeding ``origin``, if any."""
        if depth <= 0:
            return None
        if origin.kind in ("attr", "sub", "elt"):
            if origin.base is None:
                return None
            return self._ambient(pg, func, origin.base, depth - 1)
        if origin.kind == "selfattr":
            return self._ambient(
                pg, func, pg.self_attr_origin(func, origin.attr), depth - 1
            )
        if origin.kind in ("tuple", "binop"):
            for item in origin.items:
                found = self._ambient(pg, func, item, depth - 1)
                if found is not None:
                    return found
            return None
        if origin.kind != "call" or origin.callee is None:
            return None
        callee = origin.callee
        if callee.kind == "external":
            dotted = callee.dotted
            if dotted in AMBIENT_CALLS:
                return dotted
            if dotted.split(".")[0] in AMBIENT_PREFIXES:
                return dotted
            return None
        if callee.kind == "project" and "." not in callee.qualname:
            target = pg.function(callee.module, callee.qualname)
            if target is not None:
                for ret in pg.returns_of(target):
                    found = self._ambient(
                        pg, target, pg.origin_of(ret, target), depth - 1
                    )
                    if found is not None:
                        return found
        return None

    @staticmethod
    def _project_target(
        pg: ProjectGraph, callee: Optional[Callee]
    ) -> Optional[FunctionInfo]:
        if callee is None or callee.kind != "project":
            return None
        qualname = callee.qualname
        if "." not in qualname and pg.is_class(callee.module, qualname):
            qualname = f"{qualname}.__init__"
        target = pg.function(callee.module, qualname)
        if target is None or isinstance(target.node, ast.Module):
            return None
        return target

    @staticmethod
    def _map_args(
        target: FunctionInfo, call: ast.Call
    ) -> Dict[str, ast.expr]:
        params = target.param_names()
        if target.class_name is not None and params and params[0] in (
            "self",
            "cls",
        ):
            params = params[1:]
        mapping: Dict[str, ast.expr] = {}
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if index < len(params):
                mapping[params[index]] = arg
        for keyword in call.keywords:
            if keyword.arg is not None:
                mapping[keyword.arg] = keyword.value
        return mapping

    # ----------------------------------------------------- set iteration
    def _check_set_iteration(
        self,
        pg: ProjectGraph,
        findings: Dict[Tuple[str, int, int], Finding],
    ) -> None:
        counter_names = self._counter_names(pg)
        feeding = self._feeding_functions(pg, counter_names)
        for func in pg.functions():
            if func.key not in feeding:
                continue
            minfo = pg.modules[func.module_path]
            for stmt, _pinned in pg.statements_of(func):
                if not isinstance(stmt, (ast.For, ast.AsyncFor)):
                    continue
                if not self._is_set(pg, func, pg.origin_of(stmt.iter, func), _MAX_DEPTH):
                    continue
                key = (
                    func.module_path,
                    stmt.iter.lineno,
                    stmt.iter.col_offset,
                )
                if key not in findings:
                    findings[key] = module_finding(
                        minfo,
                        self.rule_id,
                        stmt.iter,
                        "iterating a set in a function that feeds "
                        "accounting counters: set order varies per "
                        "process, so occurrence-ordered counters diverge "
                        "from their replay; iterate sorted(...) instead",
                    )

    @staticmethod
    def _counter_names(pg: ProjectGraph) -> Set[str]:
        names: Set[str] = set(COUNTER_OWNERS)
        for key in COUNTER_CLASSES:
            module, class_name = key.split("::", 1)
            cinfo = pg.class_info(module, class_name)
            if cinfo is not None:
                names.update(counter_fields(cinfo))
        for module_path in pg.modules:
            minfo = pg.modules[module_path]
            for cinfo in minfo.classes.values():
                if cinfo.class_constants.get("__counter_class__"):
                    names.update(counter_fields(cinfo))
        return names

    def _feeding_functions(
        self, pg: ProjectGraph, counter_names: Set[str]
    ) -> Set[Tuple[str, str]]:
        """Functions that (transitively) mutate accounting counters."""
        feeding: Set[Tuple[str, str]] = set()
        for func in pg.functions():
            if self._feeds_directly(pg, func, counter_names):
                feeding.add(func.key)
        for _ in range(_MAX_DEPTH):
            changed = False
            for func in pg.functions():
                if func.key in feeding:
                    continue
                for site in pg.calls_of(func):
                    callee = site.callee
                    if (
                        callee is not None
                        and callee.kind == "project"
                        and (callee.module, callee.qualname) in feeding
                    ):
                        feeding.add(func.key)
                        changed = True
                        break
            if not changed:
                break
        return feeding

    @staticmethod
    def _feeds_directly(
        pg: ProjectGraph, func: FunctionInfo, counter_names: Set[str]
    ) -> bool:
        for stmt, _pinned in pg.statements_of(func):
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, ast.AugAssign):
                targets = [stmt.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in counter_names
                ):
                    return True
        for site in pg.calls_of(func):
            if (
                isinstance(site.node.func, ast.Attribute)
                and site.node.func.attr in ACCOUNTING_SINKS
            ):
                return True
        return False

    def _is_set(
        self,
        pg: ProjectGraph,
        func: FunctionInfo,
        origin: Origin,
        depth: int,
    ) -> bool:
        if depth <= 0:
            return False
        if origin.kind == "set":
            return True
        if origin.kind == "selfattr":
            return self._is_set(
                pg, func, pg.self_attr_origin(func, origin.attr), depth - 1
            )
        if origin.kind == "binop":
            return any(
                self._is_set(pg, func, item, depth - 1)
                for item in origin.items
            )
        if origin.kind == "param":
            return annotation_is_set_or_none(
                param_annotation(func, origin.name)
            )
        if origin.kind == "call" and origin.callee is not None:
            callee = origin.callee
            if callee.kind == "external":
                return callee.dotted in ("set", "frozenset")
            if callee.kind == "project" and "." not in callee.qualname:
                target = pg.function(callee.module, callee.qualname)
                if target is not None:
                    return any(
                        self._is_set(
                            pg,
                            target,
                            pg.origin_of(ret, target),
                            depth - 1,
                        )
                        for ret in pg.returns_of(target)
                    )
        return False


def annotation_is_set_or_none(annotation: Optional[ast.expr]) -> bool:
    return annotation is not None and annotation_is_set(annotation)


register(RngProvenanceRule())
