"""pin-discipline: sampler-reachable store reads stay under read_view.

A multi-hop walk must observe exactly one snapshot epoch: the dynamic
store (``DynamicPartitionedStore``) pins the live graph inside a
``with store.read_view():`` block, and every neighbor/attribute read
issued during a sample must happen under that pin — a read outside it
can interleave with a concurrent mutation batch and tear the walk
across two epochs (the exact failure ``repro mutate-bench``'s
torn-read probe looks for). On the static store ``read_view()`` is a
free no-op, so the discipline costs nothing where mutation is off.

The rule walks the resolved call graph from sampler entry points
(``sample``/``negative_sample`` methods on ``*Sampler*`` classes),
carrying a "pinned" flag that becomes true when a call edge sits
lexically inside a ``read_view()`` block, and flags any reachable
store read (``get_neighbors[_batch]``/``get_attributes[_batch]`` on a
store-typed receiver) executed unpinned. Store-internal modules
(``repro/memstore/``) are exempt: the store implements the pin.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple, cast

from repro.analysis.findings import Finding
from repro.analysis.project.graph import (
    CallSite,
    FunctionInfo,
    ProjectGraph,
)
from repro.analysis.rules import ProjectRule, dotted_name, register
from repro.analysis.rules.crossmodule import module_finding

#: Store read methods a sampler walk issues.
READ_METHODS = frozenset(
    {
        "get_neighbors",
        "get_neighbors_batch",
        "get_attributes",
        "get_attributes_batch",
    }
)

#: Modules that implement the store (and the pin) themselves.
STORE_MODULE_PREFIX = "repro/memstore/"


class PinDisciplineRule(ProjectRule):
    rule_id = "pin-discipline"
    title = "sampler-reachable store reads run under a read_view() pin"
    rationale = (
        "One sample must see one snapshot epoch. A store read reached "
        "from a sampler entry point but outside the read_view() context "
        "can interleave with an online mutation batch and tear the "
        "multi-hop walk across epochs, silently corrupting results the "
        "replay-equivalence checks assume stable."
    )

    def signature(self) -> str:
        scope = sorted(READ_METHODS) + [STORE_MODULE_PREFIX]
        return f"{self.rule_id}:{','.join(scope)}"

    def check_project(self, project: object) -> List[Finding]:
        pg = cast(ProjectGraph, project)
        entries = [
            func
            for func in pg.functions()
            if func.class_name is not None
            and "Sampler" in func.class_name
            and func.name in ("sample", "negative_sample")
        ]
        findings: Dict[Tuple[str, int, int], Finding] = {}
        seen: Set[Tuple[Tuple[str, str], bool]] = set()
        for entry in entries:
            stack: List[Tuple[FunctionInfo, bool]] = [(entry, False)]
            while stack:
                func, pinned = stack.pop()
                state = (func.key, pinned)
                if state in seen:
                    continue
                seen.add(state)
                if func.module_path.startswith(STORE_MODULE_PREFIX):
                    continue
                minfo = pg.modules[func.module_path]
                for site in pg.calls_of(func):
                    effective = pinned or site.pinned
                    if not effective and self._is_store_read(pg, func, site):
                        node = site.node
                        key = (
                            func.module_path,
                            node.lineno,
                            node.col_offset,
                        )
                        if key not in findings:
                            findings[key] = module_finding(
                                minfo,
                                self.rule_id,
                                node,
                                f"store read "
                                f"'{dotted_name(node.func) or '?'}()' is "
                                f"reachable from sampler entry point "
                                f"{entry.class_name}.{entry.name} without "
                                "a read_view() pin; wrap the read path in "
                                "'with store.read_view():' so the walk "
                                "observes one snapshot epoch",
                            )
                    if (
                        site.callee is not None
                        and site.callee.kind == "project"
                    ):
                        target = pg.function(
                            site.callee.module, site.callee.qualname
                        )
                        if target is not None and not isinstance(
                            target.node, ast.Module
                        ):
                            stack.append((target, effective))
        return [findings[key] for key in sorted(findings)]

    @staticmethod
    def _is_store_read(
        pg: ProjectGraph, func: FunctionInfo, site: CallSite
    ) -> bool:
        node = site.node
        if not isinstance(node.func, ast.Attribute):
            return False
        if node.func.attr not in READ_METHODS:
            return False
        base = node.func.value
        base_dotted = dotted_name(base)
        if base_dotted is not None and "store" in base_dotted.split(".")[-1].lower():
            return True
        origin = pg.origin_of(base, func)
        if origin.kind == "selfattr":
            origin = pg.self_attr_origin(func, origin.attr)
        if (
            origin.kind == "call"
            and origin.callee is not None
            and origin.callee.kind == "project"
            and origin.callee.qualname.split(".")[0].endswith("Store")
        ):
            return True
        return False


register(PinDisciplineRule())
