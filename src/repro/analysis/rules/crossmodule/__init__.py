"""Whole-program rules: contracts no single file can witness.

The four rules in this package consume the
:class:`~repro.analysis.project.graph.ProjectGraph` built by
``repro lint --deep`` and check the cross-cutting contracts the paper's
architecture depends on:

``shm-view-write``
    Arrays reached from the shared-memory graph planes stay read-only
    outside the plane module (:mod:`repro.parallel.shm`).
``pin-discipline``
    Store reads reached from sampler entry points happen under a
    pinned ``read_view()`` snapshot.
``rng-provenance``
    Seeds flowing into ``default_rng`` trace to injected entropy, and
    unordered set iteration never feeds accounting.
``counter-ownership``
    Registered counter classes mutate only in their owning modules,
    resolved by receiver *type* rather than attribute name.

Shared helpers live here; the ownership registry in
:mod:`repro.analysis.rules.crossmodule.registry` is the declared source
of truth that the per-file ``acct-mutation`` rule also imports.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.findings import Finding
from repro.analysis.project.graph import FunctionInfo, ModuleInfo


def module_finding(
    minfo: ModuleInfo, rule_id: str, node: ast.AST, message: str
) -> Finding:
    """Build a Finding anchored at ``node`` inside ``minfo``."""
    line = int(getattr(node, "lineno", 1))
    col = int(getattr(node, "col_offset", 0)) + 1
    return Finding(
        path=minfo.module_path,
        line=line,
        col=col,
        rule=rule_id,
        message=message,
        snippet=minfo.snippet(line),
    )


def param_annotation(
    func: FunctionInfo, name: str
) -> Optional[ast.expr]:
    """Annotation expression of parameter ``name`` of ``func``, if any."""
    if isinstance(func.node, ast.Module):
        return None
    args = func.node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        if arg.arg == name:
            return arg.annotation
    return None
