"""Declared ownership registry for accounting counters.

Two views of the same contract live here:

* :data:`COUNTER_CLASSES` — the *class-level* registry consumed by the
  whole-program ``counter-ownership`` rule. Keys are
  ``"module_path::ClassName"``; values are the modules allowed to
  mutate instances of that class. Counter *fields* are discovered from
  the class definition itself (numeric-defaulted dataclass fields and
  ``self.x = 0`` initializers), so adding a counter to a registered
  class is automatically covered without touching this file.
* :data:`COUNTER_OWNERS` — the *attribute-name* approximation used by
  the per-file ``acct-mutation`` rule (which cannot see types). It
  stays useful because it runs on every ``repro lint`` without the
  project graph, at the cost of keying on attribute names.

A class outside this registry can opt in by declaring
``__counter_class__ = True`` in its class body; its owning module is
then the module that defines it.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional

from repro.analysis.project.graph import ClassInfo

#: ``module_path::ClassName`` -> modules allowed to mutate instances.
COUNTER_CLASSES: Dict[str, FrozenSet[str]] = {
    # Access-mix accounting behind the Figure 2 characterization and
    # the replay-equivalence checks.
    "repro/memstore/store.py::AccessSummary": frozenset(
        {"repro/memstore/store.py"}
    ),
    # Fault-injection / retry counters (reliability reporting).
    "repro/memstore/faults.py::FaultStats": frozenset(
        {"repro/memstore/faults.py"}
    ),
    # Hot-node cache hit/miss/invalidation counters (calibration).
    "repro/framework/cache.py::HotNodeCache": frozenset(
        {"repro/framework/cache.py"}
    ),
    # Online-mutation ingest counters.
    "repro/memstore/ingest.py::IngestStats": frozenset(
        {"repro/memstore/ingest.py"}
    ),
    # AxE coalescing-cache line counters.
    "repro/axe/cache.py::CacheStats": frozenset({"repro/axe/cache.py"}),
    # Multi-hop neighborhood cache hit/miss counters (pipelined trainer).
    "repro/gnn/pipeline.py::NeighborhoodCache": frozenset(
        {"repro/gnn/pipeline.py"}
    ),
}

#: Counter attribute name -> modules allowed to mutate it (the per-file
#: approximation; see module docstring).
COUNTER_OWNERS: Dict[str, FrozenSet[str]] = {
    # AccessSummary (repro/memstore/store.py): _record/_record_batch/
    # _record_gather only.
    "structure_count": frozenset({"repro/memstore/store.py"}),
    "structure_bytes": frozenset({"repro/memstore/store.py"}),
    "attribute_count": frozenset({"repro/memstore/store.py"}),
    "attribute_bytes": frozenset({"repro/memstore/store.py"}),
    "remote_count": frozenset({"repro/memstore/store.py"}),
    "remote_bytes": frozenset({"repro/memstore/store.py"}),
    "gather_nodes": frozenset({"repro/memstore/store.py"}),
    "gather_runs": frozenset({"repro/memstore/store.py"}),
    "gather_span_bytes": frozenset({"repro/memstore/store.py"}),
    # FaultStats (repro/memstore/faults.py); retry counters are shared
    # with the closed-loop service model's own _RetryCounters.
    "reads": frozenset({"repro/memstore/faults.py"}),
    "attempts": frozenset({"repro/memstore/faults.py"}),
    "retries": frozenset(
        {"repro/memstore/faults.py", "repro/framework/service.py"}
    ),
    "timeouts": frozenset(
        {"repro/memstore/faults.py", "repro/framework/service.py"}
    ),
    "hedges": frozenset(
        {"repro/memstore/faults.py", "repro/framework/service.py"}
    ),
    "hedge_wins": frozenset(
        {"repro/memstore/faults.py", "repro/framework/service.py"}
    ),
    "failovers": frozenset({"repro/memstore/faults.py"}),
    "failed_reads": frozenset({"repro/memstore/faults.py"}),
    # HotNodeCache hit/miss/invalidation counters (repro/framework/cache.py).
    "neighbor_hits": frozenset({"repro/framework/cache.py"}),
    "neighbor_misses": frozenset({"repro/framework/cache.py"}),
    "attribute_hits": frozenset({"repro/framework/cache.py"}),
    "attribute_misses": frozenset({"repro/framework/cache.py"}),
    "invalidations": frozenset({"repro/framework/cache.py"}),
    # Online-mutation ingest counters (repro/memstore/ingest.py).
    "delta_hits": frozenset({"repro/memstore/ingest.py"}),
    "delta_edges_read": frozenset({"repro/memstore/ingest.py"}),
    "cache_invalidations": frozenset({"repro/memstore/ingest.py"}),
    # CoalescingCache stats (repro/axe/cache.py).
    "line_hits": frozenset({"repro/axe/cache.py"}),
    "line_misses": frozenset({"repro/axe/cache.py"}),
    "element_accesses": frozenset({"repro/axe/cache.py"}),
    # NeighborhoodCache occurrence counters (repro/gnn/pipeline.py).
    "root_hits": frozenset({"repro/gnn/pipeline.py"}),
    "root_misses": frozenset({"repro/gnn/pipeline.py"}),
    # AccessSummary neighborhood-cache counters: mutate only via
    # PartitionedStore.record_neighborhood.
    "neighborhood_hits": frozenset({"repro/memstore/store.py"}),
    "neighborhood_misses": frozenset({"repro/memstore/store.py"}),
}


def registry_signature() -> str:
    """Stable text form of both registries, for rule cache signatures."""
    parts: List[str] = []
    for key in sorted(COUNTER_CLASSES):
        parts.append(f"{key}={','.join(sorted(COUNTER_CLASSES[key]))}")
    for attr in sorted(COUNTER_OWNERS):
        parts.append(f"{attr}={','.join(sorted(COUNTER_OWNERS[attr]))}")
    return ";".join(parts)


def counter_fields(cinfo: ClassInfo) -> FrozenSet[str]:
    """Counter attribute names discovered from a class definition.

    A field counts if it is a class-level annotated assignment with a
    numeric (int/float/bool-free) constant default — the dataclass
    counter idiom — or a ``self.x = <numeric constant>`` initializer in
    ``__init__``. Private (``_``-prefixed) names are excluded.
    """
    fields: List[str] = []
    for stmt in cinfo.node.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and not stmt.target.id.startswith("_")
            and _is_numeric_const(stmt.value)
        ):
            fields.append(stmt.target.id)
    init = cinfo.methods.get("__init__")
    if init is not None and not isinstance(init.node, ast.Module):
        for node in ast.walk(init.node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign) and _is_numeric_const(node.value):
                targets = list(node.targets)
            elif isinstance(node, ast.AnnAssign) and _is_numeric_const(
                node.value
            ):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and not target.attr.startswith("_")
                ):
                    fields.append(target.attr)
    return frozenset(fields)


def _is_numeric_const(value: Optional[ast.expr]) -> bool:
    return (
        isinstance(value, ast.Constant)
        and isinstance(value.value, (int, float))
        and not isinstance(value.value, bool)
    )
