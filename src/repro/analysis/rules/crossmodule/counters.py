"""counter-ownership: counter classes mutate only in owning modules.

The per-file ``acct-mutation`` rule approximates ownership by
*attribute name*: it flags ``x.remote_count += 1`` anywhere outside
the owner module, but it cannot tell an ``AccessSummary`` from an
unrelated object that happens to have a ``remote_count`` attribute,
and it knows nothing about counters whose names are not in its list.

This whole-program rule checks the same contract by receiver *type*:
it resolves the class of every mutation target through the project
graph (constructor calls, helper returns, ``self.*`` attribute
origins, parameter annotations), looks the class up in the declared
:data:`~repro.analysis.rules.crossmodule.registry.COUNTER_CLASSES`
registry (or its ``__counter_class__ = True`` opt-in marker), and
flags mutations of that class's *discovered* counter fields outside
the owning modules — program-wide, including counters the per-file
list has never heard of.
"""

from __future__ import annotations

import ast
import hashlib
from typing import Dict, FrozenSet, List, Optional, Tuple, cast

from repro.analysis.findings import Finding
from repro.analysis.project.graph import (
    FunctionInfo,
    Origin,
    ProjectGraph,
)
from repro.analysis.rules import ProjectRule, register
from repro.analysis.rules.crossmodule import module_finding, param_annotation
from repro.analysis.rules.crossmodule.registry import (
    COUNTER_CLASSES,
    counter_fields,
    registry_signature,
)

_MAX_DEPTH = 5

#: (module_path, ClassName) -> (owner modules, counter field names)
_ClassTable = Dict[Tuple[str, str], Tuple[FrozenSet[str], FrozenSet[str]]]


class CounterOwnershipRule(ProjectRule):
    rule_id = "counter-ownership"
    title = "registered counter classes mutate only in their owning modules"
    rationale = (
        "Accounting counters back the access-mix characterization, the "
        "cache calibration, and the replay-equivalence checks; they are "
        "only meaningful while every mutation goes through the owning "
        "module's recording helpers. Resolving the receiver's type "
        "program-wide catches strays the per-file attribute-name "
        "approximation cannot (and never misfires on lookalike names)."
    )

    def signature(self) -> str:
        digest = hashlib.sha1(
            registry_signature().encode("utf-8")
        ).hexdigest()
        return f"{self.rule_id}:{digest}"

    def check_project(self, project: object) -> List[Finding]:
        pg = cast(ProjectGraph, project)
        table = self._class_table(pg)
        field_index: Dict[str, List[Tuple[str, str]]] = {}
        for cls_key, (_owners, fields) in table.items():
            for name in fields:
                field_index.setdefault(name, []).append(cls_key)
        findings: Dict[Tuple[str, int, int], Finding] = {}
        for func in pg.functions():
            minfo = pg.modules[func.module_path]
            for stmt, _pinned in pg.statements_of(func):
                targets: List[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = list(stmt.targets)
                elif isinstance(stmt, ast.AugAssign):
                    targets = [stmt.target]
                for target in targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    if target.attr not in field_index:
                        continue
                    cls = self._receiver_class(pg, func, target.value)
                    if cls is None or cls not in table:
                        continue
                    owners, fields = table[cls]
                    if target.attr not in fields:
                        continue
                    if func.module_path in owners:
                        continue
                    key = (
                        func.module_path,
                        target.lineno,
                        target.col_offset,
                    )
                    if key not in findings:
                        findings[key] = module_finding(
                            minfo,
                            self.rule_id,
                            target,
                            f"counter field '.{target.attr}' of "
                            f"{cls[0]}::{cls[1]} may only be mutated in "
                            f"{' or '.join(sorted(owners))}; call its "
                            "recording helper instead",
                        )
        return [findings[key] for key in sorted(findings)]

    # ------------------------------------------------------------ registry
    @staticmethod
    def _class_table(pg: ProjectGraph) -> _ClassTable:
        table: _ClassTable = {}
        for key, owners in COUNTER_CLASSES.items():
            module, class_name = key.split("::", 1)
            cinfo = pg.class_info(module, class_name)
            if cinfo is not None:
                table[(module, class_name)] = (owners, counter_fields(cinfo))
        for module_path in pg.modules:
            minfo = pg.modules[module_path]
            for cinfo in minfo.classes.values():
                cls_key = (module_path, cinfo.name)
                if cls_key in table:
                    continue
                if cinfo.class_constants.get("__counter_class__"):
                    table[cls_key] = (
                        frozenset({module_path}),
                        counter_fields(cinfo),
                    )
        return table

    # ------------------------------------------------------ type resolution
    def _receiver_class(
        self, pg: ProjectGraph, func: FunctionInfo, expr: ast.expr
    ) -> Optional[Tuple[str, str]]:
        if (
            isinstance(expr, ast.Name)
            and expr.id == "self"
            and func.class_name is not None
        ):
            return (func.module_path, func.class_name)
        return self._origin_class(
            pg, func, pg.origin_of(expr, func), _MAX_DEPTH
        )

    def _origin_class(
        self,
        pg: ProjectGraph,
        func: FunctionInfo,
        origin: Origin,
        depth: int,
    ) -> Optional[Tuple[str, str]]:
        if depth <= 0:
            return None
        if origin.kind == "selfattr":
            return self._origin_class(
                pg, func, pg.self_attr_origin(func, origin.attr), depth - 1
            )
        if origin.kind == "attr":
            if origin.base is None:
                return None
            base_cls = self._origin_class(pg, func, origin.base, depth - 1)
            if base_cls is None:
                return None
            cinfo = pg.class_info(*base_cls)
            if cinfo is None or not cinfo.methods:
                return None
            method = cinfo.methods[sorted(cinfo.methods)[0]]
            return self._origin_class(
                pg,
                method,
                pg.self_attr_origin(method, origin.attr),
                depth - 1,
            )
        if origin.kind == "param":
            annotation = param_annotation(func, origin.name)
            if annotation is None:
                return None
            return pg.resolve_annotation(
                pg.modules[func.module_path], annotation
            )
        if origin.kind != "call" or origin.callee is None:
            return None
        callee = origin.callee
        if callee.kind != "project":
            return None
        if "." not in callee.qualname and pg.is_class(
            callee.module, callee.qualname
        ):
            return (callee.module, callee.qualname)
        target = pg.function(callee.module, callee.qualname)
        if target is None or isinstance(target.node, ast.Module):
            return None
        for ret in pg.returns_of(target):
            found = self._origin_class(
                pg, target, pg.origin_of(ret, target), depth - 1
            )
            if found is not None:
                return found
        return None


register(CounterOwnershipRule())
