"""shm-view-write: shared-memory plane arrays stay read-only.

The parallel engine's zero-copy design hinges on one invariant: the
CSR arrays exported through :mod:`repro.parallel.shm` (graph planes)
are mapped into every shard worker *without copies*, so a single
in-place write anywhere corrupts the graph for all workers at once —
silently, because NumPy views over shared buffers raise nothing.

This rule taints every value that flows from a plane producer
(``attach_graph``/``export_graph``/``GraphPlane``/``AttachedGraph``)
or a raw-block producer (``SharedBlock``/``AttachedBlock``/
``view_array``/``pack_arrays``) — through attribute access,
subscripts, tuple unpacking, cross-module helper returns, and
``np.frombuffer``/``ndarray(buffer=...)`` wrapping — and flags any
write through a tainted value (subscript/slice assignment, augmented
assignment, ``out=`` keyword) outside the allowed writer modules.
Graph-plane taint may be written only inside ``repro/parallel/shm.py``
itself; raw-block taint also inside ``repro/parallel/worker.py``
(shard workers own their result arenas).

Approximation: taint does not flow *into* function parameters — a
callee writing to an array it received as an argument is the caller's
responsibility (the per-file view of the callee cannot know).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple, cast

from repro.analysis.findings import Finding
from repro.analysis.project.graph import (
    FunctionInfo,
    Origin,
    ProjectGraph,
    stmt_expressions,
)
from repro.analysis.rules import ProjectRule, register
from repro.analysis.rules.crossmodule import module_finding

#: The plane module: the only place graph-plane arrays may be built.
SHM_MODULE = "repro/parallel/shm.py"

#: shm symbols producing graph-plane views (read-only everywhere else).
GRAPH_PRODUCERS = frozenset(
    {"attach_graph", "export_graph", "GraphPlane", "AttachedGraph"}
)

#: shm symbols producing raw shared blocks (writable by block owners).
RAW_PRODUCERS = frozenset(
    {"SharedBlock", "AttachedBlock", "view_array", "pack_arrays"}
)

#: Modules allowed to write through raw-block taint.
RAW_WRITERS = frozenset({SHM_MODULE, "repro/parallel/worker.py"})

#: External callables that wrap a buffer without copying it.
_BUFFER_WRAPPERS = frozenset({"frombuffer", "ndarray", "asarray"})


class ShmViewWriteRule(ProjectRule):
    rule_id = "shm-view-write"
    title = "shared-memory plane arrays are never written outside shm"
    rationale = (
        "Graph planes are mapped zero-copy into every shard worker; an "
        "in-place write through any view corrupts the CSR arrays for "
        "all workers without raising. Only repro/parallel/shm.py may "
        "touch plane memory (and worker.py its own result arenas); "
        "everyone else treats plane arrays as frozen."
    )

    def __init__(self) -> None:
        self._return_taint: Dict[Tuple[str, str], Optional[str]] = {}

    def signature(self) -> str:
        scope = (
            sorted(GRAPH_PRODUCERS)
            + sorted(RAW_PRODUCERS)
            + sorted(RAW_WRITERS)
        )
        return f"{self.rule_id}:{SHM_MODULE}:{','.join(scope)}"

    def check_project(self, project: object) -> List[Finding]:
        pg = cast(ProjectGraph, project)
        findings: Dict[Tuple[str, int, int], Finding] = {}
        self._return_taint = {}
        for func in pg.functions():
            self._check_function(pg, func, findings)
        return [findings[key] for key in sorted(findings)]

    # ------------------------------------------------------------ checking
    def _check_function(
        self,
        pg: ProjectGraph,
        func: FunctionInfo,
        findings: Dict[Tuple[str, int, int], Finding],
    ) -> None:
        minfo = pg.modules[func.module_path]
        for stmt, _pinned in pg.statements_of(func):
            write_targets: List[Tuple[ast.expr, bool]] = []
            if isinstance(stmt, ast.Assign):
                # Plain assignment to a bare name is a rebinding, not a
                # write; only subscript/slice targets touch memory.
                write_targets = [(t, False) for t in stmt.targets]
            elif isinstance(stmt, ast.AugAssign):
                write_targets = [(stmt.target, True)]
            for target, in_place in write_targets:
                tainted = self._write_taint(pg, func, target, in_place)
                if tainted is None:
                    continue
                if self._allowed(tainted, func.module_path):
                    continue
                key = (func.module_path, target.lineno, target.col_offset)
                findings[key] = module_finding(
                    minfo,
                    self.rule_id,
                    target,
                    self._message(tainted, "written in place"),
                )
            if isinstance(stmt, (ast.Expr, ast.Assign, ast.AugAssign, ast.Return)):
                for node in stmt_expressions(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    for keyword in node.keywords:
                        if keyword.arg != "out":
                            continue
                        tainted = self._taint_of(
                            pg, func, pg.origin_of(keyword.value, func), 6
                        )
                        if tainted is None:
                            continue
                        if self._allowed(tainted, func.module_path):
                            continue
                        key = (
                            func.module_path,
                            keyword.value.lineno,
                            keyword.value.col_offset,
                        )
                        findings[key] = module_finding(
                            minfo,
                            self.rule_id,
                            keyword.value,
                            self._message(tainted, "used as an out= target"),
                        )

    @staticmethod
    def _allowed(taint: str, module_path: str) -> bool:
        if taint == "graph":
            return module_path == SHM_MODULE
        return module_path in RAW_WRITERS

    def _message(self, taint: str, what: str) -> str:
        if taint == "graph":
            return (
                f"shared graph-plane array {what}: plane views are "
                "mapped zero-copy into every shard worker and may only "
                f"be written inside {SHM_MODULE}"
            )
        return (
            f"shared-memory block array {what}: raw block views may "
            f"only be written by their owners "
            f"({', '.join(sorted(RAW_WRITERS))})"
        )

    # --------------------------------------------------------------- taint
    def _write_taint(
        self,
        pg: ProjectGraph,
        func: FunctionInfo,
        target: ast.expr,
        in_place: bool,
    ) -> Optional[str]:
        """Taint kind of a write target (``x[...] = `` / ``x += ``)."""
        if isinstance(target, ast.Subscript):
            return self._taint_of(
                pg, func, pg.origin_of(target.value, func), 6
            )
        if in_place and isinstance(target, (ast.Attribute, ast.Name)):
            # Augmented assignment mutates through the value itself.
            return self._taint_of(pg, func, pg.origin_of(target, func), 6)
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                taint = self._write_taint(pg, func, elt, in_place)
                if taint is not None:
                    return taint
        return None

    def _taint_of(
        self,
        pg: ProjectGraph,
        func: FunctionInfo,
        origin: Origin,
        depth: int,
    ) -> Optional[str]:
        if depth <= 0:
            return None
        if origin.kind in ("attr", "sub", "elt"):
            if origin.base is None:
                return None
            return self._taint_of(pg, func, origin.base, depth - 1)
        if origin.kind == "selfattr":
            return self._taint_of(
                pg, func, pg.self_attr_origin(func, origin.attr), depth - 1
            )
        if origin.kind in ("tuple", "binop"):
            for item in origin.items:
                taint = self._taint_of(pg, func, item, depth - 1)
                if taint is not None:
                    return taint
            return None
        if origin.kind != "call" or origin.callee is None:
            return None
        callee = origin.callee
        if callee.kind == "project":
            head = callee.qualname.split(".")[0]
            if callee.module == SHM_MODULE:
                if head in GRAPH_PRODUCERS:
                    return "graph"
                if head in RAW_PRODUCERS:
                    return "raw"
                return None
            return self._callee_return_taint(pg, callee.module, callee.qualname)
        # External wrappers that alias an existing buffer.
        last = callee.dotted.split(".")[-1]
        if last in _BUFFER_WRAPPERS and isinstance(origin.node, ast.Call):
            call = origin.node
            for arg in list(call.args)[:1]:
                taint = self._taint_of(
                    pg, func, pg.origin_of(arg, func), depth - 1
                )
                if taint is not None:
                    return taint
            for keyword in call.keywords:
                if keyword.arg == "buffer":
                    taint = self._taint_of(
                        pg, func, pg.origin_of(keyword.value, func), depth - 1
                    )
                    if taint is not None:
                        return taint
        return None

    def _callee_return_taint(
        self, pg: ProjectGraph, module: str, qualname: str
    ) -> Optional[str]:
        """Taint of a project function's return value (memoized)."""
        key = (module, qualname)
        if key in self._return_taint:
            return self._return_taint[key]
        self._return_taint[key] = None  # cycle guard
        target = pg.function(module, qualname)
        if target is None:
            return None
        taint: Optional[str] = None
        for ret in pg.returns_of(target):
            taint = self._taint_of(pg, target, pg.origin_of(ret, target), 6)
            if taint is not None:
                break
        self._return_taint[key] = taint
        return taint


register(ShmViewWriteRule())
