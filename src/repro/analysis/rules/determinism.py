"""Determinism rules: no host clock, no unseeded randomness.

Every experiment in this reproduction is meant to be a pure function of
its configuration and seed — that is what made the batched-sampler
replay equivalence and the Figure 2 calibrations checkable. Two rules
enforce the two ways host nondeterminism leaks in:

``det-wallclock``
    The host clock (``time.*``, ``datetime.*``) is banned everywhere in
    ``repro`` except the explicit benchmark-timing allowlist
    (``repro/bench.py``). Simulated components take time from the event
    kernel, and CLI benchmarking goes through
    :func:`repro.bench.bench_timer`.

``det-rng``
    Randomness must be an injected, explicitly-seeded
    ``np.random.Generator``. The stdlib ``random`` module (process-global
    state), seedless ``np.random.default_rng()``, and legacy
    module-level ``np.random.*`` calls (``seed``/``rand``/...) are all
    banned.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule, dotted_name, register

#: Modules allowed to read the host clock (benchmark timing only).
WALLCLOCK_ALLOWLIST = frozenset({"repro/bench.py"})

#: Host-clock callables, by dotted name relative to their module.
CLOCK_CALLS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
    }
)

#: ``datetime`` names that read the host clock when imported/called.
DATETIME_CLOCK_NAMES = frozenset({"datetime", "date", "time"})

#: ``np.random`` attributes that are fine: explicit generator plumbing.
NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


def _module_aliases(tree: ast.Module, module: str) -> Set[str]:
    """Names the file binds to ``import module`` (including aliases)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or module)
    return aliases


class WallClockRule(Rule):
    rule_id = "det-wallclock"
    title = "no host-clock reads outside the benchmark allowlist"
    rationale = (
        "Simulated latencies, SLO accounting, and replay equivalence are "
        "only trustworthy if no simulator code reads the wall clock. All "
        "host timing flows through repro.bench (allowlisted); everything "
        "else takes time from the deterministic event kernel."
    )

    def signature(self) -> str:
        return f"{self.rule_id}:{','.join(sorted(WALLCLOCK_ALLOWLIST))}"

    def check(self, ctx: FileContext) -> List[Finding]:
        if ctx.module_path in WALLCLOCK_ALLOWLIST:
            return []
        findings: List[Finding] = []
        time_aliases = _module_aliases(ctx.tree, "time")
        datetime_aliases = _module_aliases(ctx.tree, "datetime")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in ("time", "datetime"):
                        findings.append(
                            ctx.finding(
                                self.rule_id,
                                node,
                                f"host-clock module 'import {alias.name}' is "
                                "banned outside repro/bench.py; use "
                                "repro.bench.bench_timer for benchmark "
                                "timing or the simulator clock for "
                                "simulated time",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    findings.append(
                        ctx.finding(
                            self.rule_id,
                            node,
                            "'from time import ...' is banned outside "
                            "repro/bench.py",
                        )
                    )
                elif node.module == "datetime":
                    clocky = [
                        alias.name
                        for alias in node.names
                        if alias.name in DATETIME_CLOCK_NAMES
                    ]
                    if clocky:
                        findings.append(
                            ctx.finding(
                                self.rule_id,
                                node,
                                "importing host-clock datetime names "
                                f"({', '.join(clocky)}) is banned; "
                                "simulated timestamps come from the event "
                                "kernel",
                            )
                        )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if parts[0] in time_aliases and parts[-1] in CLOCK_CALLS:
                    findings.append(
                        ctx.finding(
                            self.rule_id,
                            node,
                            f"host-clock call '{dotted}()' is banned; use "
                            "repro.bench.bench_timer (benchmarks) or the "
                            "simulator clock",
                        )
                    )
                elif parts[0] in datetime_aliases and parts[-1] in (
                    "now",
                    "utcnow",
                    "today",
                ):
                    findings.append(
                        ctx.finding(
                            self.rule_id,
                            node,
                            f"host-clock call '{dotted}()' is banned",
                        )
                    )
        return findings


class SeededRngRule(Rule):
    rule_id = "det-rng"
    title = "randomness must be an injected, seeded np.random.Generator"
    rationale = (
        "A random draw that does not flow through a seeded Generator "
        "breaks run-to-run reproducibility and the replay-equivalence "
        "checks. The stdlib random module and legacy np.random module "
        "state are process-global and unseedable per-component."
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        numpy_aliases = _module_aliases(ctx.tree, "numpy") | {"np"}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        findings.append(
                            ctx.finding(
                                self.rule_id,
                                node,
                                "stdlib 'random' is process-global state; "
                                "inject a seeded np.random.Generator "
                                "instead",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    findings.append(
                        ctx.finding(
                            self.rule_id,
                            node,
                            "'from random import ...' is banned; inject a "
                            "seeded np.random.Generator instead",
                        )
                    )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if (
                    len(parts) == 3
                    and parts[0] in numpy_aliases
                    and parts[1] == "random"
                ):
                    attr = parts[2]
                    if attr == "default_rng":
                        if self._is_seedless(node):
                            findings.append(
                                ctx.finding(
                                    self.rule_id,
                                    node,
                                    "seedless np.random.default_rng() draws "
                                    "OS entropy; pass an explicit seed "
                                    "threaded from configuration",
                                )
                            )
                    elif attr not in NP_RANDOM_ALLOWED:
                        findings.append(
                            ctx.finding(
                                self.rule_id,
                                node,
                                f"module-level 'np.random.{attr}()' uses "
                                "hidden global RNG state; use a seeded "
                                "np.random.Generator",
                            )
                        )
        return findings

    @staticmethod
    def _is_seedless(call: ast.Call) -> bool:
        if not call.args and not call.keywords:
            return True
        if call.args:
            first = call.args[0]
            return isinstance(first, ast.Constant) and first.value is None
        for keyword in call.keywords:
            if keyword.arg == "seed":
                value = keyword.value
                return isinstance(value, ast.Constant) and value.value is None
        return False


register(WallClockRule())
register(SeededRngRule())
