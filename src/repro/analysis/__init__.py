"""Static analysis enforcing the simulator's correctness contracts.

The reproduction's headline results — replay-equivalent batched
sampling, fault accounting, SLO latency distributions — all rest on
unwritten invariants: randomness flows through injected seeded
generators, no simulator code reads the host clock, unit conversions go
through :mod:`repro.units`, and accounting counters are mutated only by
their recording helpers. This package enforces those invariants
mechanically with an AST-based rule engine, per-line suppressions
(``# repro: allow[rule-id] reason``), and a committed baseline for
grandfathered findings. See ``repro lint --list-rules``.

The engine has two tiers: per-file :class:`Rule` checks run on every
``repro lint``, and whole-program :class:`ProjectRule` checks
(``repro lint --deep``) run over a :class:`ProjectGraph` — an import
graph plus symbol tables and a call-graph approximation — to catch
violations that span modules (shared-memory view writes, snapshot-pin
escapes, laundered RNG seeds, cross-module counter mutations).
"""

from repro.analysis.baseline import Baseline, BaselineEntry, BaselineResult
from repro.analysis.engine import (
    AnalysisEngine,
    AnalysisResult,
    DeepAnalysisResult,
    FileResult,
    analyze_source,
    derive_module_path,
)
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectGraph, build_project_from_sources
from repro.analysis.rules import (
    RULES,
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    get_rule,
    register,
)

__all__ = [
    "AnalysisEngine",
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "BaselineResult",
    "DeepAnalysisResult",
    "FileResult",
    "Finding",
    "ProjectGraph",
    "ProjectRule",
    "RULES",
    "Rule",
    "all_project_rules",
    "all_rules",
    "analyze_source",
    "build_project_from_sources",
    "derive_module_path",
    "get_rule",
    "register",
]
