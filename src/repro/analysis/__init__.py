"""Static analysis enforcing the simulator's correctness contracts.

The reproduction's headline results — replay-equivalent batched
sampling, fault accounting, SLO latency distributions — all rest on
unwritten invariants: randomness flows through injected seeded
generators, no simulator code reads the host clock, unit conversions go
through :mod:`repro.units`, and accounting counters are mutated only by
their recording helpers. This package enforces those invariants
mechanically with an AST-based rule engine, per-line suppressions
(``# repro: allow[rule-id] reason``), and a committed baseline for
grandfathered findings. See ``repro lint --list-rules``.
"""

from repro.analysis.baseline import Baseline, BaselineEntry, BaselineResult
from repro.analysis.engine import (
    AnalysisEngine,
    AnalysisResult,
    FileResult,
    analyze_source,
    derive_module_path,
)
from repro.analysis.findings import Finding
from repro.analysis.rules import RULES, Rule, all_rules, get_rule, register

__all__ = [
    "AnalysisEngine",
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "BaselineResult",
    "FileResult",
    "Finding",
    "RULES",
    "Rule",
    "all_rules",
    "analyze_source",
    "derive_module_path",
    "get_rule",
    "register",
]
