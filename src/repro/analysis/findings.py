"""Structured lint findings.

A :class:`Finding` is one rule violation at one source location. The
``path`` is the *module path* (``repro/framework/sampler.py``), not a
filesystem path: it is stable across checkouts, which makes it usable
as a baseline key. The :meth:`Finding.fingerprint` deliberately hashes
the rule, the module path, and the *text* of the offending line — not
the line number — so a committed baseline survives unrelated edits
above the finding.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str = ""

    def fingerprint(self) -> str:
        """Line-number-independent identity used for baseline matching."""
        key = f"{self.rule}::{self.path}::{self.snippet}"
        return hashlib.sha1(key.encode("utf-8")).hexdigest()

    def format(self) -> str:
        """One-line human-readable rendering."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            rule=str(data["rule"]),
            message=str(data["message"]),
            snippet=str(data.get("snippet", "")),
        )
