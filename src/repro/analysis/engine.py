"""The analysis engine: file walker, parse cache, rule driver.

One :class:`AnalysisEngine` run walks a tree (or explicit files),
parses each ``*.py`` once, runs every registered rule against the
shared AST, applies per-line suppressions, and returns structured
findings. Results are cached per file content hash, so re-linting an
unchanged tree (locally or in CI via a cached ``.repro-lint-cache.json``)
skips parsing and rule execution entirely.

Fixture files under ``repro/analysis/fixtures/`` are deliberate rule
violations used by the tests and ``repro lint --explain``; the walker
skips them.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.analysis.findings import Finding
from repro.analysis.rules import (
    MODULE_MARKER_RE,
    FileContext,
    ProjectRule,
    Rule,
    all_rules,
)
from repro.analysis.suppress import apply_suppressions, parse_suppressions

#: Bump when engine semantics change in a way that invalidates caches.
ENGINE_VERSION = "1"

#: Bump when project-layer semantics change (invalidates deep caches).
PROJECT_VERSION = "1"

#: Module-path prefix of deliberate-violation fixture files.
FIXTURE_PREFIX = "repro/analysis/fixtures/"


def derive_module_path(path: Union[str, Path]) -> str:
    """Module path (``repro/axe/core.py``) from a filesystem path.

    Anchors on the last ``repro`` directory component so the result is
    the same whether the file is addressed as ``src/repro/axe/core.py``
    or ``/abs/checkout/src/repro/axe/core.py``. Files outside a
    ``repro`` tree keep their path relative to the scan root.
    """
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return Path(path).name


@dataclass
class FileResult:
    """Per-file analysis outcome."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    from_cache: bool = False


@dataclass
class AnalysisResult:
    """Aggregate outcome of one engine run (pre-baseline)."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    cache_hits: int = 0


@dataclass
class DeepAnalysisResult(AnalysisResult):
    """File-layer outcome plus the ``--deep`` project-layer outcome."""

    project_findings: List[Finding] = field(default_factory=list)
    project_suppressed: List[Finding] = field(default_factory=list)
    #: Modules whose dependency-closure hash matched the cache.
    project_cache_hits: int = 0
    project_modules: int = 0
    #: True when the whole project pass was served from cache (no
    #: module changed, so the graph was never rebuilt).
    project_reused: bool = False


def analyze_source(
    source: str,
    *,
    path: str = "<memory>",
    module_path: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> FileResult:
    """Analyze one source string (the unit the tests drive directly).

    ``module_path`` defaults to ``path``; a ``# repro-module:`` marker
    in the first three lines overrides both.
    """
    active_rules = list(rules) if rules is not None else all_rules()
    lines = source.splitlines()
    resolved_module = module_path if module_path is not None else path
    for raw in lines[:3]:
        match = MODULE_MARKER_RE.match(raw.strip())
        if match:
            resolved_module = match.group(1)
            break
    result = FileResult(path=resolved_module)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                path=resolved_module,
                line=int(exc.lineno or 1),
                col=int(exc.offset or 0) + 1,
                rule="parse-error",
                message=f"syntax error: {exc.msg}",
                snippet=(exc.text or "").strip(),
            )
        )
        return result
    ctx = FileContext(
        path=path, module_path=resolved_module, tree=tree, lines=lines
    )
    raw_findings: List[Finding] = []
    for rule in active_rules:
        raw_findings.extend(rule.check(ctx))
    by_line, bad_suppressions = parse_suppressions(
        resolved_module, source, [rule.rule_id for rule in active_rules]
    )
    kept, suppressed = apply_suppressions(raw_findings, by_line)
    kept.extend(bad_suppressions)
    result.findings = sorted(kept)
    result.suppressed = sorted(suppressed)
    return result


class AnalysisEngine:
    """Walks files, caches per-content results, aggregates findings."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        cache_path: Optional[Path] = None,
    ) -> None:
        self.rules: List[Rule] = (
            list(rules) if rules is not None else all_rules()
        )
        self.project_rules: List[ProjectRule] = [
            rule for rule in self.rules if isinstance(rule, ProjectRule)
        ]
        self.cache_path = cache_path
        self._cache: Dict[str, Dict[str, object]] = {}
        self._project_cache: Dict[str, Dict[str, object]] = {}
        self._cache_dirty = False
        if cache_path is not None:
            self._load_cache(cache_path)

    # ------------------------------------------------------------- walking
    @staticmethod
    def iter_python_files(root: Path) -> List[Path]:
        """All lintable ``*.py`` files under ``root``, sorted."""
        files: List[Path] = []
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            if derive_module_path(path).startswith(FIXTURE_PREFIX):
                continue
            files.append(path)
        return files

    def expand_paths(self, paths: Iterable[Path]) -> List[Path]:
        expanded: List[Path] = []
        for path in paths:
            if path.is_dir():
                expanded.extend(self.iter_python_files(path))
            else:
                expanded.append(path)
        return expanded

    # ------------------------------------------------------------- running
    def run(self, paths: Sequence[Path]) -> AnalysisResult:
        result = AnalysisResult()
        for path in self.expand_paths(paths):
            file_result = self.analyze_file(path)
            result.files_scanned += 1
            if file_result.from_cache:
                result.cache_hits += 1
            result.findings.extend(file_result.findings)
            result.suppressed.extend(file_result.suppressed)
        result.findings.sort()
        result.suppressed.sort()
        if self.cache_path is not None and self._cache_dirty:
            self._save_cache(self.cache_path)
        return result

    def analyze_file(
        self, path: Path, data: Optional[bytes] = None
    ) -> FileResult:
        if data is None:
            data = path.read_bytes()
        digest = hashlib.sha1(data).hexdigest()
        module_path = derive_module_path(path)
        cached = self._cache.get(module_path)
        if cached is not None and cached.get("sha") == digest:
            result = FileResult(path=module_path, from_cache=True)
            result.findings = [
                Finding.from_dict(d) for d in cached.get("findings", [])  # type: ignore[union-attr]
            ]
            result.suppressed = [
                Finding.from_dict(d) for d in cached.get("suppressed", [])  # type: ignore[union-attr]
            ]
            return result
        result = analyze_source(
            data.decode("utf-8"),
            path=str(path),
            module_path=module_path,
            rules=self.rules,
        )
        self._cache[module_path] = {
            "sha": digest,
            "findings": [f.to_dict() for f in result.findings],
            "suppressed": [f.to_dict() for f in result.suppressed],
        }
        self._cache_dirty = True
        return result

    # ---------------------------------------------------------- deep pass
    def run_deep(self, paths: Sequence[Path]) -> DeepAnalysisResult:
        """File pass plus the whole-program (``--deep``) project pass.

        Project findings are cached per module, keyed on the sha of the
        module's *dependency closure*: an edit to anything a module
        (transitively) imports invalidates its cached project results.
        When no module changed at all, the cached findings are served
        without even rebuilding the project graph — that is the warm
        path CI and local re-runs hit.
        """
        result = DeepAnalysisResult()
        sources: Dict[str, str] = {}
        shas: Dict[str, str] = {}
        for path in self.expand_paths(paths):
            data = path.read_bytes()
            file_result = self.analyze_file(path, data)
            result.files_scanned += 1
            if file_result.from_cache:
                result.cache_hits += 1
            result.findings.extend(file_result.findings)
            result.suppressed.extend(file_result.suppressed)
            source = data.decode("utf-8")
            module_path = resolve_module_path(path, source)
            sources[module_path] = source
            shas[module_path] = hashlib.sha1(data).hexdigest()
        result.findings.sort()
        result.suppressed.sort()
        result.project_modules = len(sources)

        if self._project_unchanged(shas):
            for module_path in sorted(sources):
                entry = self._project_cache[module_path]
                result.project_findings.extend(
                    Finding.from_dict(d)
                    for d in _as_list(entry.get("findings"))
                )
                result.project_suppressed.extend(
                    Finding.from_dict(d)
                    for d in _as_list(entry.get("suppressed"))
                )
            result.project_cache_hits = len(sources)
            result.project_reused = True
        else:
            self._run_project_pass(sources, shas, result)
            self._cache_dirty = True
        result.project_findings.sort()
        result.project_suppressed.sort()
        if self.cache_path is not None and self._cache_dirty:
            self._save_cache(self.cache_path)
        return result

    def _project_unchanged(self, shas: Dict[str, str]) -> bool:
        if set(shas) != set(self._project_cache):
            return False
        return all(
            self._project_cache[module].get("sha") == sha
            for module, sha in shas.items()
        )

    def _run_project_pass(
        self,
        sources: Dict[str, str],
        shas: Dict[str, str],
        result: DeepAnalysisResult,
    ) -> None:
        from repro.analysis.project.graph import build_project_from_sources

        graph = build_project_from_sources(sources)
        edges = graph.import_edges()
        closures: Dict[str, str] = {}
        for module_path in graph.modules:
            closure = sorted(graph.import_closure(module_path))
            text = ";".join(
                f"{dep}:{shas.get(dep, 'missing')}" for dep in closure
            )
            closures[module_path] = hashlib.sha1(
                text.encode("utf-8")
            ).hexdigest()

        raw: List[Finding] = []
        for rule in self.project_rules:
            raw.extend(rule.check_project(graph))
        by_module: Dict[str, List[Finding]] = {}
        for finding in raw:
            by_module.setdefault(finding.path, []).append(finding)

        project_rule_ids = [rule.rule_id for rule in self.rules]
        new_cache: Dict[str, Dict[str, object]] = {}
        for module_path in sorted(graph.modules):
            source = sources.get(
                module_path, "\n".join(graph.modules[module_path].lines)
            )
            by_line, _bad = parse_suppressions(
                module_path, source, project_rule_ids
            )
            kept, suppressed = apply_suppressions(
                by_module.get(module_path, []), by_line
            )
            cached = self._project_cache.get(module_path)
            if (
                cached is not None
                and cached.get("closure_sha") == closures[module_path]
            ):
                result.project_cache_hits += 1
            result.project_findings.extend(kept)
            result.project_suppressed.extend(suppressed)
            new_cache[module_path] = {
                "sha": shas.get(module_path, ""),
                "imports": sorted(edges.get(module_path, set())),
                "closure_sha": closures[module_path],
                "findings": [f.to_dict() for f in sorted(kept)],
                "suppressed": [f.to_dict() for f in sorted(suppressed)],
            }
        self._project_cache = new_cache

    # ------------------------------------------------------------- caching
    def _rules_signature(self) -> str:
        key = ENGINE_VERSION + ";" + ",".join(
            sorted(rule.signature() for rule in self.rules)
        )
        return hashlib.sha1(key.encode("utf-8")).hexdigest()

    def _project_signature(self) -> str:
        key = (
            ENGINE_VERSION
            + ";"
            + PROJECT_VERSION
            + ";"
            + ",".join(sorted(rule.signature() for rule in self.project_rules))
        )
        return hashlib.sha1(key.encode("utf-8")).hexdigest()

    def _load_cache(self, path: Path) -> None:
        self._cache = {}
        self._project_cache = {}
        if not path.exists():
            return
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if data.get("rules_sig") == self._rules_signature():
            files = data.get("files")
            if isinstance(files, dict):
                self._cache = dict(files)
        if data.get("project_sig") == self._project_signature():
            project = data.get("project")
            if isinstance(project, dict):
                self._project_cache = dict(project)

    def _save_cache(self, path: Path) -> None:
        payload = {
            "version": 1,
            "rules_sig": self._rules_signature(),
            "files": self._cache,
            "project_sig": self._project_signature(),
            "project": self._project_cache,
        }
        path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")


def resolve_module_path(path: Union[str, Path], source: str) -> str:
    """Module path of ``path``, honoring a ``# repro-module:`` marker."""
    for raw in source.splitlines()[:3]:
        match = MODULE_MARKER_RE.match(raw.strip())
        if match:
            return match.group(1)
    return derive_module_path(path)


def _as_list(value: object) -> List[Dict[str, object]]:
    return list(value) if isinstance(value, list) else []
