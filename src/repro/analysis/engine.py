"""The analysis engine: file walker, parse cache, rule driver.

One :class:`AnalysisEngine` run walks a tree (or explicit files),
parses each ``*.py`` once, runs every registered rule against the
shared AST, applies per-line suppressions, and returns structured
findings. Results are cached per file content hash, so re-linting an
unchanged tree (locally or in CI via a cached ``.repro-lint-cache.json``)
skips parsing and rule execution entirely.

Fixture files under ``repro/analysis/fixtures/`` are deliberate rule
violations used by the tests and ``repro lint --explain``; the walker
skips them.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.analysis.findings import Finding
from repro.analysis.rules import (
    MODULE_MARKER_RE,
    FileContext,
    Rule,
    all_rules,
)
from repro.analysis.suppress import apply_suppressions, parse_suppressions

#: Bump when engine semantics change in a way that invalidates caches.
ENGINE_VERSION = "1"

#: Module-path prefix of deliberate-violation fixture files.
FIXTURE_PREFIX = "repro/analysis/fixtures/"


def derive_module_path(path: Union[str, Path]) -> str:
    """Module path (``repro/axe/core.py``) from a filesystem path.

    Anchors on the last ``repro`` directory component so the result is
    the same whether the file is addressed as ``src/repro/axe/core.py``
    or ``/abs/checkout/src/repro/axe/core.py``. Files outside a
    ``repro`` tree keep their path relative to the scan root.
    """
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return Path(path).name


@dataclass
class FileResult:
    """Per-file analysis outcome."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    from_cache: bool = False


@dataclass
class AnalysisResult:
    """Aggregate outcome of one engine run (pre-baseline)."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    cache_hits: int = 0


def analyze_source(
    source: str,
    *,
    path: str = "<memory>",
    module_path: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> FileResult:
    """Analyze one source string (the unit the tests drive directly).

    ``module_path`` defaults to ``path``; a ``# repro-module:`` marker
    in the first three lines overrides both.
    """
    active_rules = list(rules) if rules is not None else all_rules()
    lines = source.splitlines()
    resolved_module = module_path if module_path is not None else path
    for raw in lines[:3]:
        match = MODULE_MARKER_RE.match(raw.strip())
        if match:
            resolved_module = match.group(1)
            break
    result = FileResult(path=resolved_module)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                path=resolved_module,
                line=int(exc.lineno or 1),
                col=int(exc.offset or 0) + 1,
                rule="parse-error",
                message=f"syntax error: {exc.msg}",
                snippet=(exc.text or "").strip(),
            )
        )
        return result
    ctx = FileContext(
        path=path, module_path=resolved_module, tree=tree, lines=lines
    )
    raw_findings: List[Finding] = []
    for rule in active_rules:
        raw_findings.extend(rule.check(ctx))
    by_line, bad_suppressions = parse_suppressions(
        resolved_module, source, [rule.rule_id for rule in active_rules]
    )
    kept, suppressed = apply_suppressions(raw_findings, by_line)
    kept.extend(bad_suppressions)
    result.findings = sorted(kept)
    result.suppressed = sorted(suppressed)
    return result


class AnalysisEngine:
    """Walks files, caches per-content results, aggregates findings."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        cache_path: Optional[Path] = None,
    ) -> None:
        self.rules: List[Rule] = (
            list(rules) if rules is not None else all_rules()
        )
        self.cache_path = cache_path
        self._cache: Dict[str, Dict[str, object]] = {}
        self._cache_dirty = False
        if cache_path is not None:
            self._cache = self._load_cache(cache_path)

    # ------------------------------------------------------------- walking
    @staticmethod
    def iter_python_files(root: Path) -> List[Path]:
        """All lintable ``*.py`` files under ``root``, sorted."""
        files: List[Path] = []
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            if derive_module_path(path).startswith(FIXTURE_PREFIX):
                continue
            files.append(path)
        return files

    def expand_paths(self, paths: Iterable[Path]) -> List[Path]:
        expanded: List[Path] = []
        for path in paths:
            if path.is_dir():
                expanded.extend(self.iter_python_files(path))
            else:
                expanded.append(path)
        return expanded

    # ------------------------------------------------------------- running
    def run(self, paths: Sequence[Path]) -> AnalysisResult:
        result = AnalysisResult()
        for path in self.expand_paths(paths):
            file_result = self.analyze_file(path)
            result.files_scanned += 1
            if file_result.from_cache:
                result.cache_hits += 1
            result.findings.extend(file_result.findings)
            result.suppressed.extend(file_result.suppressed)
        result.findings.sort()
        result.suppressed.sort()
        if self.cache_path is not None and self._cache_dirty:
            self._save_cache(self.cache_path)
        return result

    def analyze_file(self, path: Path) -> FileResult:
        data = path.read_bytes()
        digest = hashlib.sha1(data).hexdigest()
        module_path = derive_module_path(path)
        cached = self._cache.get(module_path)
        if cached is not None and cached.get("sha") == digest:
            result = FileResult(path=module_path, from_cache=True)
            result.findings = [
                Finding.from_dict(d) for d in cached.get("findings", [])  # type: ignore[union-attr]
            ]
            result.suppressed = [
                Finding.from_dict(d) for d in cached.get("suppressed", [])  # type: ignore[union-attr]
            ]
            return result
        result = analyze_source(
            data.decode("utf-8"),
            path=str(path),
            module_path=module_path,
            rules=self.rules,
        )
        self._cache[module_path] = {
            "sha": digest,
            "findings": [f.to_dict() for f in result.findings],
            "suppressed": [f.to_dict() for f in result.suppressed],
        }
        self._cache_dirty = True
        return result

    # ------------------------------------------------------------- caching
    def _rules_signature(self) -> str:
        key = ENGINE_VERSION + ";" + ",".join(
            sorted(rule.rule_id for rule in self.rules)
        )
        return hashlib.sha1(key.encode("utf-8")).hexdigest()

    def _load_cache(self, path: Path) -> Dict[str, Dict[str, object]]:
        if not path.exists():
            return {}
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if data.get("rules_sig") != self._rules_signature():
            return {}
        files = data.get("files")
        return dict(files) if isinstance(files, dict) else {}

    def _save_cache(self, path: Path) -> None:
        payload = {
            "version": 1,
            "rules_sig": self._rules_signature(),
            "files": self._cache,
        }
        path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
