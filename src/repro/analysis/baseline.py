"""Committed baseline of grandfathered findings.

The baseline lets the linter land with the tree not yet clean — every
pre-existing finding is recorded (reviewed, committed) and only *new*
findings fail the build. Entries key on the finding fingerprint (rule +
module path + offending line text), so unrelated edits above a
grandfathered line do not churn the baseline; entries carry a count so
two identical lines in one file are tracked as two findings.

A baseline entry whose finding has disappeared is *stale*: it is
reported and fails the run until ``repro lint --update-baseline``
removes it, so the baseline can only shrink silently, never grow.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.analysis.findings import Finding

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding (possibly with multiplicity)."""

    rule: str
    path: str
    snippet: str
    message: str
    count: int = 1

    def fingerprint(self) -> str:
        return Finding(
            path=self.path,
            line=0,
            col=0,
            rule=self.rule,
            message=self.message,
            snippet=self.snippet,
        ).fingerprint()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "snippet": self.snippet,
            "message": self.message,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BaselineEntry":
        return cls(
            rule=str(data["rule"]),
            path=str(data["path"]),
            snippet=str(data.get("snippet", "")),
            message=str(data.get("message", "")),
            count=int(data.get("count", 1)),
        )


@dataclass
class BaselineResult:
    """Outcome of matching current findings against the baseline."""

    new: List[Finding]
    baselined_count: int
    stale: List[BaselineEntry]


class Baseline:
    """A loaded (or empty) baseline file.

    Two independent sections: ``entries`` grandfathers per-file rule
    findings, ``project_entries`` grandfathers whole-program
    (``--deep``) findings. A shallow ``repro lint`` only reads and
    rewrites ``entries``; the project section is preserved verbatim so
    the two update paths never clobber each other.
    """

    def __init__(
        self,
        entries: List[BaselineEntry],
        project_entries: Optional[List[BaselineEntry]] = None,
    ) -> None:
        self.entries = entries
        self.project_entries = (
            project_entries if project_entries is not None else []
        )

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls([])
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version in {path}: "
                f"{data.get('version')!r} (expected {BASELINE_VERSION})"
            )
        entries = [
            BaselineEntry.from_dict(entry) for entry in data.get("entries", [])
        ]
        project_entries = [
            BaselineEntry.from_dict(entry)
            for entry in data.get("project_entries", [])
        ]
        return cls(entries, project_entries)

    def save(self, path: Path) -> None:
        def _sorted(entries: List[BaselineEntry]) -> List[Dict[str, Any]]:
            return [
                entry.to_dict()
                for entry in sorted(
                    entries, key=lambda e: (e.path, e.rule, e.snippet)
                )
            ]

        payload = {
            "version": BASELINE_VERSION,
            "entries": _sorted(self.entries),
            "project_entries": _sorted(self.project_entries),
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def from_findings(
        cls,
        findings: List[Finding],
        project_findings: Optional[List[Finding]] = None,
    ) -> "Baseline":
        return cls(
            _entries_from(findings),
            _entries_from(project_findings or []),
        )

    def apply(self, findings: List[Finding]) -> BaselineResult:
        """Partition ``findings`` into new vs grandfathered; find stale."""
        return self._apply(findings, self.entries)

    def apply_project(self, findings: List[Finding]) -> BaselineResult:
        """Like :meth:`apply`, against the ``--deep`` section."""
        return self._apply(findings, self.project_entries)

    @staticmethod
    def _apply(
        findings: List[Finding], entries: List[BaselineEntry]
    ) -> BaselineResult:
        budgets: Dict[str, int] = {}
        for entry in entries:
            budgets[entry.fingerprint()] = (
                budgets.get(entry.fingerprint(), 0) + entry.count
            )
        new: List[Finding] = []
        baselined = 0
        for finding in sorted(findings):
            fp = finding.fingerprint()
            if budgets.get(fp, 0) > 0:
                budgets[fp] -= 1
                baselined += 1
            else:
                new.append(finding)
        stale: List[BaselineEntry] = []
        for entry in entries:
            remaining = budgets.get(entry.fingerprint(), 0)
            if remaining > 0:
                budgets[entry.fingerprint()] = 0
                stale.append(
                    BaselineEntry(
                        rule=entry.rule,
                        path=entry.path,
                        snippet=entry.snippet,
                        message=entry.message,
                        count=remaining,
                    )
                )
        return BaselineResult(new=new, baselined_count=baselined, stale=stale)


def _entries_from(findings: List[Finding]) -> List[BaselineEntry]:
    counts: Dict[str, BaselineEntry] = {}
    multiplicity: Dict[str, int] = {}
    for finding in findings:
        fp = finding.fingerprint()
        multiplicity[fp] = multiplicity.get(fp, 0) + 1
        counts[fp] = BaselineEntry(
            rule=finding.rule,
            path=finding.path,
            snippet=finding.snippet,
            message=finding.message,
            count=multiplicity[fp],
        )
    return list(counts.values())
