"""Report formatting for the FaaS DSE figures.

Turns :class:`~repro.faas.dse.FaasResult` sweeps into the text tables
the benchmarks print: per-point throughput (Figure 17), normalized
performance per dollar (Figure 18), geomean summaries (Figures 19/21),
and the minimal service cost comparison (Figure 20).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.faas.dse import CpuBaselineResult, FaasDse, FaasResult
from repro.graph.datasets import DATASET_ORDER


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ConfigurationError("geomean of an empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ConfigurationError(f"geomean requires positive values, got {value}")
        product *= value
    return product ** (1.0 / len(values))


def _group(
    results: Iterable[FaasResult],
) -> Dict[Tuple[str, str], Dict[str, FaasResult]]:
    """(arch, size) -> dataset -> result."""
    grouped: Dict[Tuple[str, str], Dict[str, FaasResult]] = defaultdict(dict)
    for result in results:
        grouped[(result.arch, result.size)][result.dataset] = result
    return grouped


def format_perf_table(
    results: Sequence[FaasResult], batch_size: int = 512
) -> str:
    """Figure 17: sampling throughput (batches/s) per instance."""
    grouped = _group(results)
    lines = [
        "arch            size    " + "".join(f"{d:>10}" for d in DATASET_ORDER) + "   geomean"
    ]
    for (arch, size), per_dataset in sorted(grouped.items()):
        row = [f"{arch:<15} {size:<7}"]
        values = []
        for dataset in DATASET_ORDER:
            result = per_dataset.get(dataset)
            if result is None:
                row.append(f"{'-':>10}")
            else:
                value = result.roots_per_second / batch_size
                values.append(value)
                row.append(f"{value:>10.1f}")
        row.append(f"{geomean(values):>9.1f}" if values else f"{'-':>9}")
        lines.append("".join(row))
    return "\n".join(lines)


def normalized_perf_per_dollar(
    results: Sequence[FaasResult], cpu_results: Sequence[CpuBaselineResult]
) -> Dict[Tuple[str, str, str], float]:
    """Figure 18 values: perf/$ normalized to the CPU geomean."""
    cpu_geomean = geomean([r.perf_per_dollar for r in cpu_results])
    return {
        (r.arch, r.size, r.dataset): r.perf_per_dollar / cpu_geomean
        for r in results
    }


def format_perf_per_dollar_table(
    results: Sequence[FaasResult], cpu_results: Sequence[CpuBaselineResult]
) -> str:
    """Figure 18: normalized perf/$ per (arch, size, dataset)."""
    normalized = normalized_perf_per_dollar(results, cpu_results)
    grouped: Dict[Tuple[str, str], Dict[str, float]] = defaultdict(dict)
    for (arch, size, dataset), value in normalized.items():
        grouped[(arch, size)][dataset] = value
    lines = [
        "arch            size    " + "".join(f"{d:>8}" for d in DATASET_ORDER) + "  geomean"
    ]
    for (arch, size), per_dataset in sorted(grouped.items()):
        row = [f"{arch:<15} {size:<7}"]
        values = []
        for dataset in DATASET_ORDER:
            value = per_dataset.get(dataset)
            if value is None:
                row.append(f"{'-':>8}")
            else:
                values.append(value)
                row.append(f"{value:>8.2f}")
        row.append(f"{geomean(values):>8.2f}" if values else f"{'-':>8}")
        lines.append("".join(row))
    return "\n".join(lines)


def arch_geomeans(
    results: Sequence[FaasResult],
    cpu_results: Sequence[CpuBaselineResult],
) -> Dict[str, float]:
    """Figure 21: per-architecture geomean of normalized perf/$ (over
    sizes and datasets)."""
    normalized = normalized_perf_per_dollar(results, cpu_results)
    per_arch: Dict[str, List[float]] = defaultdict(list)
    for (arch, _size, _dataset), value in normalized.items():
        per_arch[arch].append(value)
    return {arch: geomean(values) for arch, values in per_arch.items()}


def arch_perf_geomeans(results: Sequence[FaasResult]) -> Dict[str, float]:
    """Figure 19: per-architecture geomean throughput (roots/s)."""
    per_arch: Dict[str, List[float]] = defaultdict(list)
    for result in results:
        per_arch[result.arch].append(result.roots_per_second)
    return {arch: geomean(values) for arch, values in per_arch.items()}


def format_min_cost_table(
    dse: FaasDse,
    sizes: Sequence[str] = ("small", "medium", "large"),
    datasets: Sequence[str] = DATASET_ORDER,
) -> str:
    """Figure 20: minimal service cost, CPU vs FaaS.base, normalized to
    the ss CPU cost at each size."""
    lines = ["size    system  " + "".join(f"{d:>9}" for d in datasets)]
    for size in sizes:
        baseline = dse.min_service_cost("ss", size, faas=False)
        for faas in (False, True):
            name = "faas" if faas else "cpu"
            row = [f"{size:<7} {name:<7}"]
            for dataset in datasets:
                cost = dse.min_service_cost(dataset, size, faas=faas)
                row.append(f"{cost / baseline:>9.2f}")
            lines.append("".join(row))
    return "\n".join(lines)
