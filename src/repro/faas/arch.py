"""The eight FaaS architectures of the design-space exploration (Table 8).

Two taxonomy axes: the primary design constraint (base, cost-opt,
comm-opt, mem-opt) and the FPGA/GPU coupling (tc = tightly coupled in
one server, decp = decoupled all-FPGA and all-GPU servers).

Each architecture pins down four paths per Table 8:
  * remote memory access — instance NIC (base/cost-opt) or the
    dedicated MoF fabric (comm-opt/mem-opt);
  * local memory access — PCIe-attached host DRAM or FPGA local DRAM;
  * FPGA->GPU result output — in-server PCIe P2P (tc), a high-speed
    GPU link (mem-opt.tc), or the across-server NIC (decp);
  * the AxE core count sized by Equation 3 for the path latencies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.units import GB, US


class RemotePath(enum.Enum):
    """How an FPGA reaches graph shards on other instances."""

    NIC = "nic"  # PCIe -> NIC -> PCIe (base), or on-FPGA NIC (cost-opt)
    MOF = "mof"  # dedicated inter-FPGA fabric


class OutputPath(enum.Enum):
    """How sampled results reach the GPU."""

    NIC = "nic"  # across-server (decoupled): shares the instance NIC
    PCIE_P2P = "pcie_p2p"  # in-server PCIe peer-to-peer, 16 GB/s/chip
    FAST_LINK = "fast_link"  # NVLink-class in-server link, 300 GB/s/chip


@dataclass(frozen=True)
class FaasArchitecture:
    """One of the eight Table 8 design points."""

    constraint: str  # base / cost-opt / comm-opt / mem-opt
    coupling: str  # tc / decp
    remote_path: RemotePath
    output_path: OutputPath
    #: Local memory bandwidth per FPGA chip (bytes/s).
    local_bw_per_chip: float
    #: Graph shards live in host DRAM or in FPGA local DRAM (mem-opt).
    graph_in_fpga_dram: bool
    #: Round-trip latency of the remote path (drives Eq. 3 core sizing).
    remote_latency_s: float
    #: AxE cores per chip (the paper's Eq. 3 result per architecture).
    axe_cores: int

    def __post_init__(self) -> None:
        if self.coupling not in ("tc", "decp"):
            raise ConfigurationError(f"coupling must be tc/decp, got {self.coupling}")
        if self.axe_cores <= 0:
            raise ConfigurationError(f"axe_cores must be positive, got {self.axe_cores}")
        if self.local_bw_per_chip <= 0 or self.remote_latency_s <= 0:
            raise ConfigurationError("bandwidth and latency must be positive")

    @property
    def name(self) -> str:
        return f"{self.constraint}.{self.coupling}"


_PCIE_HOST_BW = 16 * GB
_FPGA_DRAM_BW = 102.4 * GB
_OUTPUT_BW = {
    OutputPath.PCIE_P2P: 16 * GB,
    OutputPath.FAST_LINK: 300 * GB,
}


def _arch(
    constraint: str,
    coupling: str,
    remote_path: RemotePath,
    local_dram: bool,
    remote_latency_s: float,
    axe_cores: int,
) -> FaasArchitecture:
    if coupling == "decp":
        output = OutputPath.NIC
    elif constraint == "mem-opt":
        output = OutputPath.FAST_LINK
    else:
        output = OutputPath.PCIE_P2P
    return FaasArchitecture(
        constraint=constraint,
        coupling=coupling,
        remote_path=remote_path,
        output_path=output,
        local_bw_per_chip=_FPGA_DRAM_BW if local_dram else _PCIE_HOST_BW,
        graph_in_fpga_dram=local_dram,
        remote_latency_s=remote_latency_s,
        axe_cores=axe_cores,
    )


#: Table 8, all eight rows. Core counts follow Sections 6.2-6.5:
#: 3 for base, 2 for cost-opt/comm-opt/mem-opt.decp, 10 for mem-opt.tc.
EIGHT_ARCHITECTURES: Tuple[FaasArchitecture, ...] = (
    _arch("base", "tc", RemotePath.NIC, False, 30 * US, 3),
    _arch("base", "decp", RemotePath.NIC, False, 30 * US, 3),
    _arch("cost-opt", "tc", RemotePath.NIC, False, 10 * US, 2),
    _arch("cost-opt", "decp", RemotePath.NIC, False, 10 * US, 2),
    _arch("comm-opt", "tc", RemotePath.MOF, False, 1.2 * US, 2),
    _arch("comm-opt", "decp", RemotePath.MOF, False, 1.2 * US, 2),
    _arch("mem-opt", "tc", RemotePath.MOF, True, 1.2 * US, 10),
    _arch("mem-opt", "decp", RemotePath.MOF, True, 1.2 * US, 2),
)

_BY_NAME: Dict[str, FaasArchitecture] = {a.name: a for a in EIGHT_ARCHITECTURES}


def get_architecture(name: str) -> FaasArchitecture:
    """Look up an architecture by ``constraint.coupling`` name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown architecture {name!r}; expected one of {sorted(_BY_NAME)}"
        ) from None


def output_bandwidth_per_chip(arch: FaasArchitecture) -> float:
    """Output-path bandwidth per chip for in-server paths.

    Decoupled architectures route output over the (shared, quota-bound)
    instance NIC, which the DSE accounts separately.
    """
    if arch.output_path is OutputPath.NIC:
        raise ConfigurationError(
            f"{arch.name} outputs over the NIC; use the instance quota"
        )
    return _OUTPUT_BW[arch.output_path]
