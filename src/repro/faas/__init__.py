"""FaaS design-space exploration: the eight Table 8 architectures."""

from repro.faas.arch import (
    EIGHT_ARCHITECTURES,
    FaasArchitecture,
    get_architecture,
)
from repro.faas.dse import CpuBaselineResult, FaasDse, FaasResult
from repro.faas.report import (
    format_perf_table,
    format_perf_per_dollar_table,
    format_min_cost_table,
    geomean,
)

__all__ = [
    "EIGHT_ARCHITECTURES",
    "FaasArchitecture",
    "get_architecture",
    "CpuBaselineResult",
    "FaasDse",
    "FaasResult",
    "format_perf_table",
    "format_perf_per_dollar_table",
    "format_min_cost_table",
    "geomean",
]
