"""FaaS design-space exploration driver (Figures 17-21).

Evaluates every (architecture, instance size, dataset) point with the
analytical throughput model and the fitted cost model:

* Per-instance sampling throughput is the minimum over the local-memory
  path, the remote path (NIC quota or MoF quota), the result-output
  path, and the engine's pipeline rate. The cluster is symmetric, so
  each instance's local memory also *serves* the rest of the fleet —
  the local path carries the full fetch volume per sampled root.
* Performance per dollar divides throughput by the instance price plus
  the GPU capacity the output throughput requires (Limitation-2 rule).
* The CPU baseline runs the same workload on the instance's 2 vCPUs
  with the software stack cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.cost.instances import (
    FAAS_CONFIGS,
    FaasInstanceConfig,
    gpu_cost_for_throughput,
)
from repro.cost.regression import CostModel, fit_cost_model
from repro.faas.arch import (
    EIGHT_ARCHITECTURES,
    FaasArchitecture,
    OutputPath,
    RemotePath,
    output_bandwidth_per_chip,
)
from repro.framework.cpu_model import CpuSamplingModel, WorkloadShape
from repro.graph.datasets import DATASET_ORDER, get_dataset
from repro.memstore.layout import FootprintModel
from repro.perfmodel.analytical import HardwareWorkload
from repro.units import GB


@dataclass(frozen=True)
class FaasResult:
    """One (architecture, size, dataset) evaluation."""

    arch: str
    size: str
    dataset: str
    roots_per_second: float  # per instance
    bottleneck: str
    num_instances: int
    instance_price: float
    gpu_price: float
    perf_per_dollar: float  # roots/s per $/hour
    vcpu_equivalent: float  # per FPGA chip

    @property
    def total_price(self) -> float:
        return self.instance_price + self.gpu_price


@dataclass(frozen=True)
class CpuBaselineResult:
    """The CPU-only baseline at one (size, dataset) point."""

    size: str
    dataset: str
    roots_per_second: float  # per instance (2 vCPUs)
    num_instances: int
    instance_price: float
    gpu_price: float
    perf_per_dollar: float

    @property
    def total_price(self) -> float:
        return self.instance_price + self.gpu_price


class FaasDse:
    """The design-space exploration engine."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        cpu_model: Optional[CpuSamplingModel] = None,
        footprint: Optional[FootprintModel] = None,
        frequency_hz: float = 250e6,
        gpus_per_12gbps: float = 1.0,
        nic_efficiency: float = 1.0,
        mof_efficiency: float = 0.60,
        pcie_local_efficiency: float = 0.50,
        dram_local_efficiency: float = 0.40,
        cpu_mem_gb_per_vcpu: float = 5.0,
    ) -> None:
        self.cost_model = cost_model or fit_cost_model()
        self.cpu_model = cpu_model or CpuSamplingModel()
        self.footprint = footprint or FootprintModel()
        self.frequency_hz = frequency_hz
        self.gpus_per_12gbps = gpus_per_12gbps
        #: Goodput fractions of the nominal path bandwidths: the NIC
        #: quota is already enforced on goodput (1.0), MoF pays its
        #: (small) framing, the PCIe host path pays DMA setup and host
        #: DRAM contention on random reads, and FPGA DRAM pays
        #: row-activation overheads on irregular rows.
        self.nic_efficiency = nic_efficiency
        self.mof_efficiency = mof_efficiency
        self.pcie_local_efficiency = pcie_local_efficiency
        self.dram_local_efficiency = dram_local_efficiency
        #: CPU-baseline instances use a general-purpose ~1:5 vCPU:GB
        #: shape, so a 384GB CPU instance brings ~76 sampling vCPUs
        #: (unlike FaaS instances, whose 2 vCPUs only feed the FPGA).
        self.cpu_mem_gb_per_vcpu = cpu_mem_gb_per_vcpu
        #: FPGA local DRAM per chip in mem-opt (the PoC card's 512GB).
        self.fpga_dram_bytes = 512 * GB

    # -------------------------------------------------------- sizing
    def num_instances(
        self, arch: Optional[FaasArchitecture], size: FaasInstanceConfig, dataset: str
    ) -> int:
        """Instances needed to hold the graph shards.

        ``arch=None`` means the CPU baseline (host DRAM). mem-opt keeps
        shards in FPGA local DRAM, whose capacity replaces the host
        quota.
        """
        spec = get_dataset(dataset)
        if arch is not None and arch.graph_in_fpga_dram:
            capacity = self.fpga_dram_bytes * size.fpga_chips
        else:
            capacity = size.mem_bytes
        # A distributed deployment needs at least two instances —
        # hyperscale graphs never fit one box.
        return max(2, self.footprint.min_instances(spec, capacity))

    # ---------------------------------------------------- throughput
    def instance_throughput(
        self, arch: FaasArchitecture, size: FaasInstanceConfig, dataset: str
    ) -> Dict[str, float]:
        """Per-instance throughput bounds (roots/s); min is achieved."""
        spec = get_dataset(dataset)
        workload = HardwareWorkload.from_spec(spec)
        fetch = workload.fetch_bytes_per_root
        out = workload.output_bytes_per_root
        instances = self.num_instances(arch, size, dataset)
        remote_fraction = 1.0 - 1.0 / instances

        bounds: Dict[str, float] = {}
        # Local memory serves the symmetric fleet: full fetch per root.
        local_efficiency = (
            self.dram_local_efficiency
            if arch.graph_in_fpga_dram
            else self.pcie_local_efficiency
        )
        local_bw = arch.local_bw_per_chip * size.fpga_chips * local_efficiency
        bounds["local_mem"] = local_bw / fetch
        # Remote path: NIC quota or MoF quota; decoupled output rides
        # the NIC too.
        nic_bw = size.nic_bandwidth * self.nic_efficiency
        if arch.remote_path is RemotePath.MOF:
            remote_bytes = fetch * remote_fraction
            mof_bw = size.mof_bandwidth * self.mof_efficiency
            bounds["remote_mof"] = mof_bw / remote_bytes
            if arch.output_path is OutputPath.NIC:
                bounds["output_nic"] = nic_bw / out
        else:
            nic_bytes = fetch * remote_fraction
            if arch.output_path is OutputPath.NIC:
                nic_bytes += out
            bounds["remote_nic"] = nic_bw / nic_bytes
        if arch.output_path is not OutputPath.NIC:
            bounds["output"] = (
                output_bandwidth_per_chip(arch) * size.fpga_chips / out
            )
        # Engine pipeline rate (streaming sampler, Eq. 3-sized cores).
        cycles = workload.sampling_cycles_per_root()
        bounds["engine"] = (
            arch.axe_cores * size.fpga_chips * self.frequency_hz / cycles
        )
        return bounds

    # ----------------------------------------------------- evaluation
    def evaluate(
        self, arch: FaasArchitecture, size_name: str, dataset: str
    ) -> FaasResult:
        """Evaluate one DSE point."""
        size = _get_size(size_name)
        spec = get_dataset(dataset)
        workload = HardwareWorkload.from_spec(spec)
        bounds = self.instance_throughput(arch, size, dataset)
        bottleneck = min(bounds, key=bounds.get)
        roots = bounds[bottleneck]
        instances = self.num_instances(arch, size, dataset)

        instance_price = self.cost_model.price(
            size.vcpus, size.mem_bytes / GB, fpgas=size.fpga_chips
        )
        output_bw = roots * workload.output_bytes_per_root
        gpu_price = gpu_cost_for_throughput(
            self.cost_model, output_bw, self.gpus_per_12gbps
        )
        vcpu_rate = self.reference_vcpu_rate(dataset)
        return FaasResult(
            arch=arch.name,
            size=size.name,
            dataset=dataset,
            roots_per_second=roots,
            bottleneck=bottleneck,
            num_instances=instances,
            instance_price=instance_price,
            gpu_price=gpu_price,
            perf_per_dollar=roots / (instance_price + gpu_price),
            vcpu_equivalent=roots / size.fpga_chips / vcpu_rate,
        )

    def _cpu_roots_per_vcpu(self, size: FaasInstanceConfig, dataset: str) -> float:
        spec = get_dataset(dataset)
        shape = WorkloadShape.from_spec(spec)
        instances = self.num_instances(None, size, dataset)
        return self.cpu_model.roots_per_second(shape, instances)

    def reference_vcpu_rate(self, dataset: str) -> float:
        """The Figure 14 vCPU normalization unit: one vCPU's sampling
        rate on the physical-server deployment (min_servers), so FaaS
        equivalences are in the same units as the PoC's 894x."""
        spec = get_dataset(dataset)
        shape = WorkloadShape.from_spec(spec)
        servers = max(1, self.footprint.min_servers(spec))
        return self.cpu_model.roots_per_second(shape, servers)

    def cpu_vcpus(self, size: FaasInstanceConfig) -> int:
        """Sampling vCPUs of the CPU-baseline instance at this size."""
        return max(size.vcpus, int(size.mem_bytes / GB / self.cpu_mem_gb_per_vcpu))

    def cpu_baseline(self, size_name: str, dataset: str) -> CpuBaselineResult:
        """The CPU-only deployment at the same instance size."""
        size = _get_size(size_name)
        spec = get_dataset(dataset)
        workload = HardwareWorkload.from_spec(spec)
        per_vcpu = self._cpu_roots_per_vcpu(size, dataset)
        vcpus = self.cpu_vcpus(size)
        roots = per_vcpu * vcpus
        instances = self.num_instances(None, size, dataset)
        instance_price = self.cost_model.price(vcpus, size.mem_bytes / GB)
        output_bw = roots * workload.output_bytes_per_root
        gpu_price = gpu_cost_for_throughput(
            self.cost_model, output_bw, self.gpus_per_12gbps
        )
        return CpuBaselineResult(
            size=size.name,
            dataset=dataset,
            roots_per_second=roots,
            num_instances=instances,
            instance_price=instance_price,
            gpu_price=gpu_price,
            perf_per_dollar=roots / (instance_price + gpu_price),
        )

    # ------------------------------------------------------- sweeps
    def evaluate_all(
        self,
        architectures: Sequence[FaasArchitecture] = EIGHT_ARCHITECTURES,
        sizes: Sequence[str] = ("small", "medium", "large"),
        datasets: Sequence[str] = DATASET_ORDER,
    ) -> List[FaasResult]:
        """Figures 17/18: the full (arch x size x dataset) sweep."""
        return [
            self.evaluate(arch, size, dataset)
            for arch in architectures
            for size in sizes
            for dataset in datasets
        ]

    def cpu_baseline_all(
        self,
        sizes: Sequence[str] = ("small", "medium", "large"),
        datasets: Sequence[str] = DATASET_ORDER,
    ) -> List[CpuBaselineResult]:
        return [
            self.cpu_baseline(size, dataset) for size in sizes for dataset in datasets
        ]

    def min_service_cost(
        self, dataset: str, size_name: str, faas: bool
    ) -> float:
        """Figure 20: minimal $/hour to host the graph and run sampling.

        The minimal CPU fleet uses memory-optimized instances (1:8
        vCPU:GB) — users who "do not care about performance at all" buy
        memory, not cores.
        """
        size = _get_size(size_name)
        if faas:
            arch = EIGHT_ARCHITECTURES[1]  # base.decp
            instances = self.num_instances(arch, size, dataset)
            price = self.cost_model.price(
                size.vcpus, size.mem_bytes / GB, fpgas=size.fpga_chips
            )
        else:
            instances = self.num_instances(None, size, dataset)
            hosting_vcpus = max(size.vcpus, int(size.mem_bytes / GB / 8))
            price = self.cost_model.price(hosting_vcpus, size.mem_bytes / GB)
        return instances * price


def _get_size(size_name: str) -> FaasInstanceConfig:
    try:
        return FAAS_CONFIGS[size_name]
    except KeyError:
        raise ConfigurationError(
            f"unknown instance size {size_name!r}; expected one of "
            f"{sorted(FAAS_CONFIGS)}"
        ) from None
