"""User-facing programming interface (the Section 5 software stack).

The paper exposes "various levels of programming interface": (1) ISA
level (RISC-V/QRCH — :mod:`repro.riscv`), (2) accelerator operator
level (CSR access), (3) GNN operator level (n-hop sampling, attribute
reads, negative sampling), and (4) fixed model APIs (graphSAGE),
all integrated behind the framework interface. :class:`GnnSession`
bundles levels 2-4 over one graph, dispatching to the software sampler
or the AxE hardware model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.axe.commands import Command, CommandKind, sample_command
from repro.axe.engine import AxeEngine, EngineConfig
from repro.framework.cache import HotNodeCache
from repro.framework.requests import (
    NegativeSampleRequest,
    SampleRequest,
    SampleResult,
)
from repro.framework.sampler import MultiHopSampler
from repro.framework.selectors import get_selector
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph
from repro.graph.partition import HashPartitioner
from repro.gnn.models import GraphSageEncoder
from repro.gnn.pipeline import PipelinedTrainer, TrainReport
from repro.gnn.train import Trainer
from repro.memstore.faults import ReliableReadPath
from repro.memstore.ingest import DynamicPartitionedStore, Mutation, growth_trace
from repro.memstore.locality import build_locality_layout
from repro.memstore.store import PartitionedStore
from repro.parallel.engine import ParallelSampler
from repro.serving.backends import HardwareBackend, SoftwareBackend
from repro.serving.gateway import GatewayConfig, serve_workload
from repro.serving.metrics import ServingReport
from repro.serving.workload import TenantSpec, default_tenants

if TYPE_CHECKING:
    from repro.cluster.report import ClusterReport
    from repro.cluster.sim import ClusterConfig
    from repro.cluster.trace import TraceConfig


class GnnSession:
    """One graph, every programming level above the ISA.

    Parameters
    ----------
    graph:
        The graph to serve.
    num_partitions:
        Logical shards (servers/FPGA nodes).
    engine_config:
        AxE configuration for the hardware path; ``None`` uses the PoC
        defaults with ``num_partitions`` FPGA nodes.
    sampling_method:
        "uniform" (software default) or "streaming" (the hardware's
        step-based method).
    cache_nodes:
        Optional hot-node cache capacity for the software path.
    reliability:
        Optional fault-tolerant remote-read path
        (:class:`~repro.memstore.faults.ReliableReadPath`) threaded
        into the store. When set, the software sampler runs with
        degraded completion enabled so a dead shard costs data quality
        (self-loop / zero-row fallbacks), not the run.
    batched:
        Run the software sampler's vectorized fast path (per-hop
        frontier dedup + batch store calls). Same access accounting,
        statistically equivalent samples, large constant-factor
        speedup; see ``repro bench-sampler``.
    workers:
        Shard worker processes for the parallel execution engine
        (:class:`~repro.parallel.ParallelSampler`). ``0`` (the
        default) keeps the single-process sampler. Any ``workers >= 1``
        replaces the software sampler with the sharded engine —
        results and access accounting are bit-identical at every
        worker count, including the in-process reference. Parallel
        mode always runs batched and is incompatible with
        ``cache_nodes`` and ``reliability`` (shard workers run the
        zero-fault fast path). Call :meth:`close` (or use the session
        as a context manager) to shut the pool down.
    layout:
        Locality-preserving physical layout for the store: ``"ldg"``,
        ``"hash"``, or ``"range"`` (see
        :func:`~repro.memstore.locality.build_locality_layout`). The
        graph is renumbered partition-block-contiguous with hot
        high-degree nodes front-loaded, and the sampler transparently
        remaps IDs, so callers keep speaking original IDs. ``None``
        (the default) keeps the historical hash layout bit-for-bit.
        Incompatible with a ``DynamicGraph`` (the renumbering permutes
        an immutable CSR) and with ``workers > 0`` (shard workers
        attach the shared graph plane in original ID space).
    kernels:
        Kernel tier for the batched sampler's array primitives:
        ``"numpy"`` (reference, default), ``"compiled"`` (numba;
        raises when unavailable), or ``"auto"``. All tiers are
        bit-identical — the NumPy fallback is mandatory and the
        compiled tier changes wall clock only. ``None`` keeps the
        reference tier. Incompatible with ``workers > 0`` (shard
        workers run their own fixed NumPy path).
    """

    def __init__(
        self,
        graph: Union[CSRGraph, DynamicGraph],
        num_partitions: int = 4,
        engine_config: Optional[EngineConfig] = None,
        sampling_method: str = "uniform",
        cache_nodes: int = 0,
        seed: int = 0,
        reliability: Optional["ReliableReadPath"] = None,
        batched: bool = False,
        workers: int = 0,
        layout: Optional[str] = None,
        kernels: Optional[str] = None,
    ) -> None:
        if cache_nodes < 0:
            raise ConfigurationError(
                f"cache_nodes must be non-negative, got {cache_nodes}"
            )
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        if workers > 0 and layout is not None:
            raise ConfigurationError(
                "layout and workers are mutually exclusive; shard workers "
                "attach the shared graph plane in original ID space"
            )
        if workers > 0 and kernels is not None:
            raise ConfigurationError(
                "kernels and workers are mutually exclusive; shard workers "
                "run their own fixed NumPy path"
            )
        self.graph = graph
        self.layout = layout
        #: ID bijection when a locality layout is active, else ``None``.
        self.relabeling = None
        #: The mutable graph when the session is dynamic, else ``None``.
        self.dynamic: Optional[DynamicGraph] = (
            graph if isinstance(graph, DynamicGraph) else None
        )
        if self.dynamic is not None:
            if layout is not None:
                raise ConfigurationError(
                    "layout and a DynamicGraph are mutually exclusive; the "
                    "locality renumbering permutes an immutable CSR"
                )
            if workers > 0:
                raise ConfigurationError(
                    "workers and a DynamicGraph are mutually exclusive; shard "
                    "workers attach an immutable shared-memory graph plane"
                )
            if reliability is not None:
                raise ConfigurationError(
                    "reliability and a DynamicGraph are mutually exclusive; "
                    "the replicated read path serves immutable shards"
                )
            self.store: PartitionedStore = DynamicPartitionedStore(
                self.dynamic, HashPartitioner(num_partitions)
            )
        elif layout is not None:
            built = build_locality_layout(graph, num_partitions, method=layout)
            self.store = PartitionedStore(
                built.graph, built.partitioner, reliability=reliability
            )
            self.relabeling = built.relabeling
        else:
            self.store = PartitionedStore(
                graph, HashPartitioner(num_partitions), reliability=reliability
            )
        self.workers = workers
        if workers > 0:
            if cache_nodes:
                raise ConfigurationError(
                    "workers and cache_nodes are mutually exclusive; the "
                    "parallel engine accounts shard accesses without a cache"
                )
            self.sampler = ParallelSampler(
                self.store,
                workers=workers,
                seed=seed,
                sampling_method=sampling_method,
            )
        else:
            cache = HotNodeCache(cache_nodes) if cache_nodes else None
            if cache is not None and self.dynamic is not None:
                # Mutated nodes must drop out of the cache, or samples
                # pinned to a fresh epoch would read pre-mutation data.
                self.store.register_cache(cache)
            self.sampler = MultiHopSampler(
                self.store,
                seed=seed,
                cache=cache,
                selector=get_selector(sampling_method),
                degraded_ok=reliability is not None,
                batched=batched,
                kernels=kernels,
                relabeling=self.relabeling,
            )
        if engine_config is None:
            engine_config = EngineConfig(
                num_cores=2,
                num_fpga_nodes=max(1, num_partitions),
                seed=seed,
            )
        # The AxE model operates on an immutable CSR; for a dynamic
        # session it sees the base snapshot taken at construction and
        # is excluded from serve() unless explicitly requested.
        engine_graph = graph.base if self.dynamic is not None else graph
        self.engine = AxeEngine(engine_graph, engine_config)
        self._seed = seed
        self._sampling_method = sampling_method

    # -------------------------------------------------------- mutation level
    def mutate(self, mutations: Sequence[Mutation]) -> int:
        """Apply a batch of online mutations (dynamic sessions only).

        Returns the number applied. Concurrent with reads: an in-flight
        ``sample()`` keeps its pinned epoch; the next sample observes
        the new one.
        """
        if self.dynamic is None:
            raise ConfigurationError(
                "mutate() requires a session built over a DynamicGraph"
            )
        return self.store.apply(mutations)

    # --------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release session resources (shard workers, plane, arenas)."""
        closer = getattr(self.sampler, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "GnnSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------ accelerator operator level
    def set_csr(self, index: int, value: int) -> None:
        """Write an accelerator control/status register."""
        self.engine.run(
            Command(kind=CommandKind.SET_CSR, csr_index=index, csr_value=value)
        )

    def read_csr(self, index: int) -> int:
        """Read an accelerator control/status register."""
        value, _stats = self.engine.run(
            Command(kind=CommandKind.READ_CSR, csr_index=index)
        )
        return value

    # -------------------------------------------------- GNN operator level
    def sample(
        self,
        roots: np.ndarray,
        fanouts: Tuple[int, ...],
        with_attributes: bool = True,
    ) -> SampleResult:
        """Software n-hop sampling (the AliGraph path)."""
        request = SampleRequest(
            roots=np.asarray(roots, dtype=np.int64),
            fanouts=tuple(fanouts),
            with_attributes=with_attributes,
        )
        return self.sampler.sample(request)

    def sample_hw(
        self,
        roots: np.ndarray,
        fanouts: Tuple[int, ...],
        method: str = "streaming",
    ):
        """Hardware n-hop sampling on the AxE model.

        Returns ``(per_root_layers, EngineStats)``.
        """
        return self.engine.run(
            sample_command(
                np.asarray(roots, dtype=np.int64), tuple(fanouts), method=method
            )
        )

    def read_node_attributes(self, nodes: np.ndarray) -> np.ndarray:
        """Hardware attribute gather (Table 4's read node attribute)."""
        values, _stats = self.engine.run(
            Command(
                kind=CommandKind.READ_NODE_ATTRIBUTE,
                nodes=np.asarray(nodes, dtype=np.int64),
            )
        )
        return values

    def negative_sample(self, pairs: np.ndarray, rate: int) -> np.ndarray:
        """Software negative sampling (non-neighbors per pair)."""
        request = NegativeSampleRequest(
            pairs=np.asarray(pairs, dtype=np.int64), rate=rate
        )
        return self.sampler.negative_sample(request)

    # ------------------------------------------------------- serving level
    def serve(
        self,
        tenants: Optional[Sequence[TenantSpec]] = None,
        duration_s: float = 0.5,
        config: Optional[GatewayConfig] = None,
        functional: bool = True,
        include_hardware: Optional[bool] = None,
        fail_hardware_at_s: Optional[float] = None,
        seed: Optional[int] = None,
        mutations: Optional[Sequence[Mutation]] = None,
        mutation_rate: float = 0.0,
    ) -> ServingReport:
        """Serve an open-loop multi-tenant workload over this session.

        Wraps this session's software sampler and AxE engine as serving
        backends (hardware preferred, software as fallback/overflow)
        behind the admission-controlled gateway, generates the tenants'
        Poisson arrival streams, and replays them to completion.

        Parameters
        ----------
        tenants:
            Traffic sources; ``None`` uses the three default tenants.
        duration_s:
            Arrival window in virtual seconds (the run drains fully).
        functional:
            Execute real sampling per micro-batch; ``False`` is
            timing-only (calibrated models) for load studies.
        include_hardware:
            Also offer the AxE engine as the preferred backend.
            ``None`` (the default) resolves to ``True`` for static
            sessions and ``False`` for dynamic ones (the AxE model
            serves an immutable CSR and would answer from a stale
            snapshot); passing ``True`` on a dynamic session is an
            error for the same reason.
        fail_hardware_at_s:
            Fault-injection hook: kill the hardware backend this far
            into the run to exercise graceful degradation.
        mutations:
            Explicit mutation timeline (dynamic sessions only); each
            :class:`~repro.memstore.ingest.Mutation` is applied to the
            store at its ``time_s`` on the gateway's virtual clock,
            interleaved with the read traffic.
        mutation_rate:
            Convenience generator: this many mutations per virtual
            second, drawn as a deterministic preferential-attachment
            trace (:func:`~repro.memstore.ingest.growth_trace`) spread
            over ``duration_s``. Combines with ``mutations``.
        """
        if tenants is None:
            tenants = default_tenants(duration_s)
        if mutation_rate < 0:
            raise ConfigurationError(
                f"mutation_rate must be non-negative, got {mutation_rate}"
            )
        if (mutations or mutation_rate) and self.dynamic is None:
            raise ConfigurationError(
                "mutations require a session built over a DynamicGraph"
            )
        if include_hardware is None:
            include_hardware = self.dynamic is None
        elif include_hardware and self.dynamic is not None:
            raise ConfigurationError(
                "include_hardware=True is incompatible with a DynamicGraph "
                "session: the AxE model serves an immutable base snapshot"
            )
        software = SoftwareBackend(self.sampler, functional=functional)
        backends = [software]
        fail_backend_at: Optional[Dict[str, float]] = None
        if include_hardware:
            hardware = HardwareBackend(self.engine, functional=functional)
            backends = [hardware, software]
            if fail_hardware_at_s is not None:
                fail_backend_at = {hardware.name: fail_hardware_at_s}
        elif fail_hardware_at_s is not None:
            raise ConfigurationError(
                "fail_hardware_at_s requires include_hardware=True"
            )
        timeline: List[Mutation] = list(mutations or ())
        if mutation_rate:
            timeline.extend(
                growth_trace(
                    self.graph.num_nodes,
                    int(round(mutation_rate * duration_s)),
                    duration_s=duration_s,
                    seed=(self._seed if seed is None else seed) + 1,
                )
            )
        events: Optional[List[Tuple[float, Callable[[], None]]]] = None
        if timeline:
            timeline.sort(key=lambda m: m.time_s)
            events = [
                (m.time_s, (lambda mut=m: self.store.apply([mut])))
                for m in timeline
            ]
        mutations_before = (
            self.store.ingest_stats.mutations if self.dynamic is not None else 0
        )
        report = serve_workload(
            backends,
            tenants,
            duration_s=duration_s,
            num_nodes=self.graph.num_nodes,
            seed=self._seed if seed is None else seed,
            config=config,
            fail_backend_at=fail_backend_at,
            events=events,
        )
        if self.dynamic is not None:
            report.mutations_applied = (
                self.store.ingest_stats.mutations - mutations_before
            )
        return report

    def serve_cluster(
        self,
        trace: Optional["TraceConfig"] = None,
        config: Optional["ClusterConfig"] = None,
        duration_s: float = 2.0,
        users: int = 100_000,
        functional: bool = True,
    ) -> "ClusterReport":
        """Run the multi-replica cluster with session-backed replicas.

        Every replica's gateway dispatches onto *this* session's
        sampler (the sharded parallel engine when the session was built
        with ``workers=k``), so micro-batches really sample the graph
        instead of charging the flavors' analytical service model.
        Root ids in the trace are clamped to this session's graph.
        """
        from dataclasses import replace

        from repro.cluster import (
            ClusterConfig,
            ClusterSim,
            flash_crowd_day,
            session_backends,
        )

        if trace is None:
            trace = flash_crowd_day(duration_s=duration_s, users=users)
        if trace.num_nodes > self.graph.num_nodes:
            trace = replace(trace, num_nodes=self.graph.num_nodes)
        if config is None:
            config = ClusterConfig()
        factory = session_backends(self, functional=functional)
        return ClusterSim(
            trace,
            config=config,
            backend_factories={arch: factory for arch in config.archs},
        ).run()

    # ------------------------------------------------------ fixed model API
    def graphsage(
        self,
        hidden_dim: int,
        fanouts: Tuple[int, ...],
        num_labels: int,
        aggregator: str = "max",
        lr: float = 1.0,
    ) -> Trainer:
        """A ready-to-train graphSAGE classifier over this session.

        The frequently-used fixed-model API of Section 5: wires the
        session's sampler to an encoder and a classification head.
        """
        if self.graph.attr_len == 0:
            raise ConfigurationError(
                "graphsage needs node attributes; this graph has none"
            )
        encoder = GraphSageEncoder(
            self.graph.attr_len,
            hidden_dim,
            tuple(fanouts),
            aggregator=aggregator,
            seed=self._seed,
        )
        return Trainer(
            self.sampler, encoder, num_labels=num_labels, lr=lr, seed=self._seed
        )

    def train(
        self,
        labels: np.ndarray,
        fanouts: Tuple[int, ...],
        roots: Optional[np.ndarray] = None,
        epochs: int = 1,
        embedding_dim: int = 16,
        hidden_dim: int = 16,
        lr: float = 0.05,
        batch_size: int = 32,
        pipeline_depth: int = 2,
        cached_epochs: int = 0,
        sampling_method: Optional[str] = None,
    ) -> TrainReport:
        """Pipelined supervised training over this session's graph.

        Builds a :class:`~repro.gnn.pipeline.PipelinedTrainer` — shard
        workers hop-sample micro-batch *k+1* while the coordinator runs
        micro-batch *k*'s forward/backward against a sharded embedding
        table — runs ``epochs`` passes, and returns its
        :class:`~repro.gnn.pipeline.TrainReport`. Losses and final
        weights are bit-identical at every session ``workers`` count.

        ``roots`` defaults to every node; ``cached_epochs >= 1``
        enables the multi-hop :class:`~repro.gnn.pipeline.
        NeighborhoodCache` for repeated-epoch training. Requires a
        static session (shard workers attach an immutable graph plane)
        without a locality layout (the trainer speaks store IDs).
        """
        if self.dynamic is not None:
            raise ConfigurationError(
                "train() requires a static graph session; shard workers "
                "attach an immutable shared-memory graph plane"
            )
        if self.relabeling is not None:
            raise ConfigurationError(
                "train() is incompatible with a locality layout; the "
                "pipelined trainer addresses embeddings by store ID"
            )
        if roots is None:
            roots = np.arange(self.graph.num_nodes, dtype=np.int64)
        with PipelinedTrainer(
            self.store,
            labels,
            fanouts,
            embedding_dim=embedding_dim,
            hidden_dim=hidden_dim,
            lr=lr,
            seed=self._seed,
            workers=self.workers,
            pipeline_depth=pipeline_depth,
            batch_size=batch_size,
            sampling_method=(
                self._sampling_method
                if sampling_method is None
                else sampling_method
            ),
            cached_epochs=cached_epochs,
        ) as trainer:
            return trainer.train(roots, epochs=epochs)
