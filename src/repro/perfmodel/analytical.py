"""The in-house analytical performance model (§7.2).

Predicts GNN sampling throughput for an architecture point from closed
form: the engine's pipeline rate, each memory path's achievable
bandwidth (wire efficiency x concurrency limit, Equation 3), and the
result-output path. The minimum over those bounds is the prediction;
Figure 15 validates it against the event-driven PoC simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.graph.datasets import SAMPLING_CONFIG, DatasetSpec
from repro.memstore.links import LinkModel


@dataclass(frozen=True)
class HardwareWorkload:
    """Per-root request profile as the AxE hardware issues it.

    Unlike :class:`~repro.framework.cpu_model.WorkloadShape` (which
    counts the software store's logical accesses), this profile counts
    the hardware's actual memory requests: offset reads, coalesced
    64B-line ID reads, and attribute-row bursts.
    """

    name: str
    neighbor_ops: int
    attr_nodes: int
    avg_degree: float
    attr_row_bytes: int
    offset_read_bytes: int = 32
    line_bytes: int = 64
    id_bytes: int = 8
    fetch_attributes: bool = True

    @classmethod
    def from_spec(
        cls,
        spec: DatasetSpec,
        fanouts: Tuple[int, ...] = SAMPLING_CONFIG["fanouts"],
        fetch_attributes: bool = True,
    ) -> "HardwareWorkload":
        if not fanouts:
            raise ConfigurationError("fanouts must contain at least one hop")
        neighbor_ops = 1
        width = 1
        total = 1
        for fanout in fanouts[:-1]:
            width *= fanout
            neighbor_ops += width
            total += width
        total += width * fanouts[-1]
        return cls(
            name=spec.name,
            neighbor_ops=neighbor_ops,
            attr_nodes=total,
            avg_degree=spec.avg_degree,
            attr_row_bytes=spec.attr_len * 4,
            fetch_attributes=fetch_attributes,
        )

    def lines_per_list(self) -> float:
        """Average 64B line reads per neighbor list."""
        if self.avg_degree <= 0:
            return 0.0
        return max(1.0, self.avg_degree * self.id_bytes / self.line_bytes)

    def requests_per_root(self) -> List[Tuple[float, float]]:
        """(request_bytes, count) pairs per root sample."""
        requests = [
            (float(self.offset_read_bytes), float(self.neighbor_ops)),
            (float(self.line_bytes), self.neighbor_ops * self.lines_per_list()),
        ]
        if self.fetch_attributes and self.attr_row_bytes > 0:
            requests.append((float(self.attr_row_bytes), float(self.attr_nodes)))
        return requests

    @property
    def fetch_bytes_per_root(self) -> float:
        return sum(size * count for size, count in self.requests_per_root())

    @property
    def requests_count_per_root(self) -> float:
        return sum(count for _size, count in self.requests_per_root())

    @property
    def mean_request_bytes(self) -> float:
        return self.fetch_bytes_per_root / self.requests_count_per_root

    @property
    def output_bytes_per_root(self) -> float:
        """Sampled subgraph shipped out: IDs plus attribute rows."""
        per_node = self.id_bytes + (
            self.attr_row_bytes if self.fetch_attributes else 0
        )
        return float(self.attr_nodes * per_node)

    def sampling_cycles_per_root(
        self, fanouts: Optional[Tuple[int, ...]] = None
    ) -> float:
        """Streaming-sampler pipeline cycles per root (Tech-2: N cycles
        per GetNeighbor, at least K)."""
        per_op = max(self.avg_degree, 10.0)
        return self.neighbor_ops * per_op


@dataclass(frozen=True)
class ArchPoint:
    """One architecture configuration the model evaluates."""

    name: str
    local_link: LinkModel
    num_local_channels: int
    output_link: Optional[LinkModel]
    remote_link: Optional[LinkModel] = None
    #: Fraction of fetched bytes served by the local path.
    local_fraction: float = 1.0
    num_cores: int = 2
    tags_per_core: int = 256
    frequency_hz: float = 250e6

    def __post_init__(self) -> None:
        if not 0.0 <= self.local_fraction <= 1.0:
            raise ConfigurationError(
                f"local_fraction must be in [0, 1], got {self.local_fraction}"
            )
        if self.local_fraction < 1.0 and self.remote_link is None:
            raise ConfigurationError(
                "remote traffic requires a remote link"
            )
        if self.num_cores <= 0 or self.num_local_channels <= 0:
            raise ConfigurationError("core and channel counts must be positive")


@dataclass(frozen=True)
class ThroughputPrediction:
    """Model output: the binding bottleneck and all component bounds."""

    arch: str
    workload: str
    roots_per_second: float
    bottleneck: str
    bounds: Dict[str, float] = field(default_factory=dict)

    def batches_per_second(self, batch_size: int = 512) -> float:
        return self.roots_per_second / batch_size


class AnalyticalModel:
    """Closed-form throughput model over :class:`ArchPoint`s."""

    def _path_bandwidth(
        self,
        link: LinkModel,
        channels: int,
        mean_request: float,
        tags: float,
    ) -> float:
        """Achievable payload bandwidth of one memory path.

        Wire efficiency bounds it at peak x payload/(payload+overhead);
        Equation 3 (Little's law) bounds it at tags x request / latency.
        """
        mean_request = max(1.0, mean_request)
        wire = (
            channels
            * link.peak_bandwidth
            * mean_request
            / (mean_request + link.packet_overhead_bytes)
        )
        concurrency = tags * mean_request / link.latency(int(round(mean_request)))
        return min(wire, concurrency)

    def predict(
        self, arch: ArchPoint, workload: HardwareWorkload
    ) -> ThroughputPrediction:
        """Throughput bound for one (architecture, workload) pair."""
        fetch = workload.fetch_bytes_per_root
        local_bytes = fetch * arch.local_fraction
        remote_bytes = fetch - local_bytes
        mean_request = workload.mean_request_bytes
        total_tags = float(arch.num_cores * arch.tags_per_core)
        # Tags split across paths proportionally to their byte demand.
        local_tags = total_tags * (local_bytes / fetch) if fetch else total_tags
        remote_tags = total_tags - local_tags

        bounds: Dict[str, float] = {}
        if local_bytes > 0:
            local_bw = self._path_bandwidth(
                arch.local_link, arch.num_local_channels, mean_request, local_tags
            )
            bounds["local_mem"] = local_bw / local_bytes
        if remote_bytes > 0:
            remote_bw = self._path_bandwidth(
                arch.remote_link, 1, mean_request, remote_tags
            )
            bounds["remote_mem"] = remote_bw / remote_bytes
        if arch.output_link is not None and workload.output_bytes_per_root > 0:
            out_bytes = workload.output_bytes_per_root
            out_bw = (
                arch.output_link.peak_bandwidth
                * out_bytes
                / (out_bytes + arch.output_link.packet_overhead_bytes)
            )
            bounds["output"] = out_bw / out_bytes
        engine_rate = (
            arch.num_cores
            * arch.frequency_hz
            / workload.sampling_cycles_per_root()
        )
        bounds["engine"] = engine_rate

        bottleneck = min(bounds, key=bounds.get)
        return ThroughputPrediction(
            arch=arch.name,
            workload=workload.name,
            roots_per_second=bounds[bottleneck],
            bottleneck=bottleneck,
            bounds=bounds,
        )


def axe_cores_needed(
    link: LinkModel,
    workload: HardwareWorkload,
    tags_per_core: int = 256,
    target_bandwidth: Optional[float] = None,
) -> int:
    """Equation 3 core sizing: cores whose combined tag files hold
    enough outstanding requests to fill the link."""
    if tags_per_core <= 0:
        raise ConfigurationError(
            f"tags_per_core must be positive, got {tags_per_core}"
        )
    bandwidth = target_bandwidth or link.peak_bandwidth
    mean = workload.mean_request_bytes
    outstanding = bandwidth / mean * link.latency(int(round(mean)))
    return max(1, int(-(-outstanding // tags_per_core)))
