"""Analytical performance model and PoC configuration (§7.2)."""

from repro.perfmodel.analytical import (
    AnalyticalModel,
    ArchPoint,
    HardwareWorkload,
    ThroughputPrediction,
    axe_cores_needed,
)
from repro.perfmodel.poc import (
    POC_SWEEP,
    PocConfigPoint,
    build_poc_engine,
    validate_model,
    poc_vcpu_equivalence,
)

__all__ = [
    "AnalyticalModel",
    "ArchPoint",
    "HardwareWorkload",
    "ThroughputPrediction",
    "axe_cores_needed",
    "POC_SWEEP",
    "PocConfigPoint",
    "build_poc_engine",
    "validate_model",
    "poc_vcpu_equivalence",
]
