"""PoC configuration and model validation (Tables 9/10, Figures 14/15).

The PoC stands in for the paper's 4-card FPGA system: the event-driven
AxE simulation is our "measurement", and :mod:`repro.perfmodel.analytical`
is the analytical model validated against it, exactly as Figure 15
validates the paper's model against the physical PoC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.axe.core import CoreConfig
from repro.axe.engine import AxeEngine, EngineConfig
from repro.axe.commands import sample_command
from repro.framework.cpu_model import CpuSamplingModel, WorkloadShape
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DATASET_ORDER, get_dataset, instantiate_dataset
from repro.memstore.layout import FootprintModel
from repro.memstore.links import get_link
from repro.perfmodel.analytical import (
    AnalyticalModel,
    ArchPoint,
    HardwareWorkload,
)

#: Memory configurations on the Figure 15 x-axis legends.
_MEMORY_CONFIGS = {
    "pcie": ("pcie_host_dram", 1),
    "1-chn": ("local_dram", 1),
    "2-chn": ("local_dram", 2),
    "4-chn": ("local_dram", 4),
}


@dataclass(frozen=True)
class PocConfigPoint:
    """One configuration of the Figure 15 sweep."""

    num_cores: int
    memory: str  # "pcie", "1-chn", "2-chn", "4-chn"
    num_fpga_nodes: int  # 1 or 4

    def __post_init__(self) -> None:
        if self.memory not in _MEMORY_CONFIGS:
            raise ConfigurationError(
                f"unknown memory config {self.memory!r}; expected one of "
                f"{sorted(_MEMORY_CONFIGS)}"
            )
        if self.num_cores <= 0 or self.num_fpga_nodes <= 0:
            raise ConfigurationError("cores and nodes must be positive")

    @property
    def label(self) -> str:
        suffix = f"{self.num_fpga_nodes}n"
        return f"{self.memory}/{suffix}/{self.num_cores}c"


#: The sweep Figure 15 plots: cores x memory x node count.
POC_SWEEP: Tuple[PocConfigPoint, ...] = tuple(
    PocConfigPoint(cores, memory, nodes)
    for memory in ("pcie", "1-chn", "2-chn", "4-chn")
    for nodes in (1, 4)
    for cores in (1, 2, 4)
)


def build_poc_engine(
    graph: CSRGraph,
    point: PocConfigPoint,
    fanouts: Tuple[int, ...] = (10, 10),
    with_output_limit: bool = True,
) -> AxeEngine:
    """Instantiate the event-simulated engine for one sweep point."""
    link_name, channels = _MEMORY_CONFIGS[point.memory]
    config = EngineConfig(
        num_cores=point.num_cores,
        core=CoreConfig(fanouts=fanouts),
        local_link=get_link(link_name),
        num_local_channels=channels,
        remote_link=get_link("mof_fabric") if point.num_fpga_nodes > 1 else None,
        output_link=get_link("pcie_host_dram") if with_output_limit else None,
        num_fpga_nodes=point.num_fpga_nodes,
    )
    return AxeEngine(graph, config)


def analytical_point(
    point: PocConfigPoint,
    with_output_limit: bool = True,
) -> ArchPoint:
    """The matching analytical-model architecture point."""
    link_name, channels = _MEMORY_CONFIGS[point.memory]
    return ArchPoint(
        name=point.label,
        local_link=get_link(link_name),
        num_local_channels=channels,
        output_link=get_link("pcie_host_dram") if with_output_limit else None,
        remote_link=get_link("mof_fabric") if point.num_fpga_nodes > 1 else None,
        local_fraction=1.0 / point.num_fpga_nodes,
        num_cores=point.num_cores,
    )


@dataclass(frozen=True)
class ValidationRow:
    """One Figure 15 point: measured vs modeled throughput."""

    point: PocConfigPoint
    measured_roots_per_s: float
    modeled_roots_per_s: float
    modeled_unbounded_roots_per_s: float
    bottleneck: str

    @property
    def error(self) -> float:
        """Relative model error against the measurement."""
        if self.measured_roots_per_s == 0:
            return float("inf")
        return (
            abs(self.modeled_roots_per_s - self.measured_roots_per_s)
            / self.measured_roots_per_s
        )


def validate_model(
    graph: CSRGraph,
    points: Sequence[PocConfigPoint] = POC_SWEEP,
    batch_size: int = 128,
    fanouts: Tuple[int, ...] = (10, 10),
    seed: int = 0,
) -> List[ValidationRow]:
    """Figure 15: run measurement (event sim) and model on each point."""
    rng = np.random.default_rng(seed)
    model = AnalyticalModel()
    avg_degree = graph.num_edges / graph.num_nodes
    workload = HardwareWorkload(
        name="poc",
        neighbor_ops=1 + int(np.prod(fanouts[:-1])) if len(fanouts) > 1 else 1,
        attr_nodes=_total_nodes(fanouts),
        avg_degree=avg_degree,
        attr_row_bytes=graph.attr_len * 4,
    )
    rows: List[ValidationRow] = []
    for point in points:
        engine = build_poc_engine(graph, point, fanouts=fanouts)
        roots = rng.integers(0, graph.num_nodes, size=batch_size, dtype=np.int64)
        _results, stats = engine.run(sample_command(roots, fanouts))
        predicted = model.predict(analytical_point(point), workload)
        unbounded = model.predict(
            analytical_point(point, with_output_limit=False), workload
        )
        rows.append(
            ValidationRow(
                point=point,
                measured_roots_per_s=stats.roots_per_second,
                modeled_roots_per_s=predicted.roots_per_second,
                modeled_unbounded_roots_per_s=unbounded.roots_per_second,
                bottleneck=predicted.bottleneck,
            )
        )
    return rows


def _total_nodes(fanouts: Tuple[int, ...]) -> int:
    total = 1
    width = 1
    for fanout in fanouts:
        width *= fanout
        total += width
    return total


@dataclass(frozen=True)
class VcpuEquivalenceRow:
    """One Figure 14 bar: a dataset's FPGA-vs-vCPU sampling ratio."""

    dataset: str
    fpga_roots_per_s: float
    vcpu_roots_per_s: float

    @property
    def vcpu_equivalence(self) -> float:
        return self.fpga_roots_per_s / self.vcpu_roots_per_s


def poc_vcpu_equivalence(
    datasets: Sequence[str] = DATASET_ORDER,
    max_nodes: int = 20_000,
    batch_size: int = 128,
    cpu_model: Optional[CpuSamplingModel] = None,
    seed: int = 0,
) -> List[VcpuEquivalenceRow]:
    """Figure 14: per-dataset PoC sampling rate vs the vCPU baseline.

    The PoC point is the Table 10 configuration: dual-core AxE, 4-channel
    DDR4 local memory, MoF remote (4-node sharding), PCIe output.
    """
    cpu_model = cpu_model or CpuSamplingModel()
    footprint = FootprintModel()
    rng = np.random.default_rng(seed)
    point = PocConfigPoint(num_cores=2, memory="4-chn", num_fpga_nodes=4)
    rows: List[VcpuEquivalenceRow] = []
    for name in datasets:
        spec = get_dataset(name)
        graph = instantiate_dataset(name, max_nodes=max_nodes, seed=seed)
        engine = build_poc_engine(graph, point)
        roots = rng.integers(0, graph.num_nodes, size=batch_size, dtype=np.int64)
        _results, stats = engine.run(sample_command(roots, (10, 10)))
        shape = WorkloadShape.from_spec(spec)
        servers = footprint.min_servers(spec)
        vcpu_rate = cpu_model.roots_per_second(shape, max(1, servers))
        rows.append(
            VcpuEquivalenceRow(
                dataset=name,
                fpga_roots_per_s=stats.roots_per_second,
                vcpu_roots_per_s=vcpu_rate,
            )
        )
    return rows


def geomean_equivalence(rows: Sequence[VcpuEquivalenceRow]) -> float:
    """Geometric-mean vCPU equivalence (the paper's 894x headline)."""
    if not rows:
        raise ConfigurationError("rows must not be empty")
    product = 1.0
    for row in rows:
        product *= row.vcpu_equivalence
    return product ** (1.0 / len(rows))
