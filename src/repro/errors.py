"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single type at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class GraphError(ReproError):
    """A graph is malformed or an operation referenced a missing element."""


class PartitionError(ReproError):
    """A partitioning operation failed or referenced a missing partition."""


class ReplicaUnavailableError(PartitionError):
    """No replica of a partition could serve a read before its deadline."""


class ParallelExecutionError(ReproError):
    """A shard worker failed or the parallel execution engine desynced."""


class SimulationError(ReproError):
    """The event-driven simulator reached an inconsistent state."""


class ProtocolError(ReproError):
    """A MoF frame or protocol exchange violated the wire format."""


class DecodeError(ReproError):
    """An instruction, frame, or command could not be decoded."""


class CapacityError(ReproError):
    """A bounded hardware resource (queue, tag file, cache) overflowed."""


class CommandError(ReproError):
    """An AxE command was malformed or unsupported."""
