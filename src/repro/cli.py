"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro footprint          # Figure 2(a)
    python -m repro scaling            # Figure 2(b)
    python -m repro access-mix         # Figure 2(c)
    python -m repro e2e                # Figure 3
    python -m repro poc                # Figure 14
    python -m repro validate           # Figure 15
    python -m repro cost               # Figure 16
    python -m repro dse                # Figures 17-21
    python -m repro sampler            # Tech-2 cycle/resource numbers
    python -m repro bench-sampler      # batched vs reference sampler speedup
    python -m repro layout-bench       # locality layout vs hash baseline
    python -m repro mutate-bench       # sampling throughput vs mutation rate
    python -m repro train-bench        # pipelined sample→train engine
    python -m repro serve              # online SLO-aware serving gateway
    python -m repro faults             # fault-tolerant remote-memory path
    python -m repro lint               # AST-based invariant linter
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.lintcli import add_lint_arguments
from repro.units import MS_PER_S, format_bytes


def _cmd_footprint(_args) -> None:
    from repro.graph.datasets import DATASET_ORDER, get_dataset
    from repro.memstore.layout import FootprintModel

    model = FootprintModel()
    print("dataset  footprint     min_servers")
    for name in DATASET_ORDER:
        row = model.report(get_dataset(name))
        print(f"{name:<8} {format_bytes(row.total_bytes):<12} {row.min_servers}")


def _cmd_scaling(_args) -> None:
    from repro.framework.cluster import ClusterModel
    from repro.framework.cpu_model import CpuSamplingModel, WorkloadShape
    from repro.graph.datasets import DATASET_ORDER, get_dataset

    shapes = [WorkloadShape.from_spec(get_dataset(n)) for n in DATASET_ORDER]
    cluster = ClusterModel(CpuSamplingModel())
    print("servers  speedup  efficiency")
    for point in cluster.average_scaling_curve(shapes, (1, 5, 15)):
        print(f"{point.num_servers:>7}  {point.speedup_vs_one:>7.2f}"
              f"  {point.efficiency:>10.2f}")


def _cmd_access_mix(args) -> None:
    from repro.framework.tracing import characterize_access_mix
    from repro.graph.datasets import DATASET_ORDER, instantiate_dataset

    print("dataset  structure%(count)  structure%(bytes)")
    for name in DATASET_ORDER:
        graph = instantiate_dataset(name, max_nodes=args.max_nodes, seed=0)
        mix = characterize_access_mix(graph, name, batch_size=32, num_batches=2)
        print(f"{name:<8} {100 * mix.structure_count_fraction:>16.1f}"
              f" {100 * mix.structure_bytes_fraction:>18.1f}")


def _cmd_e2e(_args) -> None:
    from repro.gnn.e2e import EndToEndModel

    model = EndToEndModel()
    for phase, training in (("training", True), ("inference", False)):
        breakdown = model.breakdown(training)
        print(f"{phase:<10} sampling {100 * breakdown.sampling_fraction:5.1f}%"
              f"  total {MS_PER_S * breakdown.total_s:6.2f} ms/batch")
    print(f"storage ratio: {model.storage_ratio():.1e}")


def _cmd_poc(args) -> None:
    from repro.perfmodel.poc import geomean_equivalence, poc_vcpu_equivalence

    rows = poc_vcpu_equivalence(max_nodes=args.max_nodes, batch_size=96)
    print("dataset  FPGA(roots/s)  vCPU-equivalence")
    for row in rows:
        print(f"{row.dataset:<8} {row.fpga_roots_per_s:>12.0f}"
              f"  {row.vcpu_equivalence:>15.0f}")
    print(f"geomean: {geomean_equivalence(rows):.0f} (paper: 894)")


def _cmd_validate(args) -> None:
    from repro.graph.datasets import instantiate_dataset
    from repro.perfmodel.poc import POC_SWEEP, validate_model

    graph = instantiate_dataset("ls", max_nodes=args.max_nodes, seed=0)
    rows = validate_model(graph, POC_SWEEP, batch_size=48)
    print("config           measured     modeled      err%")
    for row in rows:
        print(f"{row.point.label:<16} {row.measured_roots_per_s:>10.0f}"
              f"  {row.modeled_roots_per_s:>10.0f}  {100 * row.error:>6.1f}")
    mean_error = sum(r.error for r in rows) / len(rows)
    print(f"mean error: {100 * mean_error:.1f}%")


def _cmd_cost(_args) -> None:
    from repro.cost.regression import validate_cost_model

    print("instance    listed   predicted  error%")
    for row in validate_cost_model():
        print(f"{row.product_id:<11} {row.listed:>7.3f}  {row.predicted:>9.3f}"
              f"  {100 * row.error:>6.2f}")


def _cmd_dse(args) -> None:
    from repro.faas.dse import FaasDse
    from repro.faas.report import (
        arch_geomeans,
        format_perf_per_dollar_table,
        format_perf_table,
    )

    dse = FaasDse(gpus_per_12gbps=args.gpus_per_12gbps)
    results = dse.evaluate_all()
    cpu_results = dse.cpu_baseline_all()
    print(format_perf_table(results))
    print()
    print(format_perf_per_dollar_table(results, cpu_results))
    print("\ngeomean normalized perf/$:")
    for arch, value in sorted(arch_geomeans(results, cpu_results).items()):
        print(f"  {arch:<15} {value:6.2f}x")


def _cmd_system(args) -> None:
    import numpy as np

    from repro.axe.system import MultiCardSystem, SystemConfig
    from repro.graph.datasets import instantiate_dataset

    graph = instantiate_dataset("ls", max_nodes=args.max_nodes, seed=0)
    roots = np.arange(96)
    print("cards  roots/s     remote%")
    for cards in (1, 2, 4):
        stats = MultiCardSystem(
            graph, SystemConfig(num_cards=cards, output_link=None)
        ).run_batch(roots)
        print(f"{cards:>5}  {stats.roots_per_second:>10.0f}"
              f"  {100 * stats.remote_fraction:>6.1f}")


def _cmd_service(_args) -> None:
    import math

    from repro.framework.service import ServiceConfig, run_service

    quiet = run_service(ServiceConfig(num_workers=1, batches_per_worker=6))
    loaded = run_service(ServiceConfig(num_workers=32, batches_per_worker=3))

    def _ms(value: float) -> str:
        # Percentiles are NaN when a run completed zero batches.
        return "n/a" if math.isnan(value) else f"{MS_PER_S * value:.2f}"

    print("load    p50(ms)  p99(ms)")
    print(f"quiet   {_ms(quiet.p50):>7}  {_ms(quiet.p99):>7}")
    print(f"loaded  {_ms(loaded.p50):>7}  {_ms(loaded.p99):>7}")
    deadline = quiet.p99 * 1.2
    if math.isnan(deadline):
        print("deadline misses at 1.2x quiet p99: n/a (no quiet batches)")
    else:
        miss_rate = loaded.deadline_miss_rate(deadline)
        misses = (
            "n/a (no loaded batches)"
            if math.isnan(miss_rate)
            else f"{100 * miss_rate:.0f}%"
        )
        print(f"deadline misses at 1.2x quiet p99: {misses}")


def _cmd_serve(args) -> None:
    from repro.api import GnnSession
    from repro.graph.datasets import instantiate_dataset
    from repro.serving import default_tenants

    graph = instantiate_dataset("ls", max_nodes=args.max_nodes, seed=0)
    session = GnnSession(graph, num_partitions=4, seed=args.seed)
    tenants = default_tenants(args.duration_s)
    if args.overload != 1.0:
        tenants = [spec.overloaded(args.overload) for spec in tenants]
    report = session.serve(
        tenants=tenants,
        duration_s=args.duration_s,
        functional=not args.no_functional,
        fail_hardware_at_s=args.fail_hardware_at,
    )
    print(f"online serving: {len(tenants)} tenants, "
          f"{args.overload:.1f}x offered/provisioned load")
    print(report.format())


def _cmd_cluster(args) -> None:
    import json

    from repro.cluster import (
        ClusterConfig,
        ClusterSim,
        CostModelPolicy,
        ReactivePolicy,
        SCALING_POLICIES,
        StaticPolicy,
        flash_crowd_day,
        format_comparison,
        get_policy,
    )

    trace = flash_crowd_day(
        duration_s=args.duration_s, users=args.users, seed=args.seed
    )
    names = sorted(SCALING_POLICIES) if args.compare else [args.policy]
    kills = tuple(args.kill_at or ())
    reports = []
    for name in names:
        policy = get_policy(name)
        if args.replicas:
            # One knob, per-policy meaning: fixed fleet size for
            # static, fleet-size cap for the adaptive policies.
            if name == "static":
                policy = StaticPolicy(replicas=args.replicas)
            elif name == "least-loaded":
                policy = ReactivePolicy(max_replicas=args.replicas)
            else:
                policy = CostModelPolicy(max_replicas=args.replicas)
        config = ClusterConfig(
            policy=name, router=args.router, kill_at_s=kills
        )
        reports.append(ClusterSim(trace, config, policy=policy).run())
    if args.json:
        if len(reports) == 1:
            payload = reports[0].to_json()
        else:
            payload = {"reports": [r.to_json() for r in reports]}
        print(json.dumps(payload, indent=2))
        return
    print(
        f"cluster: {args.users:,} users, {args.duration_s:.0f}s compressed "
        f"day (diurnal + flash crowds), router={args.router}"
        + (f", kills at {list(kills)}" if kills else "")
    )
    if len(reports) == 1:
        print(reports[0].format())
    else:
        print(format_comparison(reports))


def _cmd_faults(args) -> None:
    from repro.graph.datasets import instantiate_dataset
    from repro.graph.partition import HashPartitioner
    from repro.framework.sampler import MultiHopSampler
    from repro.framework.requests import SampleRequest
    from repro.memstore import (
        FaultInjector,
        PartitionedStore,
        ReliableReadPath,
        ReplicaPlacement,
        RetryPolicy,
    )
    import numpy as np

    graph = instantiate_dataset("ls", max_nodes=args.max_nodes, seed=0)
    placement = ReplicaPlacement(
        num_partitions=args.partitions, replication_factor=args.replicas
    )
    injector = FaultInjector(seed=args.seed, loss_rate=args.loss_rate)
    policy = RetryPolicy(hedge=not args.no_hedge)
    path = ReliableReadPath(
        placement, policy=policy, injector=injector, seed=args.seed
    )
    store = PartitionedStore(
        graph, HashPartitioner(args.partitions), reliability=path
    )
    sampler = MultiHopSampler(
        store, seed=args.seed, worker_partition=0, degraded_ok=True
    )
    if args.kill_partition is not None:
        injector.kill_replica(args.kill_partition, replica=0)
        print(f"killed: partition {args.kill_partition} replica 0")
    roots = np.arange(args.batch_size, dtype=np.int64)
    request = SampleRequest(roots=roots, fanouts=(10, 5))
    sampler.sample(request)
    stats = sampler.fault_stats
    print(f"replicas: {args.replicas}x across {placement.num_domains} domains"
          f"  loss rate: {args.loss_rate:.1%}"
          f"  hedging: {'on' if policy.hedge else 'off'}")
    print(f"reads {stats.reads}  attempts {stats.attempts}"
          f"  retries {stats.retries}  timeouts {stats.timeouts}")
    print(f"hedges {stats.hedges} (won {stats.hedge_wins})"
          f"  failovers {stats.failovers}"
          f"  failed reads {stats.failed_reads}"
          f"  degraded fallbacks {sampler.degraded_fallbacks}")


def _cmd_bench_sampler(args) -> None:
    import json

    import numpy as np

    from repro.bench import bench_timer
    from repro.errors import ConfigurationError
    from repro.framework.cache import HotNodeCache
    from repro.framework.replay import replay_reference
    from repro.framework.requests import SampleRequest
    from repro.framework.sampler import MultiHopSampler
    from repro.graph.datasets import instantiate_dataset
    from repro.graph.partition import HashPartitioner
    from repro.memstore.store import PartitionedStore
    from repro.parallel.engine import ParallelSampler

    fanouts = tuple(int(f) for f in args.fanouts.split(","))
    if args.workers and args.cache_nodes:
        raise ConfigurationError(
            "--workers and --cache-nodes are mutually exclusive "
            "(the parallel engine runs cache-free)"
        )
    graph = instantiate_dataset("ll", max_nodes=args.max_nodes, seed=args.seed)
    partitioner = HashPartitioner(args.partitions)
    rng = np.random.default_rng(args.seed)
    roots = rng.integers(0, graph.num_nodes, size=args.batch_size)
    request = SampleRequest(roots=roots, fanouts=fanouts, with_attributes=True)

    def run(batched: bool):
        best = float("inf")
        store = sampler = None
        for _ in range(args.repeats):
            store = PartitionedStore(graph, partitioner)
            cache = HotNodeCache(args.cache_nodes) if args.cache_nodes else None
            sampler = MultiHopSampler(
                store,
                seed=args.seed,
                cache=cache,
                worker_partition=0,
                batched=batched,
            )
            with bench_timer() as timer:
                result = sampler.sample(request)
            best = min(best, timer.elapsed_s)
        return best, result, store, sampler

    def run_parallel(workers: int):
        best = float("inf")
        store = result = None
        for _ in range(args.repeats):
            store = PartitionedStore(graph, partitioner)
            with ParallelSampler(
                store, workers=workers, seed=args.seed, worker_partition=0
            ) as engine:
                # Warm the pool outside the timed region (process
                # startup is a one-time cost, not per-batch).
                engine.collect(engine.submit(request))
                store.reset_trace()
                with bench_timer() as timer:
                    result = engine.sample(request)
            best = min(best, timer.elapsed_s)
        return best, result, store

    reference_s, _ref_result, _store, _ = run(batched=False)
    batched_s, result, store, _ = run(batched=True)
    replay_store = PartitionedStore(graph, partitioner)
    replay_cache = HotNodeCache(args.cache_nodes) if args.cache_nodes else None
    replay_reference(
        result, request, replay_store, worker_partition=0, cache=replay_cache
    )
    match = store.summary == replay_store.summary

    parallel_s = parallel_match = None
    if args.workers:
        parallel_s, parallel_result, parallel_store = run_parallel(args.workers)
        parallel_replay = PartitionedStore(graph, partitioner)
        replay_reference(
            parallel_result, request, parallel_replay, worker_partition=0
        )
        parallel_match = parallel_store.summary == parallel_replay.summary

    report = {
        "dataset": "ll",
        "num_nodes": int(graph.num_nodes),
        "batch_size": args.batch_size,
        "fanouts": list(fanouts),
        "partitions": args.partitions,
        "cache_nodes": args.cache_nodes,
        "repeats": args.repeats,
        "seed": args.seed,
        "reference_s": reference_s,
        "batched_s": batched_s,
        "speedup": reference_s / batched_s,
        "accounting_match": bool(match),
        "workers": args.workers,
        "parallel_s": parallel_s,
        "parallel_speedup": (
            None if parallel_s is None else batched_s / parallel_s
        ),
        "parallel_match": parallel_match,
    }
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(f"ll instance: {graph.num_nodes} nodes, batch {args.batch_size}, "
              f"fanouts {'x'.join(str(f) for f in fanouts)}, "
              f"{args.partitions} partitions (best of {args.repeats})")
        print(f"reference: {reference_s * MS_PER_S:8.2f} ms/batch")
        print(f"batched:   {batched_s * MS_PER_S:8.2f} ms/batch")
        print(f"speedup:   {reference_s / batched_s:8.2f}x")
        print(f"accounting match (replayed reference): {'yes' if match else 'NO'}")
        if parallel_s is not None:
            print(f"parallel:  {parallel_s * MS_PER_S:8.2f} ms/batch "
                  f"({args.workers} workers, "
                  f"{batched_s / parallel_s:.2f}x vs batched)")
            print(f"parallel accounting match (replayed reference): "
                  f"{'yes' if parallel_match else 'NO'}")
    failed = not match or parallel_match is False
    if failed:
        if args.cache_nodes and not args.json:
            print(
                "note: cache-counter parity assumes a non-thrashing cache; "
                f"--cache-nodes {args.cache_nodes} may be evicting within a "
                "hop (see docs/ARCHITECTURE.md section 5d). Retry with a "
                "larger capacity or --cache-nodes 0."
            )
        raise SystemExit(1)


def _cmd_train_bench(args) -> None:
    """Pipelined sample→train engine: throughput, parity, cache win.

    For every worker count the same training schedule runs twice —
    without and with the multi-hop neighborhood cache — timing each
    epoch. Hard failures (exit 1): losses/weights not bit-identical
    across worker counts, store accounting divergence, nonzero
    neighborhood counters at cache-off, or (on >= 4 cores) missing the
    wall-clock speedup floor at 4 workers.
    """
    import json
    import os

    import numpy as np

    from repro.bench import bench_timer
    from repro.gnn.pipeline import PipelinedTrainer
    from repro.graph.generators import power_law_graph
    from repro.graph.partition import HashPartitioner
    from repro.memstore.store import PartitionedStore

    max_nodes = args.max_nodes
    epochs = args.epochs
    batch_size = args.batch_size
    if args.smoke:
        max_nodes = min(max_nodes, 400)
        epochs = min(epochs, 2)
        batch_size = min(batch_size, 32)
    fanouts = tuple(int(f) for f in args.fanouts.split(","))
    if args.workers is None:
        worker_counts = [0, 1, 2, 4]
    else:
        worker_counts = sorted({0, args.workers})
    cores = len(os.sched_getaffinity(0))

    graph = power_law_graph(
        max_nodes, args.avg_degree, attr_len=0, seed=args.seed
    )
    label_rng = np.random.default_rng(args.seed)
    labels = (
        label_rng.random((graph.num_nodes, args.num_labels)) < 0.3
    ).astype(np.float32)
    roots = np.arange(graph.num_nodes, dtype=np.int64)

    def run(workers: int, cached: bool):
        """One training schedule: warm-up epoch untimed, then timed epochs.

        The warm-up epoch absorbs pool startup and arena allocation
        (and, with the cache, is the miss epoch that fills it); it runs
        identically at every worker count, so the loss/weight parity
        bar covers it too.
        """
        store = PartitionedStore(graph, HashPartitioner(args.partitions))
        with PipelinedTrainer(
            store,
            labels,
            fanouts,
            embedding_dim=args.embedding_dim,
            hidden_dim=args.hidden_dim,
            seed=args.seed,
            workers=workers,
            pipeline_depth=args.pipeline_depth,
            batch_size=batch_size,
            cached_epochs=(epochs + 1) if cached else 0,
        ) as trainer:
            losses = [trainer.train_epoch(roots)]
            epoch_s = []
            for _ in range(epochs):
                with bench_timer() as timer:
                    losses.append(trainer.train_epoch(roots))
                epoch_s.append(timer.elapsed_s)
            digest = trainer.weights_digest()
            cache_hits = trainer.cache.root_hits if cached else 0
            cache_misses = trainer.cache.root_misses if cached else 0
        mean_epoch_s = float(np.mean(epoch_s))
        return {
            "workers": workers,
            "cached": cached,
            "losses": losses,
            "epoch_s": epoch_s,
            "mean_epoch_s": mean_epoch_s,
            "samples_per_s": float(roots.size / mean_epoch_s),
            "weights_digest": digest,
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
            "summary": store.summary,
        }

    rows = []
    for cached in (False, True):
        for workers in worker_counts:
            rows.append(run(workers, cached))

    failures = []
    for cached in (False, True):
        variant = [r for r in rows if r["cached"] is cached]
        reference = variant[0]
        for row in variant[1:]:
            if (
                row["losses"] != reference["losses"]
                or row["weights_digest"] != reference["weights_digest"]
            ):
                failures.append(
                    f"parity: workers={row['workers']} cached={cached} "
                    "diverges from workers=0 (losses/weights not "
                    "bit-identical)"
                )
            if row["summary"] != reference["summary"]:
                failures.append(
                    f"accounting: workers={row['workers']} cached={cached} "
                    "store summary diverges from workers=0"
                )
    for row in rows:
        if not row["cached"] and (
            row["summary"].neighborhood_hits
            or row["summary"].neighborhood_misses
        ):
            failures.append(
                f"accounting: workers={row['workers']} cache-off run has "
                "nonzero neighborhood counters"
            )

    def mean_epoch(workers: int, cached: bool):
        for row in rows:
            if row["workers"] == workers and row["cached"] is cached:
                return row["mean_epoch_s"]
        return None

    speedup_4w = None
    base_s = mean_epoch(0, False)
    top_s = mean_epoch(4, False)
    if top_s is not None:
        speedup_4w = base_s / top_s
        if cores >= args.min_cores and speedup_4w < args.speedup_floor:
            failures.append(
                f"speedup: {speedup_4w:.2f}x at 4 workers is below the "
                f"{args.speedup_floor:.1f}x floor on {cores} cores"
            )
    cached_speedups = {
        w: mean_epoch(w, False) / mean_epoch(w, True) for w in worker_counts
    }

    report = {
        "num_nodes": int(graph.num_nodes),
        "batch_size": batch_size,
        "fanouts": list(fanouts),
        "partitions": args.partitions,
        "epochs": epochs,
        "pipeline_depth": args.pipeline_depth,
        "embedding_dim": args.embedding_dim,
        "hidden_dim": args.hidden_dim,
        "seed": args.seed,
        "cores": cores,
        "rows": [
            {k: v for k, v in row.items() if k != "summary"} for row in rows
        ],
        "speedup_4w": speedup_4w,
        "speedup_floor": args.speedup_floor,
        "cached_speedups": {str(w): s for w, s in cached_speedups.items()},
        "parity": not failures,
        "failures": failures,
    }
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(
            f"train-bench: {graph.num_nodes} nodes, batch {batch_size}, "
            f"fanouts {'x'.join(str(f) for f in fanouts)}, "
            f"{epochs} timed epochs (+1 warm-up), depth "
            f"{args.pipeline_depth}, {cores} cores"
        )
        for row in rows:
            label = "cached" if row["cached"] else "fresh "
            print(
                f"  workers={row['workers']} {label}: "
                f"{row['mean_epoch_s'] * MS_PER_S:8.1f} ms/epoch "
                f"{row['samples_per_s']:10.0f} samples/s "
                f"loss {row['losses'][-1]:.4f}"
            )
        if speedup_4w is not None:
            gate = "gated" if cores >= args.min_cores else "ungated (<4 cores)"
            print(f"speedup at 4 workers: {speedup_4w:.2f}x ({gate})")
        for w in worker_counts:
            print(f"cached-epoch speedup at workers={w}: "
                  f"{cached_speedups[w]:.2f}x")
        print(f"parity (losses/weights/accounting): "
              f"{'yes' if not failures else 'NO'}")
        for failure in failures:
            print(f"FAIL: {failure}")
    if failures:
        raise SystemExit(1)


def _cmd_mutate_bench(args) -> None:
    import json

    import numpy as np

    from repro.bench import bench_timer
    from repro.framework.cache import HotNodeCache
    from repro.framework.replay import replay_reference
    from repro.framework.requests import SampleRequest
    from repro.framework.sampler import MultiHopSampler
    from repro.graph.datasets import instantiate_dataset
    from repro.graph.dynamic import DynamicGraph
    from repro.graph.partition import HashPartitioner
    from repro.memstore.ingest import DynamicPartitionedStore, growth_trace
    from repro.memstore.store import PartitionedStore

    if args.smoke:
        args.max_nodes = min(args.max_nodes, 2000)
        args.batch_size = min(args.batch_size, 64)
        args.batches = min(args.batches, 3)
        args.rates = "0,16,64"
    rates = [int(r) for r in args.rates.split(",")]
    if len(rates) < 3:
        raise SystemExit("--rates needs at least 3 mutation rates to sweep")
    fanouts = tuple(int(f) for f in args.fanouts.split(","))
    base = instantiate_dataset("ll", max_nodes=args.max_nodes, seed=args.seed)
    partitioner = HashPartitioner(args.partitions)
    rng = np.random.default_rng(args.seed)
    requests = [
        SampleRequest(
            roots=rng.integers(0, base.num_nodes, size=args.batch_size),
            fanouts=fanouts,
            with_attributes=True,
        )
        for _ in range(args.batches)
    ]

    def run_rate(rate: int):
        """Interleave `rate` mutations before every sample batch."""
        store = DynamicPartitionedStore(
            DynamicGraph(base, compact_threshold=args.compact_threshold),
            partitioner,
        )
        cache = HotNodeCache(args.cache_nodes) if args.cache_nodes else None
        if cache is not None:
            store.register_cache(cache)
        sampler = MultiHopSampler(
            store, seed=args.seed, cache=cache, worker_partition=0, batched=True
        )
        trace = growth_trace(
            base.num_nodes, rate * args.batches, seed=args.seed + 1
        )
        sampling_s = 0.0
        mutation_s = 0.0
        max_epochs_seen = 0
        results = []
        for i, request in enumerate(requests):
            if rate:
                batch = trace[i * rate : (i + 1) * rate]
                with bench_timer() as timer:
                    store.apply(batch)
                mutation_s += timer.elapsed_s
            with bench_timer() as timer:
                results.append(sampler.sample(request))
            sampling_s += timer.elapsed_s
            max_epochs_seen = max(max_epochs_seen, len(store.last_sample_epochs))
        return {
            "rate": rate,
            "sampling_s": sampling_s,
            "mutation_s": mutation_s,
            "batches_per_s": args.batches / sampling_s,
            "max_epochs_per_sample": max_epochs_seen,
            "delta_hits": store.ingest_stats.delta_hits,
            "delta_edges_read": store.ingest_stats.delta_edges_read,
            "cache_invalidations": store.ingest_stats.cache_invalidations,
            "compactions": store.ingest_stats.compactions,
            "edges_added": store.ingest_stats.edges_added,
            "nodes_added": store.ingest_stats.nodes_added,
        }, results, store

    sweep = []
    rate0 = None
    for rate in sorted(set(rates)):
        row, results, store = run_rate(rate)
        sweep.append(row)
        if rate == 0:
            rate0 = (results, store)

    # Consistency invariant: no multi-hop sample observed two epochs.
    consistent = all(row["max_epochs_per_sample"] <= 1 for row in sweep)

    # Rate-0 parity: byte-identical to the static-store path, and the
    # replay harness charges the reference walk identically.
    static_match = replay_match = None
    if rate0 is not None:
        dyn_results, dyn_store = rate0
        static_store = PartitionedStore(base, partitioner)
        static_cache = HotNodeCache(args.cache_nodes) if args.cache_nodes else None
        static_sampler = MultiHopSampler(
            static_store, seed=args.seed, cache=static_cache,
            worker_partition=0, batched=True,
        )
        static_match = True
        for request, dyn_result in zip(requests, dyn_results):
            static_result = static_sampler.sample(request)
            static_match = static_match and all(
                np.array_equal(a, b)
                for a, b in zip(dyn_result.layers, static_result.layers)
            ) and all(
                np.array_equal(a, b)
                for a, b in zip(dyn_result.attributes, static_result.attributes)
            )
        static_match = static_match and dyn_store.summary == static_store.summary
        # Replay-harness parity holds per request from a cold cache (the
        # batched path and the walk fill a warm cache in different
        # orders), so check one request on a fresh store/cache pair —
        # same contract bench-sampler verifies on the static store.
        one_store = DynamicPartitionedStore(DynamicGraph(base), partitioner)
        one_cache = HotNodeCache(args.cache_nodes) if args.cache_nodes else None
        if one_cache is not None:
            one_store.register_cache(one_cache)
        one_result = MultiHopSampler(
            one_store, seed=args.seed, cache=one_cache,
            worker_partition=0, batched=True,
        ).sample(requests[0])
        replay_store = DynamicPartitionedStore(DynamicGraph(base), partitioner)
        replay_cache = HotNodeCache(args.cache_nodes) if args.cache_nodes else None
        replay_reference(
            one_result, requests[0], replay_store,
            worker_partition=0, cache=replay_cache,
        )
        replay_match = one_store.summary == replay_store.summary

    # Torn-read probe: fire a mutation mid-sample (from inside the
    # selector) and check the pinned view holds one epoch and the
    # just-added node stays invisible to the in-flight sample.
    probe_store = DynamicPartitionedStore(DynamicGraph(base), partitioner)
    probe_trace = growth_trace(
        base.num_nodes, 32, new_node_probability=1.0, seed=args.seed + 2
    )
    fired = [False]

    def torn_selector(neighbors, fanout, sel_rng):
        if not fired[0]:
            fired[0] = True
            probe_store.apply(probe_trace)
        return neighbors[sel_rng.integers(0, neighbors.size, size=fanout)]

    probe_sampler = MultiHopSampler(
        probe_store, seed=args.seed, worker_partition=0,
        selector=torn_selector, batched=True,
    )
    probe_result = probe_sampler.sample(requests[0])
    new_ids = set(range(base.num_nodes, probe_store.graph.num_nodes))
    torn_ok = (
        fired[0]
        and len(probe_store.last_sample_epochs) == 1
        and not any(
            bool(new_ids & set(layer.reshape(-1).tolist()))
            for layer in probe_result.layers
        )
    )

    report = {
        "dataset": "ll",
        "num_nodes": int(base.num_nodes),
        "batch_size": args.batch_size,
        "batches": args.batches,
        "fanouts": list(fanouts),
        "partitions": args.partitions,
        "cache_nodes": args.cache_nodes,
        "compact_threshold": args.compact_threshold,
        "seed": args.seed,
        "sweep": sweep,
        "consistent_epochs": bool(consistent),
        "rate0_static_match": static_match,
        "rate0_replay_match": replay_match,
        "torn_read_ok": bool(torn_ok),
    }
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(f"ll instance: {base.num_nodes} nodes, batch {args.batch_size} "
              f"x {args.batches}, fanouts {'x'.join(str(f) for f in fanouts)}, "
              f"{args.partitions} partitions")
        print(f"{'mut/batch':>10} {'sample ms':>10} {'mutate ms':>10} "
              f"{'batches/s':>10} {'delta hits':>10} {'compactions':>11}")
        for row in sweep:
            print(f"{row['rate']:>10} "
                  f"{row['sampling_s'] * MS_PER_S:>10.2f} "
                  f"{row['mutation_s'] * MS_PER_S:>10.2f} "
                  f"{row['batches_per_s']:>10.1f} "
                  f"{row['delta_hits']:>10} "
                  f"{row['compactions']:>11}")
        print(f"consistency (one epoch per sample): "
              f"{'yes' if consistent else 'NO'}")
        if static_match is not None:
            print(f"rate-0 parity vs static store: "
                  f"{'yes' if static_match else 'NO'}")
            print(f"rate-0 replay-harness parity:  "
                  f"{'yes' if replay_match else 'NO'}")
        print(f"torn-read probe (mutation mid-sample): "
              f"{'ok' if torn_ok else 'FAILED'}")
    if not consistent or static_match is False or replay_match is False or not torn_ok:
        raise SystemExit(1)


def _cmd_layout_bench(args) -> None:
    import json

    import numpy as np

    from repro.bench import bench_timer
    from repro.framework.kernels import (
        compiled_available,
        compiled_unavailable_reason,
    )
    from repro.framework.replay import replay_reference
    from repro.framework.requests import SampleRequest
    from repro.framework.sampler import MultiHopSampler
    from repro.graph.datasets import instantiate_dataset
    from repro.graph.partition import HashPartitioner
    from repro.memstore.locality import build_locality_layout
    from repro.memstore.store import PartitionedStore

    if args.smoke:
        args.max_nodes = min(args.max_nodes, 2000)
        args.batch_size = min(args.batch_size, 64)
        args.batches = min(args.batches, 2)
        args.repeats = min(args.repeats, 2)
    fanouts = tuple(int(f) for f in args.fanouts.split(","))
    graph = instantiate_dataset("ll", max_nodes=args.max_nodes, seed=args.seed)
    rng = np.random.default_rng(args.seed)
    requests = [
        SampleRequest(
            roots=rng.integers(0, graph.num_nodes, size=args.batch_size),
            fanouts=fanouts,
            with_attributes=True,
        )
        for _ in range(args.batches)
    ]
    layout = build_locality_layout(graph, args.partitions, method=args.method)
    base_partitioner = HashPartitioner(args.partitions)

    def hop_crossings(results, partitioner, relabeling):
        """Parent->pick pairs whose owners differ: the remote fetches hop
        expansion issues when each parent expands on its owner. Unlike
        one worker's remote share, this is the sampled edge cut —
        independent of which partition the worker happens to sit in."""
        crossings = total = 0
        for result, request in zip(results, requests):
            for hop, fanout in enumerate(request.fanouts):
                parents = np.repeat(result.layers[hop].reshape(-1), fanout)
                picks = result.layers[hop + 1].reshape(-1)
                if relabeling is not None:
                    parents = relabeling.to_internal(parents)
                    picks = relabeling.to_internal(picks)
                crossings += int(np.count_nonzero(
                    partitioner.partition_of(parents)
                    != partitioner.partition_of(picks)
                ))
                total += picks.size
        return crossings, total

    def run(store_graph, partitioner, relabeling, kernels):
        best = float("inf")
        store = results = None
        for _ in range(args.repeats):
            store = PartitionedStore(
                store_graph, partitioner, track_locality=True
            )
            sampler = MultiHopSampler(
                store,
                seed=args.seed,
                worker_partition=0,
                batched=True,
                kernels=kernels,
                relabeling=relabeling,
            )
            with bench_timer() as timer:
                results = [sampler.sample(r) for r in requests]
            best = min(best, timer.elapsed_s)
        return best, results, store

    baseline_s, baseline_results, baseline_store = run(
        graph, base_partitioner, None, None
    )
    layout_s, layout_results, layout_store = run(
        layout.graph, layout.partitioner, layout.relabeling, None
    )
    base_crossings, base_picks = hop_crossings(
        baseline_results, base_partitioner, None
    )
    lay_crossings, lay_picks = hop_crossings(
        layout_results, layout.partitioner, layout.relabeling
    )

    # Replay parity: the per-node walk must charge the layout path's
    # sampled layers identically. Untracked stores on both sides — the
    # batched gather pattern the locality counters measure is exactly
    # what the per-node walk does not do.
    live_store = PartitionedStore(layout.graph, layout.partitioner)
    live_result = MultiHopSampler(
        live_store,
        seed=args.seed,
        worker_partition=0,
        batched=True,
        relabeling=layout.relabeling,
    ).sample(requests[0])
    replay_store = PartitionedStore(layout.graph, layout.partitioner)
    replay_reference(
        live_result,
        requests[0],
        replay_store,
        worker_partition=0,
        relabeling=layout.relabeling,
    )
    replay_match = live_store.summary == replay_store.summary

    # Kernel tier: same seed, same draws — the compiled tier must
    # reproduce the NumPy layers bit for bit, winning wall clock only.
    kernels_report = {"compiled_available": compiled_available()}
    tiers_identical = None
    if compiled_available():
        compiled_s, compiled_results, _ = run(
            layout.graph, layout.partitioner, layout.relabeling, "compiled"
        )
        tiers_identical = all(
            np.array_equal(a, b)
            for nr, cr in zip(layout_results, compiled_results)
            for a, b in zip(nr.layers, cr.layers)
        )
        kernels_report.update(
            {
                "compiled_s": compiled_s,
                "speedup_vs_numpy": layout_s / compiled_s,
                "bit_identical": bool(tiers_identical),
            }
        )
    else:
        kernels_report["reason"] = compiled_unavailable_reason()

    def summarize(summary, wall_s, crossings, picks):
        return {
            "wall_s": wall_s,
            "crossings": crossings,
            "crossing_fraction": crossings / picks if picks else 0.0,
            "remote_count": summary.remote_count,
            "remote_count_fraction": summary.remote_count_fraction,
            "gather_nodes": summary.gather_nodes,
            "gather_runs": summary.gather_runs,
            "gather_span_bytes": summary.gather_span_bytes,
            "mean_run_length": summary.mean_run_length,
        }

    base = summarize(
        baseline_store.summary, baseline_s, base_crossings, base_picks
    )
    lay = summarize(layout_store.summary, layout_s, lay_crossings, lay_picks)
    crossing_reduction = (
        0.0
        if base["crossings"] == 0
        else 1.0 - lay["crossings"] / base["crossings"]
    )
    run_length_gain = (
        0.0
        if base["mean_run_length"] == 0
        else lay["mean_run_length"] / base["mean_run_length"]
    )
    locality_win = crossing_reduction > 0 and run_length_gain > 1.0
    report = {
        "dataset": "ll",
        "num_nodes": int(graph.num_nodes),
        "batch_size": args.batch_size,
        "batches": args.batches,
        "fanouts": list(fanouts),
        "partitions": args.partitions,
        "method": args.method,
        "repeats": args.repeats,
        "seed": args.seed,
        "baseline": base,
        "layout": lay,
        "crossing_reduction": crossing_reduction,
        "run_length_gain": run_length_gain,
        "locality_win": bool(locality_win),
        "replay_match": bool(replay_match),
        "kernels": kernels_report,
    }
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(f"ll instance: {graph.num_nodes} nodes, batch {args.batch_size} "
              f"x {args.batches}, fanouts {'x'.join(str(f) for f in fanouts)}, "
              f"{args.partitions} partitions, method={args.method} "
              f"(best of {args.repeats})")
        print(f"{'':>10} {'wall ms':>9} {'cross%':>7} {'remote%':>8} "
              f"{'runs':>8} {'run len':>8} {'span':>12}")
        for name, row in (("baseline", base), ("layout", lay)):
            print(f"{name:>10} {row['wall_s'] * MS_PER_S:>9.2f} "
                  f"{100 * row['crossing_fraction']:>7.1f} "
                  f"{100 * row['remote_count_fraction']:>8.1f} "
                  f"{row['gather_runs']:>8} "
                  f"{row['mean_run_length']:>8.2f} "
                  f"{format_bytes(row['gather_span_bytes']):>12}")
        print(f"partition crossings: {100 * crossing_reduction:.1f}% fewer; "
              f"contiguous runs: {run_length_gain:.2f}x longer")
        print(f"locality win: {'yes' if locality_win else 'NO'}")
        print(f"replay parity (layout path): "
              f"{'yes' if replay_match else 'NO'}")
        if kernels_report["compiled_available"]:
            print(f"compiled tier: {kernels_report['compiled_s'] * MS_PER_S:.2f} "
                  f"ms ({kernels_report['speedup_vs_numpy']:.2f}x vs numpy), "
                  f"bit-identical: "
                  f"{'yes' if kernels_report['bit_identical'] else 'NO'}")
        else:
            print(f"compiled tier: unavailable ({kernels_report['reason']})")
    if not replay_match or not locality_win or tiers_identical is False:
        raise SystemExit(1)


def _cmd_lint(args) -> None:
    from repro.analysis.lintcli import run_lint

    code = run_lint(args)
    if code:
        raise SystemExit(code)


def _cmd_sampler(_args) -> None:
    from repro.axe.resources import sampler_savings
    from repro.axe.sampling import sampling_speedup

    savings = sampler_savings()
    print(f"cycle advantage (N=100, K=10): "
          f"{sampling_speedup(100, 10):.2f}x (N+K -> N)")
    print(f"LUT saving: {100 * savings['lut_saving']:.1f}% (paper: 91.9%)")
    print(f"register saving: {100 * savings['reg_saving']:.1f}% (paper: 23%)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LSD-GNN FaaS reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("footprint", help="Figure 2(a)").set_defaults(fn=_cmd_footprint)
    sub.add_parser("scaling", help="Figure 2(b)").set_defaults(fn=_cmd_scaling)
    mix = sub.add_parser("access-mix", help="Figure 2(c)")
    mix.add_argument("--max-nodes", type=int, default=4000)
    mix.set_defaults(fn=_cmd_access_mix)
    sub.add_parser("e2e", help="Figure 3").set_defaults(fn=_cmd_e2e)
    poc = sub.add_parser("poc", help="Figure 14")
    poc.add_argument("--max-nodes", type=int, default=8000)
    poc.set_defaults(fn=_cmd_poc)
    val = sub.add_parser("validate", help="Figure 15")
    val.add_argument("--max-nodes", type=int, default=8000)
    val.set_defaults(fn=_cmd_validate)
    sub.add_parser("cost", help="Figure 16").set_defaults(fn=_cmd_cost)
    dse = sub.add_parser("dse", help="Figures 17-21")
    dse.add_argument("--gpus-per-12gbps", type=float, default=1.0)
    dse.set_defaults(fn=_cmd_dse)
    sub.add_parser("sampler", help="Tech-2 numbers").set_defaults(fn=_cmd_sampler)
    bench = sub.add_parser(
        "bench-sampler",
        help="batched vs reference sampler speedup + accounting parity",
    )
    bench.add_argument("--max-nodes", type=int, default=20000)
    bench.add_argument("--batch-size", type=int, default=512)
    bench.add_argument("--fanouts", type=str, default="10,10")
    bench.add_argument("--partitions", type=int, default=4)
    bench.add_argument("--cache-nodes", type=int, default=0,
                       help="optional hot-node cache capacity")
    bench.add_argument("--repeats", type=int, default=3,
                       help="take the best of this many runs per path")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--workers", type=int, default=0,
                       help="also bench the sharded parallel engine at "
                            "this worker count (0 = skip)")
    bench.add_argument("--json", action="store_true",
                       help="emit the report as JSON (see "
                            "benchmarks/bench_record.py)")
    bench.set_defaults(fn=_cmd_bench_sampler)
    system = sub.add_parser("system", help="multi-card scaling")
    system.add_argument("--max-nodes", type=int, default=6000)
    system.set_defaults(fn=_cmd_system)
    sub.add_parser("service", help="Challenge-1 latency").set_defaults(fn=_cmd_service)
    serve = sub.add_parser("serve", help="online SLO-aware serving gateway")
    serve.add_argument("--duration-s", type=float, default=0.5,
                       help="arrival window in virtual seconds")
    serve.add_argument("--max-nodes", type=int, default=2000)
    serve.add_argument("--overload", type=float, default=1.0,
                       help="offered load as a multiple of provisioned")
    serve.add_argument("--fail-hardware-at", type=float, default=None,
                       help="kill the AxE backend this far into the run")
    serve.add_argument("--no-functional", action="store_true",
                       help="timing-only backends (skip real sampling)")
    serve.add_argument("--seed", type=int, default=0)
    serve.set_defaults(fn=_cmd_serve)
    cluster = sub.add_parser(
        "cluster", help="multi-replica cluster with cost-driven autoscaling"
    )
    cluster.add_argument("--policy", type=str, default="cost",
                         choices=["static", "least-loaded", "cost"],
                         help="scaling policy")
    cluster.add_argument("--router", type=str, default="least-loaded",
                         choices=["consistent-hash", "least-loaded"],
                         help="request routing policy")
    cluster.add_argument("--replicas", type=int, default=0,
                         help="fleet size (static) or fleet-size cap "
                              "(adaptive policies); 0 = policy default")
    cluster.add_argument("--duration-s", type=float, default=10.0,
                         help="compressed-day window in virtual seconds")
    cluster.add_argument("--users", type=int, default=1_000_000,
                         help="user population behind the trace")
    cluster.add_argument("--kill-at", type=float, action="append",
                         default=None, metavar="T",
                         help="kill the most-loaded replica at this "
                              "virtual time (repeatable)")
    cluster.add_argument("--compare", action="store_true",
                         help="run all scaling policies over the same "
                              "trace and print the comparison table")
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--json", action="store_true",
                         help="emit the report(s) as JSON (see "
                              "benchmarks/bench_record.py)")
    cluster.set_defaults(fn=_cmd_cluster)
    layoutp = sub.add_parser(
        "layout-bench",
        help="locality layout vs hash baseline + compiled kernel tier",
    )
    layoutp.add_argument("--max-nodes", type=int, default=20000)
    layoutp.add_argument("--batch-size", type=int, default=256)
    layoutp.add_argument("--batches", type=int, default=4,
                         help="sample batches per configuration")
    layoutp.add_argument("--fanouts", type=str, default="10,10")
    layoutp.add_argument("--partitions", type=int, default=4)
    layoutp.add_argument("--method", type=str, default="ldg",
                         choices=["ldg", "hash", "range"],
                         help="partition assignment the layout blocks follow")
    layoutp.add_argument("--repeats", type=int, default=3,
                         help="take the best of this many runs per path")
    layoutp.add_argument("--seed", type=int, default=0)
    layoutp.add_argument("--smoke", action="store_true",
                         help="small fast configuration for CI")
    layoutp.add_argument("--json", action="store_true",
                         help="emit the report as JSON (see "
                              "benchmarks/bench_record.py)")
    layoutp.set_defaults(fn=_cmd_layout_bench)
    mutate = sub.add_parser(
        "mutate-bench",
        help="sampling throughput vs online mutation rate + consistency",
    )
    mutate.add_argument("--max-nodes", type=int, default=20000)
    mutate.add_argument("--batch-size", type=int, default=256)
    mutate.add_argument("--batches", type=int, default=8,
                        help="sample batches per rate (mutations interleave)")
    mutate.add_argument("--fanouts", type=str, default="10,10")
    mutate.add_argument("--partitions", type=int, default=4)
    mutate.add_argument("--cache-nodes", type=int, default=0,
                        help="optional hot-node cache capacity")
    mutate.add_argument("--rates", type=str, default="0,64,256,1024",
                        help="comma list of mutations applied before each "
                             "sample batch (>= 3 values)")
    mutate.add_argument("--compact-threshold", type=int, default=4096,
                        help="delta edges that trigger compaction")
    mutate.add_argument("--seed", type=int, default=0)
    mutate.add_argument("--smoke", action="store_true",
                        help="small fast configuration for CI")
    mutate.add_argument("--json", action="store_true",
                        help="emit the report as JSON (see "
                             "benchmarks/bench_record.py)")
    mutate.set_defaults(fn=_cmd_mutate_bench)
    trainb = sub.add_parser(
        "train-bench",
        help="pipelined sample→train engine: throughput + parity + cache",
    )
    trainb.add_argument("--max-nodes", type=int, default=3000)
    trainb.add_argument("--avg-degree", type=float, default=8.0)
    trainb.add_argument("--batch-size", type=int, default=64)
    trainb.add_argument("--fanouts", type=str, default="4,3")
    trainb.add_argument("--partitions", type=int, default=4)
    trainb.add_argument("--epochs", type=int, default=3,
                        help="timed epochs per run (one warm-up on top)")
    trainb.add_argument("--workers", type=int, default=None,
                        help="bench [0, N] instead of the default 0/1/2/4 "
                             "sweep (0 is always kept as the parity "
                             "reference)")
    trainb.add_argument("--pipeline-depth", type=int, default=2)
    trainb.add_argument("--embedding-dim", type=int, default=16)
    trainb.add_argument("--hidden-dim", type=int, default=16)
    trainb.add_argument("--num-labels", type=int, default=4)
    trainb.add_argument("--speedup-floor", type=float, default=2.0,
                        help="required epoch wall-clock speedup at 4 "
                             "workers (enforced on >= --min-cores cores)")
    trainb.add_argument("--min-cores", type=int, default=4)
    trainb.add_argument("--seed", type=int, default=0)
    trainb.add_argument("--smoke", action="store_true",
                        help="small fast configuration for CI")
    trainb.add_argument("--json", action="store_true",
                        help="emit the report as JSON (see "
                             "benchmarks/bench_record.py)")
    trainb.set_defaults(fn=_cmd_train_bench)
    faults = sub.add_parser(
        "faults", help="fault-tolerant remote-memory path demo"
    )
    faults.add_argument("--max-nodes", type=int, default=2000)
    faults.add_argument("--partitions", type=int, default=4)
    faults.add_argument("--replicas", type=int, default=2,
                        help="replication factor per partition")
    faults.add_argument("--loss-rate", type=float, default=0.0,
                        help="per-request loss probability")
    faults.add_argument("--kill-partition", type=int, default=None,
                        help="kill this partition's primary replica up front")
    faults.add_argument("--no-hedge", action="store_true",
                        help="disable hedged second reads")
    faults.add_argument("--batch-size", type=int, default=48)
    faults.add_argument("--seed", type=int, default=0)
    faults.set_defaults(fn=_cmd_faults)
    lint = sub.add_parser(
        "lint", help="AST-based invariant linter (repro.analysis)"
    )
    add_lint_arguments(lint)
    lint.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
