"""Unit helpers used throughout the package.

All internal quantities use SI base units: bytes, seconds, bytes/second,
and hertz. These constants and helpers keep conversions explicit at the
point where human-readable configuration values enter the system.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000

US = 1e-6
NS = 1e-9
MS = 1e-3

#: Milliseconds per second — multiply a seconds quantity for ms display.
MS_PER_S = 1e3

#: Seconds per hour — divide replica-seconds for hourly billing.
S_PER_HOUR = 3600.0


def gbps_to_bytes_per_s(gigabits_per_second: float) -> float:
    """Convert a link rate in Gb/s (decimal) to bytes/second."""
    return gigabits_per_second * GIGA / 8.0


def gib_per_s(gibibytes_per_second: float) -> float:
    """Convert GiB/s to bytes/second.

    The paper quotes link bandwidths like "16GB/s" for PCIe Gen3 x16;
    we treat those as binary gibibytes per second for consistency with
    the DRAM channel numbers (12.8GB/s per DDR4-1600 channel).
    """
    return gibibytes_per_second * GB


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Time taken by ``cycles`` clock cycles at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> int:
    """Clock cycles (rounded up) covering ``seconds`` at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    if seconds < 0:
        raise ValueError(f"seconds must be non-negative, got {seconds}")
    cycles = seconds * frequency_hz
    whole = int(cycles)
    return whole if cycles == whole else whole + 1


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count, e.g. ``format_bytes(3 * TB) == '3.00TB'``."""
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if num_bytes >= unit:
            return f"{num_bytes / unit:.2f}{name}"
    return f"{num_bytes:.0f}B"


def format_rate(value: float) -> str:
    """Human-readable rate, e.g. ``format_rate(1.5e6) == '1.50M'``."""
    if value < 0:
        raise ValueError(f"rate must be non-negative, got {value}")
    for unit, name in ((GIGA, "G"), (MEGA, "M"), (KILO, "K")):
        if value >= unit:
            return f"{value / unit:.2f}{name}"
    return f"{value:.2f}"
