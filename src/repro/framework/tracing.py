"""Access-pattern characterization (Figure 2c).

Runs the reference sampler over a dataset instance with store tracing
enabled and reports the structure-vs-attribute access mix — the paper's
finding is that ~48% of accesses (by count) are fine-grained indirect
structure accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.framework.requests import SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.graph.csr import CSRGraph
from repro.graph.partition import HashPartitioner
from repro.memstore.store import AccessSummary, PartitionedStore


@dataclass(frozen=True)
class AccessMixReport:
    """Access-mix characterization for one dataset instance."""

    name: str
    structure_count_fraction: float
    structure_bytes_fraction: float
    remote_count_fraction: float
    mean_structure_bytes: float
    mean_attribute_bytes: float
    summary: AccessSummary


def characterize_access_mix(
    graph: CSRGraph,
    name: str = "",
    batch_size: int = 64,
    num_batches: int = 4,
    fanouts: Tuple[int, ...] = (10, 10),
    num_partitions: int = 4,
    seed: int = 0,
    worker_partition: Optional[int] = 0,
) -> AccessMixReport:
    """Sample ``num_batches`` mini-batches and report the access mix."""
    if batch_size <= 0 or num_batches <= 0:
        raise ConfigurationError("batch_size and num_batches must be positive")
    store = PartitionedStore(graph, HashPartitioner(num_partitions))
    sampler = MultiHopSampler(store, seed=seed, worker_partition=worker_partition)
    rng = np.random.default_rng(seed)
    for _ in range(num_batches):
        roots = rng.integers(0, graph.num_nodes, size=batch_size, dtype=np.int64)
        sampler.sample(SampleRequest(roots=roots, fanouts=fanouts))
    summary = store.summary
    structure_bytes_fraction = (
        summary.structure_bytes / summary.total_bytes if summary.total_bytes else 0.0
    )
    mean_struct = (
        summary.structure_bytes / summary.structure_count
        if summary.structure_count
        else 0.0
    )
    mean_attr = (
        summary.attribute_bytes / summary.attribute_count
        if summary.attribute_count
        else 0.0
    )
    return AccessMixReport(
        name=name or "graph",
        structure_count_fraction=summary.structure_count_fraction,
        structure_bytes_fraction=structure_bytes_fraction,
        remote_count_fraction=summary.remote_count_fraction,
        mean_structure_bytes=mean_struct,
        mean_attribute_bytes=mean_attr,
        summary=summary,
    )
