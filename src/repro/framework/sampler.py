"""Reference multi-hop random sampler (the CPU software path).

Implements the AliGraph programming model from Section 2.1: given a
root node ``v``, sample a subset ``S(v)`` of the neighbor set ``N(v)``,
fetch attributes of sampled nodes, and iterate for multiple hops. Also
implements negative sampling (used by link-prediction losses).

This is the functional ground truth the AxE hardware model is checked
against, and the workload generator for the characterization figures.
"""

from __future__ import annotations

import inspect
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, GraphError, ReplicaUnavailableError
from repro.framework.cache import HotNodeCache
from repro.framework.requests import (
    NegativeSampleRequest,
    SampleRequest,
    SampleResult,
)
from repro.framework.selectors import select_uniform
from repro.memstore.store import PartitionedStore


class MultiHopSampler:
    """Random multi-hop sampler over a partitioned store.

    Parameters
    ----------
    store:
        The graph store; every structure/attribute access is accounted
        there.
    seed:
        RNG seed for reproducible sampling.
    cache:
        Optional hot-node cache; hits are served without touching the
        store (AliGraph's system-level caching of frequent nodes).
    worker_partition:
        The partition the requesting worker is co-located with; used to
        attribute accesses as local or remote. ``None`` treats all
        accesses as local.
    selector:
        Neighbor-selection strategy ``f(neighbors, fanout, rng)``;
        defaults to uniform-with-replacement. Pass
        :func:`~repro.framework.selectors.select_streaming` to sample
        the way the AxE hardware does.
    degraded_ok:
        When the store's fault-tolerant path declares a shard
        unreachable (every replica dead past the read deadline), fall
        back instead of raising: neighbor reads degrade to the
        self-loop fallback, attribute reads to zero rows. Each fallback
        is counted in ``degraded_fallbacks``. ``False`` (the default)
        propagates :class:`~repro.errors.ReplicaUnavailableError`.
    """

    def __init__(
        self,
        store: PartitionedStore,
        seed: int = 0,
        cache: Optional[HotNodeCache] = None,
        worker_partition: Optional[int] = None,
        selector=select_uniform,
        degraded_ok: bool = False,
    ) -> None:
        self.store = store
        self.rng = np.random.default_rng(seed)
        self.cache = cache
        self.worker_partition = worker_partition
        self.selector = selector
        self.degraded_ok = degraded_ok
        #: Reads completed without data because a shard was unreachable.
        self.degraded_fallbacks = 0
        # Weighted selectors take an extra ``weights`` argument, fed
        # from the graph's per-edge attributes when present.
        self._selector_takes_weights = (
            "weights" in inspect.signature(selector).parameters
        )

    @property
    def fault_stats(self):
        """Store-level retry/hedge counters (``None`` without a
        reliable path configured on the store)."""
        return self.store.fault_stats

    # ------------------------------------------------------------- sampling
    def _neighbors(self, node: int) -> np.ndarray:
        if self.cache is not None:
            hit = self.cache.get_neighbors(node)
            if hit is not None:
                return hit
        try:
            neighbors = self.store.get_neighbors(node, self.worker_partition)
        except ReplicaUnavailableError:
            if not self.degraded_ok:
                raise
            # Degraded completion: treat the node as isolated, which
            # downstream becomes the zero-degree self-loop fallback.
            # The empty list is NOT cached — the shard may come back.
            self.degraded_fallbacks += 1
            return np.empty(0, dtype=np.int64)
        if self.cache is not None:
            self.cache.put_neighbors(node, neighbors)
        return neighbors

    def _sample_neighbors(self, node: int, fanout: int) -> np.ndarray:
        """Uniformly sample ``fanout`` neighbors of ``node`` with replacement.

        Zero-degree nodes sample themselves (AliGraph's self-loop
        fallback), so layer shapes stay dense.
        """
        neighbors = self._neighbors(node)
        if neighbors.size == 0:
            return np.full(fanout, node, dtype=np.int64)
        if self._selector_takes_weights and self.store.graph.edge_attr is not None:
            start = int(self.store.graph.indptr[node])
            weights = self.store.graph.edge_attr[start : start + neighbors.size]
            return np.asarray(
                self.selector(neighbors, fanout, self.rng, weights=weights),
                dtype=np.int64,
            )
        return np.asarray(
            self.selector(neighbors, fanout, self.rng), dtype=np.int64
        )

    def sample(self, request: SampleRequest) -> SampleResult:
        """Execute a multi-hop sampling request."""
        result = SampleResult()
        roots = request.roots
        if roots.max(initial=-1) >= self.store.graph.num_nodes or roots.min(initial=0) < 0:
            raise GraphError("request roots outside [0, num_nodes)")
        result.layers.append(roots.copy())
        frontier = roots
        width = 1
        for fanout in request.fanouts:
            width *= fanout
            sampled = np.empty((roots.size, width), dtype=np.int64)
            flat = frontier.reshape(roots.size, -1)
            for batch_index in range(roots.size):
                row = [
                    self._sample_neighbors(int(node), fanout)
                    for node in flat[batch_index]
                ]
                sampled[batch_index] = np.concatenate(row)
            result.layers.append(sampled)
            frontier = sampled
        if request.with_attributes:
            result.attributes = [
                self._fetch_attributes(layer) for layer in result.layers
            ]
        return result

    def _fetch_attributes(self, layer: np.ndarray) -> np.ndarray:
        flat = layer.reshape(-1)
        served = np.zeros(flat.size, dtype=bool)
        rows = np.empty((flat.size, self.store.graph.attr_len), dtype=np.float32)
        if self.cache is not None:
            for i, node in enumerate(flat):
                hit = self.cache.get_attributes(int(node))
                if hit is not None:
                    rows[i] = hit
                    served[i] = True
        missing = np.flatnonzero(~served)
        if missing.size:
            rows[missing] = self._fetch_missing(flat[missing])
            if self.cache is not None:
                for i, node in zip(missing, flat[missing]):
                    self.cache.put_attributes(int(node), rows[i])
        return rows.reshape(layer.shape + (self.store.graph.attr_len,))

    def _fetch_missing(self, nodes: np.ndarray) -> np.ndarray:
        """Fetch uncached attribute rows, degrading per node if allowed."""
        if not self.degraded_ok or self.store.reliability is None:
            return self.store.get_attributes(nodes, self.worker_partition)
        # Fetch node-by-node so one dead shard only blanks its own rows
        # (zero vectors), not the whole batch. Per-node fetches record
        # the same access sequence as the batch path.
        rows = np.zeros((nodes.size, self.store.graph.attr_len), dtype=np.float32)
        for i, node in enumerate(nodes):
            try:
                rows[i] = self.store.get_attributes(
                    np.asarray([node], dtype=np.int64), self.worker_partition
                )[0]
            except ReplicaUnavailableError:
                self.degraded_fallbacks += 1
        return rows

    # ------------------------------------------------------ negative sample
    def negative_sample(self, request: NegativeSampleRequest) -> np.ndarray:
        """Sample ``rate`` negatives per pair, rejecting true neighbors.

        Returns an ``(n_pairs, rate)`` array of node IDs that are not
        out-neighbors of the pair's source.
        """
        num_nodes = self.store.graph.num_nodes
        if num_nodes < 2:
            raise ConfigurationError(
                "negative sampling needs at least 2 nodes in the graph"
            )
        out = np.empty((request.pairs.shape[0], request.rate), dtype=np.int64)
        for row, (src, _dst) in enumerate(request.pairs):
            forbidden = set(int(x) for x in self._neighbors(int(src)))
            forbidden.add(int(src))
            filled = 0
            while filled < request.rate:
                draw = int(self.rng.integers(0, num_nodes))
                if draw in forbidden and len(forbidden) < num_nodes:
                    continue
                out[row, filled] = draw
                filled += 1
        return out
