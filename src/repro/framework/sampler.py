"""Reference multi-hop random sampler (the CPU software path).

Implements the AliGraph programming model from Section 2.1: given a
root node ``v``, sample a subset ``S(v)`` of the neighbor set ``N(v)``,
fetch attributes of sampled nodes, and iterate for multiple hops. Also
implements negative sampling (used by link-prediction losses).

This is the functional ground truth the AxE hardware model is checked
against, and the workload generator for the characterization figures.
"""

from __future__ import annotations

import inspect
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, GraphError, ReplicaUnavailableError
from repro.framework.cache import HotNodeCache
from repro.framework.requests import (
    NegativeSampleRequest,
    SampleRequest,
    SampleResult,
)
from repro.framework.kernels import NUMPY_KERNELS, get_kernels
from repro.framework.selectors import get_bucket_selector, select_uniform
from repro.memstore.store import PartitionedStore


class MultiHopSampler:
    """Random multi-hop sampler over a partitioned store.

    Parameters
    ----------
    store:
        The graph store; every structure/attribute access is accounted
        there.
    seed:
        RNG seed for reproducible sampling.
    cache:
        Optional hot-node cache; hits are served without touching the
        store (AliGraph's system-level caching of frequent nodes).
    worker_partition:
        The partition the requesting worker is co-located with; used to
        attribute accesses as local or remote. ``None`` treats all
        accesses as local.
    selector:
        Neighbor-selection strategy ``f(neighbors, fanout, rng)``;
        defaults to uniform-with-replacement. Pass
        :func:`~repro.framework.selectors.select_streaming` to sample
        the way the AxE hardware does.
    degraded_ok:
        When the store's fault-tolerant path declares a shard
        unreachable (every replica dead past the read deadline), fall
        back instead of raising: neighbor reads degrade to the
        self-loop fallback, attribute reads to zero rows. Each fallback
        is counted in ``degraded_fallbacks``. ``False`` (the default)
        propagates :class:`~repro.errors.ReplicaUnavailableError`.
    batched:
        Use the vectorized fast path: per-hop frontier dedup, one
        store batch call per hop, per-degree-bucket selector
        application, batched cache probes. Produces identical
        ``AccessSummary`` totals, cache hit/miss counters, and
        degraded-fallback counts as the per-node walk for the same
        sampled layers, and statistically equivalent sample marginals
        (the RNG consumption order differs, so the draws themselves are
        not stream-identical). ``False`` (the default) keeps the
        historical per-node reference walk bit-for-bit.
    kernels:
        Kernel tier for the batched hot path's array primitives — a
        tier name (``"numpy"``/``"compiled"``/``"auto"``) or a tier
        object from :func:`repro.framework.kernels.get_kernels`.
        ``None`` keeps the reference NumPy tier. Every tier is
        bit-identical (the RNG never leaves NumPy), so this changes
        wall clock only.
    relabeling:
        Optional :class:`repro.memstore.locality.Relabeling` when the
        store's graph was physically renumbered by the locality
        layout: roots are mapped to internal IDs on the way in and
        sampled layers back to original IDs on the way out, so callers
        see original IDs throughout.
    """

    def __init__(
        self,
        store: PartitionedStore,
        seed: int = 0,
        cache: Optional[HotNodeCache] = None,
        worker_partition: Optional[int] = None,
        selector=select_uniform,
        degraded_ok: bool = False,
        batched: bool = False,
        kernels=None,
        relabeling=None,
    ) -> None:
        self.store = store
        self.rng = np.random.default_rng(seed)
        self.cache = cache
        self.worker_partition = worker_partition
        self.selector = selector
        self.degraded_ok = degraded_ok
        self.batched = batched
        self.kernels = NUMPY_KERNELS if kernels is None else get_kernels(kernels)
        self.relabeling = relabeling
        #: Reads completed without data because a shard was unreachable.
        self.degraded_fallbacks = 0
        # Weighted selectors take an extra ``weights`` argument, fed
        # from the graph's per-edge attributes when present.
        self._selector_takes_weights = (
            "weights" in inspect.signature(selector).parameters
        )

    @property
    def fault_stats(self):
        """Store-level retry/hedge counters (``None`` without a
        reliable path configured on the store)."""
        return self.store.fault_stats

    # ------------------------------------------------------------- sampling
    def _neighbors(self, node: int) -> np.ndarray:
        if self.cache is not None:
            hit = self.cache.get_neighbors(node)
            if hit is not None:
                return hit
        try:
            neighbors = self.store.get_neighbors(node, self.worker_partition)
        except ReplicaUnavailableError:
            if not self.degraded_ok:
                raise
            # Degraded completion: treat the node as isolated, which
            # downstream becomes the zero-degree self-loop fallback.
            # The empty list is NOT cached — the shard may come back.
            self.degraded_fallbacks += 1
            return np.empty(0, dtype=np.int64)
        if self.cache is not None:
            self.cache.put_neighbors(node, neighbors)
        return neighbors

    def _sample_neighbors(self, node: int, fanout: int) -> np.ndarray:
        """Uniformly sample ``fanout`` neighbors of ``node`` with replacement.

        Zero-degree nodes sample themselves (AliGraph's self-loop
        fallback), so layer shapes stay dense.
        """
        neighbors = self._neighbors(node)
        if neighbors.size == 0:
            return np.full(fanout, node, dtype=np.int64)
        if self._selector_takes_weights and self.store.graph.edge_attr is not None:
            start = int(self.store.graph.indptr[node])
            weights = self.store.graph.edge_attr[start : start + neighbors.size]
            return np.asarray(
                self.selector(neighbors, fanout, self.rng, weights=weights),
                dtype=np.int64,
            )
        return np.asarray(
            self.selector(neighbors, fanout, self.rng), dtype=np.int64
        )

    def sample(self, request: SampleRequest) -> SampleResult:
        """Execute a multi-hop sampling request.

        The whole request — every hop and the attribute fetches — runs
        under one pinned store view, so on a mutable store a sample
        never observes two epochs even while mutations land between
        hops. On the static store the pin is a no-op.
        """
        with self.store.read_view():
            return self._sample_pinned(request)

    def _sample_pinned(self, request: SampleRequest) -> SampleResult:
        result = SampleResult()
        roots = request.roots
        if roots.max(initial=-1) >= self.store.graph.num_nodes or roots.min(initial=0) < 0:
            raise GraphError("request roots outside [0, num_nodes)")
        if self.relabeling is not None:
            # The store runs in internal layout IDs; callers speak
            # original IDs. Map in here, map every layer back below.
            roots = self.relabeling.to_internal(roots)
        result.layers.append(roots.copy())
        frontier = roots
        width = 1
        for fanout in request.fanouts:
            width *= fanout
            if self.batched:
                flat = frontier.reshape(-1)
                sampled = self._sample_neighbors_batch(flat, fanout).reshape(
                    roots.size, width
                )
            else:
                sampled = np.empty((roots.size, width), dtype=np.int64)
                flat = frontier.reshape(roots.size, -1)
                for batch_index in range(roots.size):
                    row = [
                        self._sample_neighbors(int(node), fanout)
                        for node in flat[batch_index]
                    ]
                    sampled[batch_index] = np.concatenate(row)
            result.layers.append(sampled)
            frontier = sampled
        if request.with_attributes:
            fetch = (
                self._fetch_attributes_batched
                if self.batched
                else self._fetch_attributes
            )
            result.attributes = [fetch(layer) for layer in result.layers]
        if self.relabeling is not None:
            # Attributes were fetched with internal IDs above (same
            # nodes, same rows); only the visible layers need mapping.
            result.layers = [
                self.relabeling.to_original(layer) for layer in result.layers
            ]
        return result

    # ------------------------------------------------------- batched path
    def _sample_neighbors_batch(self, flat: np.ndarray, fanout: int) -> np.ndarray:
        """Sample ``fanout`` neighbors for every frontier position at once.

        The flat frontier is deduplicated, adjacency is gathered in one
        store batch call, and same-degree positions are selected
        together through the bucket variant of the configured selector.
        Zero-degree (and degraded) positions keep the self-loop
        fallback of the per-node walk.
        """
        out = np.empty((flat.size, fanout), dtype=np.int64)
        if flat.size == 0:
            return out
        unique, inverse, counts = np.unique(
            flat, return_inverse=True, return_counts=True
        )
        values, offsets, _served = self._neighbors_batch(unique, counts)
        degrees = offsets[1:] - offsets[:-1]
        position_degrees = degrees[inverse]
        zero = position_degrees == 0
        if zero.any():
            out[zero] = flat[zero, None]
        nonzero = np.flatnonzero(~zero)
        if nonzero.size == 0:
            return out
        graph = self.store.graph
        use_weights = self._selector_takes_weights and graph.edge_attr is not None
        bucket_selector = get_bucket_selector(self.selector)
        if bucket_selector is None:
            # Unknown (custom) selector: apply it per position. The
            # adjacency fetch is still amortized across the frontier.
            for i in nonzero:
                u = inverse[i]
                neighbors = values[offsets[u] : offsets[u + 1]]
                if use_weights:
                    start = int(graph.indptr[unique[u]])
                    weights = graph.edge_attr[start : start + neighbors.size]
                    out[i] = np.asarray(
                        self.selector(neighbors, fanout, self.rng, weights=weights),
                        dtype=np.int64,
                    )
                else:
                    out[i] = np.asarray(
                        self.selector(neighbors, fanout, self.rng), dtype=np.int64
                    )
            return out
        # Group positions by degree so each bucket is a dense (k, d)
        # matrix the vectorized selector consumes in one shot.
        nonzero_degrees = position_degrees[nonzero]
        order = np.argsort(nonzero_degrees, kind="stable")
        sorted_positions = nonzero[order]
        boundaries = np.flatnonzero(np.diff(nonzero_degrees[order])) + 1
        for bucket in np.split(sorted_positions, boundaries):
            d = int(position_degrees[bucket[0]])
            u = inverse[bucket]
            starts = offsets[u]
            matrix = self.kernels.gather_rows(values, starts, d)
            if use_weights:
                edge_starts = graph.indptr[unique[u]].astype(np.int64)
                weights = self.kernels.gather_rows(graph.edge_attr, edge_starts, d)
                out[bucket] = bucket_selector(
                    matrix, fanout, self.rng, weights=weights, kernels=self.kernels
                )
            else:
                out[bucket] = bucket_selector(
                    matrix, fanout, self.rng, kernels=self.kernels
                )
        return out

    def _neighbors_batch(self, unique: np.ndarray, counts: np.ndarray):
        """Adjacency for deduplicated nodes: cache probe + one store batch.

        Returns ``(values, offsets, served)`` in concatenated-CSR form.
        Accounting matches the per-node walk occurrence for occurrence:
        a cached node's ``c`` occurrences are ``c`` hits; an uncached
        node that fetches is 1 miss + ``c - 1`` hits (the walk caches it
        after the first occurrence) and touches the store once; a
        degraded node is never cached, so all ``c`` occurrences miss and
        retry the store.
        """
        if self.cache is None:
            batch = self.store.get_neighbors_batch(
                unique,
                self.worker_partition,
                counts=counts,
                degraded_ok=self.degraded_ok,
            )
            self.degraded_fallbacks += batch.fallbacks
            return batch.values, batch.offsets, batch.served
        arrays: list = [None] * unique.size
        hit_mask = np.zeros(unique.size, dtype=bool)
        for j, node in enumerate(unique):
            hit = self.cache.get_neighbors(int(node))
            if hit is not None:
                arrays[j] = hit
                hit_mask[j] = True
        if hit_mask.any():
            self.cache.bump_neighbor_stats(hits=int((counts[hit_mask] - 1).sum()))
        served = np.ones(unique.size, dtype=bool)
        missing_indices = np.flatnonzero(~hit_mask)
        if missing_indices.size:
            missing = unique[missing_indices]
            missing_counts = counts[missing_indices]
            batch = self.store.get_neighbors_batch(
                missing, self.worker_partition, degraded_ok=self.degraded_ok
            )
            self.degraded_fallbacks += batch.fallbacks
            failed = ~batch.served
            if failed.any():
                # The walk retries (and fails) on every further
                # occurrence of a node it could not cache.
                extra = missing_counts[failed] - 1
                retry_nodes = missing[failed][extra > 0]
                if retry_nodes.size:
                    retry = self.store.get_neighbors_batch(
                        retry_nodes,
                        self.worker_partition,
                        counts=extra[extra > 0],
                        degraded_ok=True,
                    )
                    self.degraded_fallbacks += retry.fallbacks
            self.cache.bump_neighbor_stats(
                hits=int((missing_counts[batch.served] - 1).sum()),
                misses=int((missing_counts[failed] - 1).sum()),
            )
            for position, j in enumerate(missing_indices):
                row = batch[position]
                arrays[j] = row
                served[j] = bool(batch.served[position])
                if served[j]:
                    self.cache.put_neighbors(int(unique[j]), row)
        lengths = np.fromiter(
            (a.size for a in arrays), dtype=np.int64, count=unique.size
        )
        offsets = np.zeros(unique.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        values = (
            np.concatenate(arrays)
            if arrays
            else np.empty(0, dtype=np.int64)
        )
        return values.astype(np.int64, copy=False), offsets, served

    def _fetch_attributes_batched(self, layer: np.ndarray) -> np.ndarray:
        """Batched twin of :meth:`_fetch_attributes` (dedup + one store call).

        Occurrence accounting matches the walk: attribute cache inserts
        happen only after *all* lookups of a layer, so an uncached
        node's ``c`` occurrences are ``c`` misses, and the store is
        touched ``c`` times. Degraded rows stay zero and are never
        cached (see the cache-poisoning regression in the walk path).
        """
        attr_len = self.store.graph.attr_len
        flat = layer.reshape(-1)
        if flat.size == 0:
            return np.empty(layer.shape + (attr_len,), dtype=np.float32)
        unique, inverse, counts = np.unique(
            flat, return_inverse=True, return_counts=True
        )
        rows = np.empty((unique.size, attr_len), dtype=np.float32)
        hit_mask = np.zeros(unique.size, dtype=bool)
        if self.cache is not None:
            for j, node in enumerate(unique):
                hit = self.cache.get_attributes(int(node))
                if hit is not None:
                    rows[j] = hit
                    hit_mask[j] = True
            self.cache.bump_attribute_stats(
                hits=int((counts[hit_mask] - 1).sum()),
                misses=int((counts[~hit_mask] - 1).sum()),
            )
        missing_indices = np.flatnonzero(~hit_mask)
        if missing_indices.size:
            batch = self.store.get_attributes_batch(
                unique[missing_indices],
                self.worker_partition,
                counts=counts[missing_indices],
                degraded_ok=self.degraded_ok,
            )
            self.degraded_fallbacks += batch.fallbacks
            rows[missing_indices] = batch.rows
            if self.cache is not None:
                for position, j in enumerate(missing_indices):
                    if batch.served[position]:
                        self.cache.put_attributes(int(unique[j]), batch.rows[position])
        return rows[inverse].reshape(layer.shape + (attr_len,))

    def _fetch_attributes(self, layer: np.ndarray) -> np.ndarray:
        flat = layer.reshape(-1)
        served = np.zeros(flat.size, dtype=bool)
        rows = np.empty((flat.size, self.store.graph.attr_len), dtype=np.float32)
        if self.cache is not None:
            for i, node in enumerate(flat):
                hit = self.cache.get_attributes(int(node))
                if hit is not None:
                    rows[i] = hit
                    served[i] = True
        missing = np.flatnonzero(~served)
        if missing.size:
            fetched_rows, fetched = self._fetch_missing(flat[missing])
            rows[missing] = fetched_rows
            if self.cache is not None:
                # Cache only rows that were actually fetched: a
                # degraded zero row must not outlive the outage (the
                # shard may come back, and a poisoned entry would keep
                # serving zeros forever).
                for i, node, ok in zip(missing, flat[missing], fetched):
                    if ok:
                        self.cache.put_attributes(int(node), rows[i])
        return rows.reshape(layer.shape + (self.store.graph.attr_len,))

    def _fetch_missing(self, nodes: np.ndarray):
        """Fetch uncached attribute rows, degrading per node if allowed.

        Returns ``(rows, fetched)`` where ``fetched[i]`` is False for
        rows that degraded to zeros (shard unreachable) — those must
        not be cached.
        """
        if not self.degraded_ok or self.store.reliability is None:
            return (
                self.store.get_attributes(nodes, self.worker_partition),
                np.ones(nodes.size, dtype=bool),
            )
        # Fetch node-by-node so one dead shard only blanks its own rows
        # (zero vectors), not the whole batch. Per-node fetches record
        # the same access sequence as the batch path.
        rows = np.zeros((nodes.size, self.store.graph.attr_len), dtype=np.float32)
        fetched = np.zeros(nodes.size, dtype=bool)
        for i, node in enumerate(nodes):
            try:
                rows[i] = self.store.get_attributes(
                    np.asarray([node], dtype=np.int64), self.worker_partition
                )[0]
                fetched[i] = True
            except ReplicaUnavailableError:
                self.degraded_fallbacks += 1
        return rows, fetched

    # ------------------------------------------------------ negative sample
    def negative_sample(self, request: NegativeSampleRequest) -> np.ndarray:
        """Sample ``rate`` negatives per pair, rejecting true neighbors.

        Returns an ``(n_pairs, rate)`` array of node IDs that are not
        out-neighbors of the pair's source.
        """
        with self.store.read_view():
            return self._negative_sample_pinned(request)

    def _negative_sample_pinned(self, request: NegativeSampleRequest) -> np.ndarray:
        num_nodes = self.store.graph.num_nodes
        if num_nodes < 2:
            raise ConfigurationError(
                "negative sampling needs at least 2 nodes in the graph"
            )
        rate = request.rate
        pairs = request.pairs
        if self.relabeling is not None:
            # Rejection runs in internal space (uniform over internal
            # IDs is uniform over nodes); results map back at the end.
            pairs = self.relabeling.to_internal(pairs)
        out = np.empty((pairs.shape[0], rate), dtype=np.int64)
        # RNG consumption is row-by-row in pair order, drawn in
        # rejection blocks per row; the draw stream therefore differs
        # from the historical one-draw-at-a-time loop, but each row is
        # still an independent uniform rejection sampler over the
        # non-neighbor set.
        for row, (src, _dst) in enumerate(pairs):
            src = int(src)
            forbidden = np.union1d(
                self._neighbors(src), np.asarray([src], dtype=np.int64)
            )
            if forbidden.size >= num_nodes:
                # Every node is forbidden: keep the historical escape of
                # accepting any draw rather than looping forever.
                out[row] = self.rng.integers(0, num_nodes, size=rate)
                continue
            accept_p = 1.0 - forbidden.size / num_nodes
            filled = 0
            while filled < rate:
                need = rate - filled
                # Oversize the block by the expected rejection rate so
                # high-degree sources converge in O(1) rounds instead
                # of degenerating draw-by-draw.
                block = min(
                    max(need * 2, int(need / accept_p) + 1),
                    max(4 * rate, 1024),
                )
                draws = self.rng.integers(0, num_nodes, size=block)
                accepted = draws[~np.isin(draws, forbidden)]
                take = min(accepted.size, need)
                out[row, filled : filled + take] = accepted[:take]
                filled += take
        if self.relabeling is not None:
            out = self.relabeling.to_original(out)
        return out
