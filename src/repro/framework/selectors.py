"""Neighbor-selection strategies shared by software and hardware samplers.

Two strategies matter to the paper:

* :func:`select_uniform` — the conventional method: sample K of N
  uniformly with replacement (the software baseline; in hardware this
  needs N candidate storage and N+K cycles).
* :func:`select_streaming` — the paper's Tech-2 step-based approximate
  random sampling: split the incoming stream of N candidates into K
  contiguous groups and pick one uniform element per group. Needs no
  candidate storage, completes in N cycles, and is statistically close
  enough to uniform that model accuracy is unaffected (0.548 vs 0.549
  on PPI in the paper).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


def select_uniform(
    neighbors: np.ndarray, fanout: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniformly sample ``fanout`` entries of ``neighbors`` with replacement."""
    neighbors = np.asarray(neighbors)
    if fanout <= 0:
        raise ConfigurationError(f"fanout must be positive, got {fanout}")
    if neighbors.size == 0:
        raise ConfigurationError("cannot sample from an empty neighbor list")
    picks = rng.integers(0, neighbors.size, size=fanout)
    return neighbors[picks]


def select_streaming(
    neighbors: np.ndarray, fanout: int, rng: np.random.Generator
) -> np.ndarray:
    """Step-based streaming sampling (Tech-2).

    The N candidates are divided into ``fanout`` groups *in arrival
    order*; one uniformly random element is selected from each group.
    When N < fanout, the stream wraps (each pass contributes its
    elements again), matching the hardware's with-replacement padding.
    """
    neighbors = np.asarray(neighbors)
    if fanout <= 0:
        raise ConfigurationError(f"fanout must be positive, got {fanout}")
    n = neighbors.size
    if n == 0:
        raise ConfigurationError("cannot sample from an empty neighbor list")
    out = np.empty(fanout, dtype=neighbors.dtype)
    # Group boundaries: group g covers [g*n//fanout, (g+1)*n//fanout) for
    # n >= fanout; degenerate groups (when n < fanout) pick uniformly
    # from the whole list, which is what the wrapped stream converges to.
    for group in range(fanout):
        start = group * n // fanout
        stop = (group + 1) * n // fanout
        if stop <= start:
            pick = int(rng.integers(0, n))
        else:
            pick = int(rng.integers(start, stop))
        out[group] = neighbors[pick]
    return out


def select_weighted(
    neighbors: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Weighted sampling with replacement (edge-weight / degree-based).

    ``weights`` defaults to uniform; degree-based sampling passes each
    neighbor's degree. This is the software reference the streaming
    variant approximates.
    """
    neighbors = np.asarray(neighbors)
    if fanout <= 0:
        raise ConfigurationError(f"fanout must be positive, got {fanout}")
    if neighbors.size == 0:
        raise ConfigurationError("cannot sample from an empty neighbor list")
    if weights is None:
        return select_uniform(neighbors, fanout, rng)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != neighbors.shape:
        raise ConfigurationError(
            f"weights shape {weights.shape} != neighbors shape {neighbors.shape}"
        )
    if (weights < 0).any() or weights.sum() <= 0:
        raise ConfigurationError("weights must be non-negative with positive sum")
    probabilities = weights / weights.sum()
    picks = rng.choice(neighbors.size, size=fanout, replace=True, p=probabilities)
    return neighbors[picks]


def select_streaming_weighted(
    neighbors: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Streaming weighted sampling: one weighted pick per group.

    The hardware extension of Tech-2 the paper alludes to ("[random
    sampling] is the base for many other sampling methods, such as
    degree-based sampling"): each contiguous group keeps a running
    weighted reservoir of size 1 (A-ES style), so it still needs no
    candidate storage and completes in N cycles.
    """
    neighbors = np.asarray(neighbors)
    if fanout <= 0:
        raise ConfigurationError(f"fanout must be positive, got {fanout}")
    n = neighbors.size
    if n == 0:
        raise ConfigurationError("cannot sample from an empty neighbor list")
    if weights is None:
        return select_streaming(neighbors, fanout, rng)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != neighbors.shape:
        raise ConfigurationError(
            f"weights shape {weights.shape} != neighbors shape {neighbors.shape}"
        )
    if (weights < 0).any() or weights.sum() <= 0:
        raise ConfigurationError("weights must be non-negative with positive sum")
    out = np.empty(fanout, dtype=neighbors.dtype)
    for group in range(fanout):
        start = group * n // fanout
        stop = (group + 1) * n // fanout
        if stop <= start:
            start, stop = 0, n
        group_weights = weights[start:stop]
        total = group_weights.sum()
        if total <= 0:
            pick = int(rng.integers(start, stop))
        else:
            pick = start + int(
                rng.choice(stop - start, p=group_weights / total)
            )
        out[group] = neighbors[pick]
    return out


SELECTORS = {
    "uniform": select_uniform,
    "streaming": select_streaming,
    "weighted": select_weighted,
    "streaming_weighted": select_streaming_weighted,
}


def get_selector(name: str):
    """Look up a neighbor-selection strategy by name."""
    try:
        return SELECTORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown selector {name!r}; expected one of {sorted(SELECTORS)}"
        ) from None
