"""Neighbor-selection strategies shared by software and hardware samplers.

Two strategies matter to the paper:

* :func:`select_uniform` — the conventional method: sample K of N
  uniformly with replacement (the software baseline; in hardware this
  needs N candidate storage and N+K cycles).
* :func:`select_streaming` — the paper's Tech-2 step-based approximate
  random sampling: split the incoming stream of N candidates into K
  contiguous groups and pick one uniform element per group. Needs no
  candidate storage, completes in N cycles, and is statistically close
  enough to uniform that model accuracy is unaffected (0.548 vs 0.549
  on PPI in the paper).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.framework.kernels import (
    NUMPY_KERNELS,
    get_kernels,
    rowwise_weighted_picks,
)


def select_uniform(
    neighbors: np.ndarray, fanout: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniformly sample ``fanout`` entries of ``neighbors`` with replacement."""
    neighbors = np.asarray(neighbors)
    if fanout <= 0:
        raise ConfigurationError(f"fanout must be positive, got {fanout}")
    if neighbors.size == 0:
        raise ConfigurationError("cannot sample from an empty neighbor list")
    picks = rng.integers(0, neighbors.size, size=fanout)
    return neighbors[picks]


def select_streaming(
    neighbors: np.ndarray, fanout: int, rng: np.random.Generator
) -> np.ndarray:
    """Step-based streaming sampling (Tech-2).

    The N candidates are divided into ``fanout`` groups *in arrival
    order*; one uniformly random element is selected from each group.
    When N < fanout, the stream wraps (each pass contributes its
    elements again), matching the hardware's with-replacement padding.
    """
    neighbors = np.asarray(neighbors)
    if fanout <= 0:
        raise ConfigurationError(f"fanout must be positive, got {fanout}")
    n = neighbors.size
    if n == 0:
        raise ConfigurationError("cannot sample from an empty neighbor list")
    out = np.empty(fanout, dtype=neighbors.dtype)
    # Group boundaries: group g covers [g*n//fanout, (g+1)*n//fanout) for
    # n >= fanout; degenerate groups (when n < fanout) pick uniformly
    # from the whole list, which is what the wrapped stream converges to.
    for group in range(fanout):
        start = group * n // fanout
        stop = (group + 1) * n // fanout
        if stop <= start:
            pick = int(rng.integers(0, n))
        else:
            pick = int(rng.integers(start, stop))
        out[group] = neighbors[pick]
    return out


def select_weighted(
    neighbors: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Weighted sampling with replacement (edge-weight / degree-based).

    ``weights`` defaults to uniform; degree-based sampling passes each
    neighbor's degree. This is the software reference the streaming
    variant approximates.
    """
    neighbors = np.asarray(neighbors)
    if fanout <= 0:
        raise ConfigurationError(f"fanout must be positive, got {fanout}")
    if neighbors.size == 0:
        raise ConfigurationError("cannot sample from an empty neighbor list")
    if weights is None:
        return select_uniform(neighbors, fanout, rng)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != neighbors.shape:
        raise ConfigurationError(
            f"weights shape {weights.shape} != neighbors shape {neighbors.shape}"
        )
    if (weights < 0).any() or weights.sum() <= 0:
        raise ConfigurationError("weights must be non-negative with positive sum")
    probabilities = weights / weights.sum()
    picks = rng.choice(neighbors.size, size=fanout, replace=True, p=probabilities)
    return neighbors[picks]


def select_streaming_weighted(
    neighbors: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Streaming weighted sampling: one weighted pick per group.

    The hardware extension of Tech-2 the paper alludes to ("[random
    sampling] is the base for many other sampling methods, such as
    degree-based sampling"): each contiguous group keeps a running
    weighted reservoir of size 1 (A-ES style), so it still needs no
    candidate storage and completes in N cycles.
    """
    neighbors = np.asarray(neighbors)
    if fanout <= 0:
        raise ConfigurationError(f"fanout must be positive, got {fanout}")
    n = neighbors.size
    if n == 0:
        raise ConfigurationError("cannot sample from an empty neighbor list")
    if weights is None:
        return select_streaming(neighbors, fanout, rng)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != neighbors.shape:
        raise ConfigurationError(
            f"weights shape {weights.shape} != neighbors shape {neighbors.shape}"
        )
    if (weights < 0).any() or weights.sum() <= 0:
        raise ConfigurationError("weights must be non-negative with positive sum")
    out = np.empty(fanout, dtype=neighbors.dtype)
    for group in range(fanout):
        start = group * n // fanout
        stop = (group + 1) * n // fanout
        if stop <= start:
            start, stop = 0, n
        group_weights = weights[start:stop]
        total = group_weights.sum()
        if total <= 0:
            pick = int(rng.integers(start, stop))
        else:
            pick = start + int(
                rng.choice(stop - start, p=group_weights / total)
            )
        out[group] = neighbors[pick]
    return out


# --------------------------------------------------------------- batched
# Bucket variants: the batched sampler groups frontier positions by
# degree, so each variant selects for a whole ``(k, d)`` matrix of
# same-degree neighbor lists at once. They draw from the same RNG with
# the same per-row distributions as their scalar counterparts, but the
# *consumption order* differs (row-blocked instead of per node), so the
# equivalence contract is statistical, not stream-identical.


def _validate_bucket(matrix: np.ndarray, fanout: int) -> None:
    if fanout <= 0:
        raise ConfigurationError(f"fanout must be positive, got {fanout}")
    if matrix.ndim != 2 or matrix.shape[1] == 0:
        raise ConfigurationError(
            f"bucket matrix must be (k, d) with d > 0, got shape {matrix.shape}"
        )


def _validate_bucket_weights(matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != matrix.shape:
        raise ConfigurationError(
            f"weights shape {weights.shape} != matrix shape {matrix.shape}"
        )
    if (weights < 0).any() or (weights.sum(axis=1) <= 0).any():
        raise ConfigurationError("weights must be non-negative with positive sum")
    return weights


# Canonical implementation lives in the kernel tier so the compiled
# variant has a single reference to match bit for bit; re-exported under
# the historical private name for the tests that call it directly.
_rowwise_weighted_picks = rowwise_weighted_picks


def select_uniform_bucket(
    matrix: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
    kernels=None,
) -> np.ndarray:
    """Batched :func:`select_uniform`: sample each row of ``matrix``."""
    matrix = np.asarray(matrix)
    _validate_bucket(matrix, fanout)
    kernels = NUMPY_KERNELS if kernels is None else get_kernels(kernels)
    picks = rng.integers(0, matrix.shape[1], size=(matrix.shape[0], fanout))
    return kernels.take_picks(matrix, picks)


def select_streaming_bucket(
    matrix: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
    kernels=None,
) -> np.ndarray:
    """Batched :func:`select_streaming`: one pick per group per row."""
    matrix = np.asarray(matrix)
    _validate_bucket(matrix, fanout)
    kernels = NUMPY_KERNELS if kernels is None else get_kernels(kernels)
    k, n = matrix.shape
    all_picks = np.empty((k, fanout), dtype=np.int64)
    for group in range(fanout):
        start = group * n // fanout
        stop = (group + 1) * n // fanout
        if stop <= start:
            all_picks[:, group] = rng.integers(0, n, size=k)
        else:
            all_picks[:, group] = rng.integers(start, stop, size=k)
    return kernels.take_picks(matrix, all_picks)


def select_weighted_bucket(
    matrix: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
    weights: Optional[np.ndarray] = None,
    kernels=None,
) -> np.ndarray:
    """Batched :func:`select_weighted` over a ``(k, d)`` weight matrix."""
    matrix = np.asarray(matrix)
    _validate_bucket(matrix, fanout)
    if weights is None:
        return select_uniform_bucket(matrix, fanout, rng, kernels=kernels)
    kernels = NUMPY_KERNELS if kernels is None else get_kernels(kernels)
    weights = _validate_bucket_weights(matrix, weights)
    cdf = np.cumsum(weights / weights.sum(axis=1, keepdims=True), axis=1)
    draws = rng.random((matrix.shape[0], fanout))
    picks = kernels.rowwise_weighted_picks(cdf, draws)
    return kernels.take_picks(matrix, picks)


def select_streaming_weighted_bucket(
    matrix: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
    weights: Optional[np.ndarray] = None,
    kernels=None,
) -> np.ndarray:
    """Batched :func:`select_streaming_weighted`: weighted pick per group."""
    matrix = np.asarray(matrix)
    _validate_bucket(matrix, fanout)
    if weights is None:
        return select_streaming_bucket(matrix, fanout, rng, kernels=kernels)
    kernels = NUMPY_KERNELS if kernels is None else get_kernels(kernels)
    weights = _validate_bucket_weights(matrix, weights)
    k, n = matrix.shape
    all_picks = np.empty((k, fanout), dtype=np.int64)
    for group in range(fanout):
        start = group * n // fanout
        stop = (group + 1) * n // fanout
        if stop <= start:
            start, stop = 0, n
        group_weights = weights[:, start:stop]
        totals = group_weights.sum(axis=1)
        picks = np.empty(k, dtype=np.int64)
        weighted = totals > 0
        if weighted.any():
            cdf = np.cumsum(
                group_weights[weighted] / totals[weighted, None], axis=1
            )
            draws = rng.random((int(weighted.sum()), 1))
            picks[weighted] = kernels.rowwise_weighted_picks(cdf, draws)[:, 0]
        if (~weighted).any():
            picks[~weighted] = rng.integers(
                0, stop - start, size=int((~weighted).sum())
            )
        all_picks[:, group] = start + picks
    return kernels.take_picks(matrix, all_picks)


#: Scalar selector -> its vectorized bucket variant. Custom selectors
#: without an entry fall back to per-position scalar application in the
#: batched sampler (the fetch is still amortized).
BUCKET_SELECTORS = {
    select_uniform: select_uniform_bucket,
    select_streaming: select_streaming_bucket,
    select_weighted: select_weighted_bucket,
    select_streaming_weighted: select_streaming_weighted_bucket,
}


def get_bucket_selector(selector):
    """Bucket variant of a scalar selector, or ``None`` if unknown."""
    return BUCKET_SELECTORS.get(selector)


SELECTORS = {
    "uniform": select_uniform,
    "streaming": select_streaming,
    "weighted": select_weighted,
    "streaming_weighted": select_streaming_weighted,
}


def get_selector(name: str):
    """Look up a neighbor-selection strategy by name."""
    try:
        return SELECTORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown selector {name!r}; expected one of {sorted(SELECTORS)}"
        ) from None
