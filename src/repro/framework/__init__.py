"""AliGraph-style sampling framework substrate: servers, workers, sampler."""

from repro.framework.requests import NegativeSampleRequest, SampleRequest, SampleResult
from repro.framework.sampler import MultiHopSampler
from repro.framework.cache import HotNodeCache
from repro.framework.cpu_model import CpuSamplingModel, WorkloadShape
from repro.framework.cluster import ClusterModel, ScalingPoint
from repro.framework.tracing import characterize_access_mix
from repro.framework.selectors import (
    get_bucket_selector,
    get_selector,
    select_streaming,
    select_uniform,
)
from repro.framework.kernels import (
    NUMPY_KERNELS,
    compiled_available,
    default_kernels,
    get_kernels,
    set_default_kernels,
)
from repro.framework.service import ServiceConfig, ServiceReport, run_service
from repro.framework.export import batch_nbytes, load_batch, save_batch
from repro.framework.replay import ReplaySelector, replay_reference

__all__ = [
    "NegativeSampleRequest",
    "SampleRequest",
    "SampleResult",
    "MultiHopSampler",
    "HotNodeCache",
    "CpuSamplingModel",
    "WorkloadShape",
    "ClusterModel",
    "ScalingPoint",
    "characterize_access_mix",
    "get_bucket_selector",
    "get_selector",
    "NUMPY_KERNELS",
    "compiled_available",
    "default_kernels",
    "get_kernels",
    "set_default_kernels",
    "ReplaySelector",
    "replay_reference",
    "select_streaming",
    "select_uniform",
    "ServiceConfig",
    "ServiceReport",
    "run_service",
    "batch_nbytes",
    "load_batch",
    "save_batch",
]
