"""Replay a batched sampling result through the reference walk.

The batched fast path and the per-node reference walk consume the RNG
in different orders, so two live runs sample different layers and their
``AccessSummary`` totals legitimately differ (ID-block bytes depend on
which nodes got sampled). The equivalence contract is therefore stated
*conditionally*: for any fixed sampled layers, the batched path's
accounting — access counts, bytes, locality split, cache hit/miss
counters, degraded fallbacks — is identical to the reference walk's.

This module checks that contract mechanically: :class:`ReplaySelector`
feeds the batched result's own picks back through
:class:`~repro.framework.sampler.MultiHopSampler`'s per-node walk, so
the walk reproduces the exact same layers and its store/cache counters
can be compared 1:1 with the batched run's. Tests, the benchmark, and
``repro bench-sampler`` all lean on it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.framework.cache import HotNodeCache
from repro.framework.requests import SampleRequest, SampleResult
from repro.framework.sampler import MultiHopSampler
from repro.graph.csr import CSRGraph
from repro.memstore.store import PartitionedStore


def _parent_degrees(graph, parents: np.ndarray) -> np.ndarray:
    """Out-degrees of ``parents`` on a CSR graph or a dynamic GraphView.

    ``neighbor_slices`` is the vectorized CSR path; snapshot views
    (whose adjacency spans base + append log) expose ``degree`` only.
    """
    if hasattr(graph, "neighbor_slices"):
        starts, stops = graph.neighbor_slices(parents)
        return stops - starts
    return np.fromiter(
        (graph.degree(int(p)) for p in parents),
        dtype=np.int64,
        count=parents.size,
    )


class ReplaySelector:
    """Selector that replays a prior result's picks in walk order.

    The reference walk consults its selector once per frontier position
    with a non-empty neighbor list, hop by hop in flat row-major order;
    zero-degree positions take the self-loop fallback without a
    selector call. This selector precomputes that call sequence from
    ``result`` and hands each call its recorded row of picks, ignoring
    the RNG. It deliberately has no ``weights`` parameter, so the
    walk's weighted branch is bypassed.
    """

    def __init__(
        self,
        result: SampleResult,
        request: SampleRequest,
        graph: CSRGraph,
        relabeling=None,
    ) -> None:
        self._rows = []
        for hop, fanout in enumerate(request.fanouts):
            parents = result.layers[hop].reshape(-1)
            picks = result.layers[hop + 1].reshape(parents.size, fanout)
            if relabeling is not None:
                # Recorded layers are in original IDs; the walk (and
                # ``graph``) run in the relabeled internal space.
                parents = relabeling.to_internal(parents)
                picks = relabeling.to_internal(picks)
            degrees = _parent_degrees(graph, parents)
            for i in np.flatnonzero(degrees > 0):
                self._rows.append(picks[i].astype(np.int64))
        self._cursor = 0

    def __call__(
        self, neighbors: np.ndarray, fanout: int, rng: np.random.Generator
    ) -> np.ndarray:
        if self._cursor >= len(self._rows):
            raise ConfigurationError(
                "replay exhausted: the walk consulted the selector more "
                "often than the recorded result did"
            )
        row = self._rows[self._cursor]
        self._cursor += 1
        if row.size != fanout:
            raise ConfigurationError(
                f"replay fanout mismatch: recorded {row.size}, walk asked {fanout}"
            )
        return row


def replay_reference(
    result: SampleResult,
    request: SampleRequest,
    store: PartitionedStore,
    worker_partition: Optional[int] = None,
    cache: Optional[HotNodeCache] = None,
    relabeling=None,
) -> SampleResult:
    """Re-run the reference walk pinned to ``result``'s sampled layers.

    ``store`` should be a fresh store over the same graph/partitioner
    (and typically no reliability path — replay assumes every position's
    neighbor list has its full graph degree, which degraded completions
    violate). When the result was sampled through a locality layout,
    pass the same ``relabeling`` so the recorded original-ID layers are
    replayed against the internal-ID store. After this returns,
    ``store.summary`` and ``cache`` counters hold exactly what the
    per-node reference walk charges for those layers, ready to compare
    against the batched run's.
    """
    selector = ReplaySelector(result, request, store.graph, relabeling=relabeling)
    sampler = MultiHopSampler(
        store,
        seed=0,
        cache=cache,
        worker_partition=worker_partition,
        selector=selector,
        relabeling=relabeling,
    )
    replayed = sampler.sample(request)
    for recorded, walked in zip(result.layers, replayed.layers):
        if not np.array_equal(recorded, walked):
            raise ConfigurationError(
                "replay diverged from the recorded layers; the result was "
                "not produced on this graph"
            )
    return replayed
