"""Export/import sampled mini-batches.

The decoupled 2-step workflow hands sampled subgraphs from the sampling
tier to the NN tier; in deployments those cross process/machine
boundaries. This module serializes :class:`SampleResult` batches to
``.npz`` (and back), so sampling output can feed external trainers or
be archived for replay.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.framework.requests import SampleResult


def save_batch(result: SampleResult, path: Union[str, Path]) -> None:
    """Serialize one sampled batch to an ``.npz`` file."""
    if not result.layers:
        raise ConfigurationError("cannot export an empty SampleResult")
    arrays = {"num_layers": np.asarray(len(result.layers))}
    for index, layer in enumerate(result.layers):
        arrays[f"layer_{index}"] = layer
    arrays["has_attributes"] = np.asarray(result.attributes is not None)
    if result.attributes is not None:
        if len(result.attributes) != len(result.layers):
            raise ConfigurationError(
                "attributes must align with layers for export"
            )
        for index, attr in enumerate(result.attributes):
            arrays[f"attr_{index}"] = attr
    np.savez_compressed(str(path), **arrays)


def load_batch(path: Union[str, Path]) -> SampleResult:
    """Inverse of :func:`save_batch`."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no such batch file: {path}")
    with np.load(str(path)) as data:
        num_layers = int(data["num_layers"])
        layers: List[np.ndarray] = [
            data[f"layer_{index}"] for index in range(num_layers)
        ]
        attributes = None
        if bool(data["has_attributes"]):
            attributes = [data[f"attr_{index}"] for index in range(num_layers)]
    return SampleResult(layers=layers, attributes=attributes)


def batch_nbytes(result: SampleResult) -> int:
    """In-memory bytes of one sampled batch (IDs + attributes).

    This is the per-batch volume the output IO channel carries — the
    quantity the PoC's PCIe bottleneck and the Table 12 GPU rule are
    denominated in.
    """
    total = sum(layer.nbytes for layer in result.layers)
    if result.attributes is not None:
        total += sum(attr.nbytes for attr in result.attributes)
    return int(total)
