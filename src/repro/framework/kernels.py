"""Optional compiled kernel tier for the batched sampler hot path.

The paper's Figure 2 (and "Exploring Memory Access Patterns for Graph
Processing Accelerators") argue the sampler wall is memory behavior,
not FLOPs — but once the locality layout removes the cache misses, the
remaining cost of the software path is Python/NumPy dispatch on three
small primitives: hop expansion (dense adjacency gathers), inverse-CDF
weighted picks, and segment reductions. This module packages those
primitives as swappable *kernel tiers*:

* :class:`NumpyKernels` — the mandatory reference tier. Pure NumPy,
  always available, and the ground truth every other tier must match
  bit for bit (checked by the replay harness and the parity tests).
* the ``compiled`` tier — ``numba``-jitted loops, import-guarded: the
  dependency is optional and its absence is recorded, never fatal.
  Kernels consume pre-drawn uniforms and never touch the RNG, so the
  compiled tier is deterministic and byte-identical to NumPy by
  construction (same floating-point operations in the same order).

Select a tier with :func:`get_kernels`: ``"numpy"`` (reference),
``"compiled"`` (numba; raises when unavailable), or ``"auto"``
(compiled when importable, else the reference tier).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError


def rowwise_weighted_picks(cdf: np.ndarray, draws: np.ndarray) -> np.ndarray:
    """Inverse-CDF picks for many rows with one searchsorted call.

    ``cdf`` is ``(k, d)`` row-normalized cumulative weights in [0, 1];
    ``draws`` is ``(k, m)`` uniforms. Each row's CDF is shifted by
    ``2 * row`` so all rows live on one strictly increasing axis.

    Zero-weight entries are unpickable: ``side="right"`` skips interior
    plateaus (a draw landing exactly on a plateau value resolves past
    it), and picks are clamped to each row's *last nonzero-weight*
    index — a trailing zero-weight run produces CDF entries exactly
    equal to the row total, so a draw landing on (or rounding past) the
    final plateau must resolve to the entry that completed the mass,
    not to ``d - 1``.
    """
    k, d = cdf.shape
    shift = 2.0 * np.arange(k, dtype=np.float64)[:, None]
    flat_cdf = (cdf + shift).ravel()
    flat_draws = (draws + shift).ravel()
    picks = np.searchsorted(flat_cdf, flat_draws, side="right")
    picks = picks.reshape(draws.shape) - np.arange(k)[:, None] * d
    # First index reaching the row total == last pickable entry
    # (trailing zero weights add exactly 0.0, preserving the value).
    last_pickable = np.argmax(cdf == cdf[:, -1:], axis=1)[:, None]
    return np.clip(picks, 0, last_pickable)


class NumpyKernels:
    """Reference kernel tier: pure NumPy, always available.

    Every other tier must be bit-identical to this one — the replay
    harness (:mod:`repro.framework.replay`) states the accounting
    contract against the layers these kernels produce.
    """

    name = "numpy"
    compiled = False

    rowwise_weighted_picks = staticmethod(rowwise_weighted_picks)

    @staticmethod
    def gather_rows(
        values: np.ndarray, starts: np.ndarray, width: int
    ) -> np.ndarray:
        """Hop expansion: gather ``width`` consecutive entries per start.

        Builds the dense ``(k, width)`` bucket matrix the vectorized
        selectors consume — row ``i`` is
        ``values[starts[i] : starts[i] + width]``.
        """
        starts = np.asarray(starts, dtype=np.int64)
        return values[starts[:, None] + np.arange(width)]

    @staticmethod
    def take_picks(matrix: np.ndarray, picks: np.ndarray) -> np.ndarray:
        """Row-wise gather: ``out[i, j] = matrix[i, picks[i, j]]``."""
        return np.take_along_axis(matrix, picks, axis=1)

    @staticmethod
    def segment_sum(
        values: np.ndarray, segment_ids: np.ndarray, num_segments: int
    ) -> np.ndarray:
        """Scatter-add rows into ``num_segments`` buckets.

        ``np.add.at`` is an unbuffered scatter-add, so duplicate segment
        IDs accumulate; empty segments are zero.
        """
        out = np.zeros((num_segments,) + values.shape[1:], dtype=values.dtype)
        np.add.at(out, segment_ids, values)
        return out

    @staticmethod
    def ragged_segment_sum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """Sum contiguous ragged segments (CSR-adjacency reduction).

        Row ``i`` covers ``values[offsets[i]:offsets[i + 1]]``; empty
        segments are zero. ``reduceat`` misbehaves on empty segments and
        rejects a start index equal to ``len(values)``, so the reduction
        runs over non-empty segments only and scatters back.
        """
        num_segments = offsets.size - 1
        out = np.zeros((num_segments,) + values.shape[1:], dtype=values.dtype)
        if values.shape[0] == 0 or num_segments == 0:
            return out
        lengths = np.diff(offsets)
        nonempty = np.flatnonzero(lengths > 0)
        if nonempty.size:
            out[nonempty] = np.add.reduceat(values, offsets[nonempty], axis=0)
        return out


#: Lazily constructed compiled tier (or the recorded import failure).
_COMPILED_TIER: Optional["_CompiledKernels"] = None
_COMPILED_ERROR: Optional[str] = None


def _load_compiled():
    """Import-guarded constructor for the numba tier.

    A missing/broken numba is recorded in ``_COMPILED_ERROR`` (surfaced
    through :func:`compiled_unavailable_reason`), never raised from
    here — ``"auto"`` callers fall back to the reference tier.
    """
    global _COMPILED_TIER, _COMPILED_ERROR
    if _COMPILED_TIER is not None or _COMPILED_ERROR is not None:
        return _COMPILED_TIER
    try:
        import numba
    except ImportError as exc:
        _COMPILED_ERROR = f"numba unavailable: {exc}"
        return None
    try:
        _COMPILED_TIER = _CompiledKernels(numba)
    except Exception as exc:  # jit compilation failure: record, fall back
        _COMPILED_ERROR = f"numba kernel compilation failed: {exc}"
        return None
    return _COMPILED_TIER


def compiled_available() -> bool:
    """Whether the compiled (numba) tier can be constructed."""
    return _load_compiled() is not None


def compiled_unavailable_reason() -> Optional[str]:
    """Why the compiled tier is unavailable (``None`` when it is)."""
    _load_compiled()
    return _COMPILED_ERROR


class _CompiledKernels:
    """numba-jitted tier; byte-identical to :class:`NumpyKernels`.

    Kernels are pure functions of arrays (all randomness is pre-drawn
    by the caller), and each loop performs the same floating-point
    operations in the same order as its NumPy twin, so results match
    bit for bit — the parity tests and the replay harness enforce it.
    Shapes/dtypes outside the jitted signatures fall back to the
    reference tier.
    """

    name = "compiled"
    compiled = True

    def __init__(self, numba) -> None:
        njit = numba.njit

        @njit(cache=True)
        def _picks(cdf, draws):
            k, d = cdf.shape
            m = draws.shape[1]
            out = np.empty((k, m), dtype=np.int64)
            for r in range(k):
                total = cdf[r, d - 1]
                last = d - 1
                for j in range(d):
                    if cdf[r, j] == total:
                        last = j
                        break
                for c in range(m):
                    x = draws[r, c]
                    # searchsorted(cdf[r], x, side="right")
                    lo, hi = 0, d
                    while lo < hi:
                        mid = (lo + hi) // 2
                        if cdf[r, mid] <= x:
                            lo = mid + 1
                        else:
                            hi = mid
                    pick = lo
                    if pick > last:
                        pick = last
                    out[r, c] = pick
            return out

        @njit(cache=True)
        def _gather_rows(values, starts, width):
            k = starts.shape[0]
            out = np.empty((k, width), dtype=values.dtype)
            for i in range(k):
                s = starts[i]
                for j in range(width):
                    out[i, j] = values[s + j]
            return out

        @njit(cache=True)
        def _take_picks(matrix, picks):
            k, m = picks.shape
            out = np.empty((k, m), dtype=matrix.dtype)
            for i in range(k):
                for j in range(m):
                    out[i, j] = matrix[i, picks[i, j]]
            return out

        @njit(cache=True)
        def _segment_sum_2d(values, segment_ids, num_segments):
            out = np.zeros((num_segments, values.shape[1]), dtype=values.dtype)
            for i in range(values.shape[0]):
                s = segment_ids[i]
                for j in range(values.shape[1]):
                    out[s, j] += values[i, j]
            return out

        @njit(cache=True)
        def _ragged_segment_sum_2d(values, offsets):
            num_segments = offsets.shape[0] - 1
            out = np.zeros((num_segments, values.shape[1]), dtype=values.dtype)
            for i in range(num_segments):
                for r in range(offsets[i], offsets[i + 1]):
                    for j in range(values.shape[1]):
                        out[i, j] += values[r, j]
            return out

        self._picks = _picks
        self._gather_rows = _gather_rows
        self._take_picks = _take_picks
        self._segment_sum_2d = _segment_sum_2d
        self._ragged_segment_sum_2d = _ragged_segment_sum_2d
        # Compile eagerly so a broken numba surfaces at construction
        # (recorded by _load_compiled), not mid-sample.
        self._picks(
            np.array([[1.0]], dtype=np.float64), np.array([[0.5]], dtype=np.float64)
        )

    def rowwise_weighted_picks(
        self, cdf: np.ndarray, draws: np.ndarray
    ) -> np.ndarray:
        return self._picks(
            np.ascontiguousarray(cdf, dtype=np.float64),
            np.ascontiguousarray(draws, dtype=np.float64),
        )

    def gather_rows(
        self, values: np.ndarray, starts: np.ndarray, width: int
    ) -> np.ndarray:
        if values.ndim != 1:
            return NumpyKernels.gather_rows(values, starts, width)
        return self._gather_rows(
            np.ascontiguousarray(values),
            np.ascontiguousarray(starts, dtype=np.int64),
            width,
        )

    def take_picks(self, matrix: np.ndarray, picks: np.ndarray) -> np.ndarray:
        if matrix.ndim != 2 or picks.ndim != 2:
            return NumpyKernels.take_picks(matrix, picks)
        return self._take_picks(
            np.ascontiguousarray(matrix),
            np.ascontiguousarray(picks, dtype=np.int64),
        )

    def segment_sum(
        self, values: np.ndarray, segment_ids: np.ndarray, num_segments: int
    ) -> np.ndarray:
        if values.ndim != 2:
            return NumpyKernels.segment_sum(values, segment_ids, num_segments)
        return self._segment_sum_2d(
            np.ascontiguousarray(values),
            np.ascontiguousarray(segment_ids, dtype=np.int64),
            num_segments,
        )

    def ragged_segment_sum(
        self, values: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        if values.ndim != 2:
            return NumpyKernels.ragged_segment_sum(values, offsets)
        return self._ragged_segment_sum_2d(
            np.ascontiguousarray(values),
            np.ascontiguousarray(offsets, dtype=np.int64),
        )


#: The always-available reference tier singleton.
NUMPY_KERNELS = NumpyKernels()

KERNEL_TIERS = ("auto", "numpy", "compiled")

KernelsLike = Union[str, NumpyKernels, "_CompiledKernels", None]


def get_kernels(name: KernelsLike = "numpy"):
    """Resolve a kernel tier by name (or pass a tier object through).

    ``"numpy"``/``None`` return the reference tier; ``"compiled"``
    requires numba and raises a ConfigurationError naming the import
    failure otherwise; ``"auto"`` prefers the compiled tier and falls
    back to the reference tier silently.
    """
    if name is None:
        return NUMPY_KERNELS
    if not isinstance(name, str):
        if hasattr(name, "rowwise_weighted_picks"):
            return name
        raise ConfigurationError(
            f"kernels must be one of {KERNEL_TIERS} or a kernel tier "
            f"object, got {name!r}"
        )
    if name == "numpy":
        return NUMPY_KERNELS
    if name == "compiled":
        tier = _load_compiled()
        if tier is None:
            raise ConfigurationError(
                f"compiled kernel tier requested but {_COMPILED_ERROR}; "
                "install numba or use kernels='numpy'/'auto'"
            )
        return tier
    if name == "auto":
        tier = _load_compiled()
        return NUMPY_KERNELS if tier is None else tier
    raise ConfigurationError(
        f"unknown kernel tier {name!r}; expected one of {KERNEL_TIERS}"
    )


#: Process-wide default tier used by call sites without an explicit
#: tier (e.g. the GNN segment ops). Stays the reference tier unless
#: switched programmatically — opting the whole process into compiled
#: kernels is an explicit act, not an import side effect.
_DEFAULT_KERNELS = NUMPY_KERNELS


def default_kernels():
    """The process-wide default kernel tier."""
    return _DEFAULT_KERNELS


def set_default_kernels(name: KernelsLike):
    """Set the process-wide default tier; returns the resolved tier."""
    global _DEFAULT_KERNELS
    _DEFAULT_KERNELS = get_kernels(name)
    return _DEFAULT_KERNELS
