"""Event-driven server/worker service simulation.

The analytical vCPU model (:mod:`repro.framework.cpu_model`) captures
average throughput; this module captures what averages hide — queueing.
Workers issue per-hop batched RPCs to hash-partitioned graph servers;
servers process with bounded vCPU concurrency; the simulation records
per-batch latency distributions. This substantiates Challenge-1's
latency claim: "the long latency could result in ... the failure of
meeting real-time deadline in some inference scenarios".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.axe.events import Simulator
from repro.units import US


@dataclass(frozen=True)
class ServiceConfig:
    """Deployment and workload parameters."""

    num_servers: int = 4
    num_workers: int = 8
    vcpus_per_server: int = 8
    #: Server-side software time per requested key.
    per_key_service_s: float = 3.0 * US
    #: Fixed RPC round-trip network latency (excluding queueing).
    rpc_latency_s: float = 25.0 * US
    #: Per-server NIC bandwidth for responses.
    network_bandwidth: float = 1.5e9
    batch_size: int = 64
    fanouts: Tuple[int, ...] = (10, 10)
    attr_bytes: int = 512
    #: Batches each worker runs (closed loop).
    batches_per_worker: int = 4

    def __post_init__(self) -> None:
        if min(self.num_servers, self.num_workers, self.vcpus_per_server) <= 0:
            raise ConfigurationError("servers, workers, vcpus must be positive")
        if min(self.per_key_service_s, self.rpc_latency_s) <= 0:
            raise ConfigurationError("latencies must be positive")
        if self.network_bandwidth <= 0 or self.attr_bytes <= 0:
            raise ConfigurationError("bandwidth and attr_bytes must be positive")
        if self.batch_size <= 0 or not self.fanouts:
            raise ConfigurationError("batch_size and fanouts must be set")
        if self.batches_per_worker <= 0:
            raise ConfigurationError("batches_per_worker must be positive")


class _ServerSim:
    """One graph server: a vCPU pool draining a request queue."""

    def __init__(self, sim: Simulator, config: ServiceConfig, index: int) -> None:
        self.sim = sim
        self.config = config
        self.index = index
        self._queue: Deque[Tuple[int, Callable[[], None]]] = deque()
        self._idle_vcpus = config.vcpus_per_server
        self._nic_free_at = 0.0
        self.keys_served = 0
        self.max_queue_depth = 0

    def request(self, num_keys: int, reply: Callable[[], None]) -> None:
        """Handle a batched key-fetch RPC; ``reply`` fires at the
        client once service + response transfer complete."""
        self._queue.append((num_keys, reply))
        self.max_queue_depth = max(self.max_queue_depth, len(self._queue))
        self._dispatch()

    def _dispatch(self) -> None:
        while self._idle_vcpus > 0 and self._queue:
            num_keys, reply = self._queue.popleft()
            self._idle_vcpus -= 1
            service = num_keys * self.config.per_key_service_s
            self.keys_served += num_keys

            def done(n=num_keys, cb=reply) -> None:
                self._idle_vcpus += 1
                # Response serializes on this server's NIC.
                response_bytes = n * self.config.attr_bytes
                transfer = response_bytes / self.config.network_bandwidth
                start = max(self.sim.now, self._nic_free_at)
                self._nic_free_at = start + transfer
                self.sim.at(
                    self._nic_free_at + self.config.rpc_latency_s / 2, cb
                )
                self._dispatch()

            self.sim.after(service, done)


@dataclass
class ServiceReport:
    """Latency/throughput results of one service simulation."""

    batch_latencies_s: List[float]
    total_time_s: float
    total_batches: int
    server_max_queue: int

    @property
    def throughput_batches_per_s(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.total_batches / self.total_time_s

    def percentile(self, q: float) -> float:
        if not self.batch_latencies_s:
            raise ConfigurationError("no batches completed")
        return float(np.percentile(self.batch_latencies_s, q))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def deadline_miss_rate(self, deadline_s: float) -> float:
        """Fraction of batches exceeding an inference deadline."""
        if deadline_s <= 0:
            raise ConfigurationError(f"deadline must be positive, got {deadline_s}")
        if not self.batch_latencies_s:
            return 0.0
        misses = sum(1 for lat in self.batch_latencies_s if lat > deadline_s)
        return misses / len(self.batch_latencies_s)


def run_service(config: Optional[ServiceConfig] = None, seed: int = 0) -> ServiceReport:
    """Run the closed-loop service simulation; returns latency stats."""
    config = config or ServiceConfig()
    sim = Simulator()
    rng = np.random.default_rng(seed)
    servers = [_ServerSim(sim, config, i) for i in range(config.num_servers)]
    latencies: List[float] = []

    def start_batch(worker: int, remaining: int) -> None:
        start_time = sim.now
        hop_keys = [config.batch_size]
        width = config.batch_size
        for fanout in config.fanouts:
            width *= fanout
            hop_keys.append(width)

        def run_hop(index: int) -> None:
            if index == len(hop_keys):
                latencies.append(sim.now - start_time)
                if remaining > 1:
                    start_batch(worker, remaining - 1)
                return
            keys = hop_keys[index]
            # Split keys across servers (hash partitioning): roughly
            # equal shards with multinomial jitter.
            shares = rng.multinomial(
                keys, np.full(config.num_servers, 1.0 / config.num_servers)
            )
            pending = [int(np.count_nonzero(shares))]
            if pending[0] == 0:
                sim.after(0.0, lambda: run_hop(index + 1))
                return

            def one_reply() -> None:
                pending[0] -= 1
                if pending[0] == 0:
                    run_hop(index + 1)

            for server_index, share in enumerate(shares):
                if share == 0:
                    continue
                # Request travels half the RTT before hitting the server.
                sim.after(
                    config.rpc_latency_s / 2,
                    lambda s=server_index, k=int(share): servers[s].request(
                        k, one_reply
                    ),
                )

        run_hop(0)

    for worker in range(config.num_workers):
        # Stagger worker starts to avoid an artificial convoy.
        sim.at(worker * 1e-6, lambda w=worker: start_batch(w, config.batches_per_worker))
    sim.run()
    return ServiceReport(
        batch_latencies_s=latencies,
        total_time_s=sim.now,
        total_batches=len(latencies),
        server_max_queue=max(s.max_queue_depth for s in servers),
    )
