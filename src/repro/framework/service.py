"""Event-driven server/worker service simulation.

The analytical vCPU model (:mod:`repro.framework.cpu_model`) captures
average throughput; this module captures what averages hide — queueing.
Workers issue per-hop batched RPCs to hash-partitioned graph servers;
servers process with bounded vCPU concurrency; the simulation records
per-batch latency distributions. This substantiates Challenge-1's
latency claim: "the long latency could result in ... the failure of
meeting real-time deadline in some inference scenarios".

With a :class:`~repro.memstore.retry.RetryPolicy` configured, the
worker side also models the availability story: each logical shard is
served by ``replication_factor`` replica servers (rotating placement),
requests that are lost or hit a dead server burn a timeout and retry
on the next replica with exponential backoff, an explicit hedge delay
issues a duplicate request to another replica (first answer wins), and
a shard whose replicas are all unreachable past the deadline completes
*degraded* — the hop proceeds without its keys rather than hanging the
batch. Without a retry policy the fault machinery is fully bypassed
and runs are bit-for-bit identical to the historical behavior.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.axe.events import Simulator
from repro.memstore.retry import RetryPolicy
from repro.units import US


@dataclass(frozen=True)
class ServiceConfig:
    """Deployment and workload parameters."""

    num_servers: int = 4
    num_workers: int = 8
    vcpus_per_server: int = 8
    #: Server-side software time per requested key.
    per_key_service_s: float = 3.0 * US
    #: Model servers running the batched sampler fast path: per-key
    #: service time is divided by ``batched_speedup``.
    batched_sampling: bool = False
    #: Measured batched-vs-reference speedup to apply when
    #: ``batched_sampling`` is set (see ``repro bench-sampler``).
    batched_speedup: float = 5.0
    #: Fixed RPC round-trip network latency (excluding queueing).
    rpc_latency_s: float = 25.0 * US
    #: Per-server NIC bandwidth for responses.
    network_bandwidth: float = 1.5e9
    batch_size: int = 64
    fanouts: Tuple[int, ...] = (10, 10)
    attr_bytes: int = 512
    #: Batches each worker runs (closed loop).
    batches_per_worker: int = 4
    #: Replica servers per shard; shard ``s`` is served by servers
    #: ``(s + r) % num_servers``. 1 means no redundancy.
    replication_factor: int = 1
    #: Worker-side timeout/backoff/hedging policy; ``None`` disables
    #: the fault path entirely (historical behavior, bit-for-bit).
    #: Note the memstore defaults are tuned for fine-grained reads —
    #: batched RPCs here want ``attempt_timeout_s`` well above the
    #: batch service time, and hedging needs an explicit
    #: ``hedge_delay_s`` (there is no latency window to derive p99
    #: from in this model).
    retry: Optional[RetryPolicy] = None
    #: Per-request loss probability (drawn from the run's seeded rng).
    request_loss_rate: float = 0.0
    #: ``(server_index, time_s)`` kill events.
    kill_server_at: Tuple[Tuple[int, float], ...] = ()
    #: ``(server_index, time_s)`` restore events.
    restore_server_at: Tuple[Tuple[int, float], ...] = ()
    #: Open-loop graph mutations per second offered alongside the read
    #: workload (Poisson arrivals, uniform target server). Each
    #: mutation occupies one vCPU on its server like a read RPC does,
    #: so sampling latency degrades with write pressure. ``0.0``
    #: (default) is bit-for-bit the historical read-only run.
    mutation_rps: float = 0.0
    #: Server-side service time of one mutation (append + index touch).
    per_mutation_service_s: float = 6.0 * US

    def __post_init__(self) -> None:
        if min(self.num_servers, self.num_workers, self.vcpus_per_server) <= 0:
            raise ConfigurationError("servers, workers, vcpus must be positive")
        if min(self.per_key_service_s, self.rpc_latency_s) <= 0:
            raise ConfigurationError("latencies must be positive")
        if self.network_bandwidth <= 0 or self.attr_bytes <= 0:
            raise ConfigurationError("bandwidth and attr_bytes must be positive")
        if self.batch_size <= 0 or not self.fanouts:
            raise ConfigurationError("batch_size and fanouts must be set")
        if self.batched_speedup < 1.0:
            raise ConfigurationError(
                f"batched_speedup must be >= 1, got {self.batched_speedup}"
            )
        if self.batches_per_worker <= 0:
            raise ConfigurationError("batches_per_worker must be positive")
        if not 1 <= self.replication_factor <= self.num_servers:
            raise ConfigurationError(
                f"replication_factor must be in [1, num_servers], "
                f"got {self.replication_factor}"
            )
        if not 0 <= self.request_loss_rate < 1:
            raise ConfigurationError(
                f"request_loss_rate must be in [0, 1), got {self.request_loss_rate}"
            )
        for server, at_s in (*self.kill_server_at, *self.restore_server_at):
            if not 0 <= server < self.num_servers:
                raise ConfigurationError(
                    f"fault event references server {server} outside "
                    f"[0, {self.num_servers})"
                )
            if at_s < 0:
                raise ConfigurationError(
                    f"fault event time must be non-negative, got {at_s}"
                )
        if self.mutation_rps < 0:
            raise ConfigurationError(
                f"mutation_rps must be non-negative, got {self.mutation_rps}"
            )
        if self.per_mutation_service_s <= 0:
            raise ConfigurationError(
                f"per_mutation_service_s must be positive, "
                f"got {self.per_mutation_service_s}"
            )
        if self.retry is None and (
            self.request_loss_rate > 0 or self.kill_server_at
        ):
            raise ConfigurationError(
                "fault injection (loss or server kills) requires a retry "
                "policy, or the closed loop would hang on lost replies"
            )

    @property
    def effective_per_key_service_s(self) -> float:
        """Per-key service time after the batched-sampling speedup."""
        if self.batched_sampling:
            return self.per_key_service_s / self.batched_speedup
        return self.per_key_service_s


class _ServerSim:
    """One graph server: a vCPU pool draining a request queue."""

    def __init__(self, sim: Simulator, config: ServiceConfig, index: int) -> None:
        self.sim = sim
        self.config = config
        self.index = index
        self._queue: Deque[Tuple[int, Callable[[], None], bool]] = deque()
        self._idle_vcpus = config.vcpus_per_server
        self._nic_free_at = 0.0
        self.keys_served = 0
        self.mutations_served = 0
        self.max_queue_depth = 0
        self.alive = True
        #: Bumped on kill/restore; in-flight work from an older epoch
        #: is dropped instead of mutating the reborn server's state.
        self._epoch = 0

    def kill(self) -> None:
        if not self.alive:
            return
        self.alive = False
        self._epoch += 1
        self._queue.clear()

    def restore(self) -> None:
        if self.alive:
            return
        self.alive = True
        self._epoch += 1
        self._idle_vcpus = self.config.vcpus_per_server
        self._queue.clear()

    def request(self, num_keys: int, reply: Callable[[], None]) -> None:
        """Handle a batched key-fetch RPC; ``reply`` fires at the
        client once service + response transfer complete. A dead server
        drops the request on the floor (the client's timeout owns
        recovery)."""
        if not self.alive:
            return
        self._queue.append((num_keys, reply, False))
        self.max_queue_depth = max(self.max_queue_depth, len(self._queue))
        self._dispatch()

    def mutate(self, done: Callable[[], None]) -> None:
        """Handle one graph-mutation RPC (append + index touch).

        Competes for the same vCPU pool as reads — that contention is
        exactly what ``mutation_rps`` sweeps measure — but its ack
        carries no attribute payload, so it skips the NIC transfer.
        """
        if not self.alive:
            return
        self._queue.append((0, done, True))
        self.max_queue_depth = max(self.max_queue_depth, len(self._queue))
        self._dispatch()

    def _dispatch(self) -> None:
        while self._idle_vcpus > 0 and self._queue:
            num_keys, reply, is_mutation = self._queue.popleft()
            self._idle_vcpus -= 1
            if is_mutation:
                service = self.config.per_mutation_service_s
                self.mutations_served += 1
            else:
                service = num_keys * self.config.effective_per_key_service_s
                self.keys_served += num_keys

            def done(
                n=num_keys, cb=reply, epoch=self._epoch, mut=is_mutation
            ) -> None:
                if epoch != self._epoch:
                    return  # the server died (or was reborn) mid-service
                self._idle_vcpus += 1
                if mut:
                    # Tiny ack: no NIC serialization, just the return trip.
                    self.sim.at(self.sim.now + self.config.rpc_latency_s / 2, cb)
                    self._dispatch()
                    return
                # Response serializes on this server's NIC.
                response_bytes = n * self.config.attr_bytes
                transfer = response_bytes / self.config.network_bandwidth
                start = max(self.sim.now, self._nic_free_at)
                self._nic_free_at = start + transfer
                self.sim.at(
                    self._nic_free_at + self.config.rpc_latency_s / 2, cb
                )
                self._dispatch()

            self.sim.after(service, done)


@dataclass
class ServiceReport:
    """Latency/throughput results of one service simulation."""

    batch_latencies_s: List[float]
    total_time_s: float
    total_batches: int
    server_max_queue: int
    #: Shard RPC retries issued after a timeout.
    retries: int = 0
    #: Per-attempt timeouts that fired without an answer.
    timeouts: int = 0
    #: Hedged duplicate requests issued.
    hedges: int = 0
    #: Hedges whose reply arrived first (loser cancelled).
    hedge_wins: int = 0
    #: Shard fetches that completed without data (all replicas dead or
    #: deadline exhausted) — degraded completion, not a hang.
    degraded_shards: int = 0
    #: Graph mutations acknowledged by servers (``mutation_rps`` runs).
    mutations_applied: int = 0

    @property
    def throughput_batches_per_s(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.total_batches / self.total_time_s

    def percentile(self, q: float) -> float:
        """Latency percentile; NaN when no batches completed."""
        if not 0 <= q <= 100:
            raise ConfigurationError(
                f"percentile must be in [0, 100], got {q}"
            )
        if not self.batch_latencies_s:
            return float("nan")
        return float(np.percentile(self.batch_latencies_s, q))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def deadline_miss_rate(self, deadline_s: float) -> float:
        """Fraction of batches exceeding an inference deadline.

        NaN when no batches completed (a miss *rate* over zero
        requests is undefined, not zero).
        """
        if deadline_s <= 0:
            raise ConfigurationError(f"deadline must be positive, got {deadline_s}")
        if not self.batch_latencies_s:
            return float("nan")
        misses = sum(1 for lat in self.batch_latencies_s if lat > deadline_s)
        return misses / len(self.batch_latencies_s)


class _FaultCounters:
    """Mutable retry/hedge accounting for one run."""

    def __init__(self) -> None:
        self.retries = 0
        self.timeouts = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.degraded_shards = 0


def run_service(config: Optional[ServiceConfig] = None, seed: int = 0) -> ServiceReport:
    """Run the closed-loop service simulation; returns latency stats."""
    config = config or ServiceConfig()
    sim = Simulator()
    rng = np.random.default_rng(seed)
    servers = [_ServerSim(sim, config, i) for i in range(config.num_servers)]
    latencies: List[float] = []
    counters = _FaultCounters()
    #: Time of the last batch completion — stray timeout no-op events
    #: may outlive the workload, so ``sim.now`` at drain overstates it.
    last_done = [0.0]

    for server_index, at_s in config.kill_server_at:
        sim.at(at_s, lambda s=server_index: servers[s].kill())
    for server_index, at_s in config.restore_server_at:
        sim.at(at_s, lambda s=server_index: servers[s].restore())

    def send_plain(shard: int, keys: int, on_done: Callable[[], None]) -> None:
        # Request travels half the RTT before hitting the server.
        sim.after(
            config.rpc_latency_s / 2,
            lambda s=shard, k=keys: servers[s].request(k, on_done),
        )

    def send_reliable(shard: int, keys: int, on_done: Callable[[], None]) -> None:
        policy = config.retry
        replicas = [
            (shard + r) % config.num_servers
            for r in range(config.replication_factor)
        ]
        deadline = sim.now + policy.deadline_s
        state = {"done": False}

        def finish(degraded: bool, from_hedge: bool) -> None:
            if state["done"]:
                return  # hedge loser / late reply — cancelled
            state["done"] = True
            if from_hedge:
                counters.hedge_wins += 1
            if degraded:
                counters.degraded_shards += 1
            last_done[0] = max(last_done[0], sim.now)
            on_done()

        def issue(ordinal: int, attempt: int, is_hedge: bool) -> None:
            if state["done"]:
                return
            server = servers[replicas[ordinal % len(replicas)]]
            lost = (
                config.request_loss_rate > 0
                and rng.random() < config.request_loss_rate
            )
            if not lost:
                sim.after(
                    config.rpc_latency_s / 2,
                    lambda srv=server: srv.request(
                        keys, lambda: finish(degraded=False, from_hedge=is_hedge)
                    ),
                )
            if is_hedge:
                return  # hedges don't own the retry chain
            if (
                policy.hedge
                and policy.hedge_delay_s is not None
                and len(replicas) > 1
            ):
                def maybe_hedge(o=ordinal, a=attempt) -> None:
                    if state["done"]:
                        return
                    counters.hedges += 1
                    issue(o + 1, a, is_hedge=True)

                if sim.now + policy.hedge_delay_s < deadline:
                    sim.after(policy.hedge_delay_s, maybe_hedge)

            def on_timeout(o=ordinal, a=attempt) -> None:
                if state["done"]:
                    return
                counters.timeouts += 1
                next_attempt = a + 1
                backoff = policy.backoff_s(a)
                if (
                    next_attempt >= policy.max_attempts
                    or sim.now + backoff >= deadline
                ):
                    finish(degraded=True, from_hedge=False)
                    return
                counters.retries += 1
                sim.after(
                    backoff,
                    lambda: issue(next_attempt, next_attempt, is_hedge=False),
                )

            sim.after(policy.attempt_timeout_s, on_timeout)

        issue(0, 0, is_hedge=False)

    send_shard = send_plain if config.retry is None else send_reliable

    def start_batch(worker: int, remaining: int) -> None:
        start_time = sim.now
        hop_keys = [config.batch_size]
        width = config.batch_size
        for fanout in config.fanouts:
            width *= fanout
            hop_keys.append(width)

        def run_hop(index: int) -> None:
            if index == len(hop_keys):
                latencies.append(sim.now - start_time)
                last_done[0] = max(last_done[0], sim.now)
                if remaining > 1:
                    start_batch(worker, remaining - 1)
                return
            keys = hop_keys[index]
            # Split keys across servers (hash partitioning): roughly
            # equal shards with multinomial jitter.
            shares = rng.multinomial(
                keys, np.full(config.num_servers, 1.0 / config.num_servers)
            )
            pending = [int(np.count_nonzero(shares))]
            if pending[0] == 0:
                sim.after(0.0, lambda: run_hop(index + 1))
                return

            def one_reply() -> None:
                pending[0] -= 1
                if pending[0] == 0:
                    run_hop(index + 1)

            for server_index, share in enumerate(shares):
                if share == 0:
                    continue
                send_shard(server_index, int(share), one_reply)

        run_hop(0)

    total_expected = config.num_workers * config.batches_per_worker
    mutations_done = [0]
    if config.mutation_rps > 0:
        # Dedicated stream: the read path's draws (multinomial splits,
        # loss coin-flips) stay untouched by the write workload, and a
        # mutation_rps=0 run schedules nothing here at all — bit-for-bit
        # the historical read-only behavior.
        mut_rng = np.random.default_rng(seed + 1)

        def mutation_ack() -> None:
            mutations_done[0] += 1

        def mutation_tick() -> None:
            if len(latencies) >= total_expected:
                return  # read workload drained; stop offering writes
            server = servers[int(mut_rng.integers(0, config.num_servers))]
            sim.after(
                config.rpc_latency_s / 2, lambda s=server: s.mutate(mutation_ack)
            )
            sim.after(
                float(mut_rng.exponential(1.0 / config.mutation_rps)),
                mutation_tick,
            )

        sim.after(
            float(mut_rng.exponential(1.0 / config.mutation_rps)), mutation_tick
        )

    for worker in range(config.num_workers):
        # Stagger worker starts to avoid an artificial convoy.
        sim.at(worker * US, lambda w=worker: start_batch(w, config.batches_per_worker))
    sim.run()
    total_time_s = sim.now if config.retry is None else last_done[0]
    return ServiceReport(
        batch_latencies_s=latencies,
        total_time_s=total_time_s,
        total_batches=len(latencies),
        server_max_queue=max(s.max_queue_depth for s in servers),
        retries=counters.retries,
        timeouts=counters.timeouts,
        hedges=counters.hedges,
        hedge_wins=counters.hedge_wins,
        degraded_shards=counters.degraded_shards,
        mutations_applied=mutations_done[0],
    )
