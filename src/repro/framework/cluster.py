"""Server/worker cluster model — throughput scaling (Figure 2b).

AliGraph assigns *servers* (attribute fetching) and *workers* (graph
traversal + NN) as logical processes over vCPU pools. Adding servers
increases aggregate capacity but also raises the remote fraction of
every access under hash partitioning, so throughput scales sublinearly
— the paper's Observation-2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.errors import ConfigurationError
from repro.framework.cpu_model import CpuSamplingModel, WorkloadShape


@dataclass(frozen=True)
class ScalingPoint:
    """Cluster throughput at one server count."""

    num_servers: int
    total_roots_per_second: float
    speedup_vs_one: float
    efficiency: float  # speedup / num_servers


class ClusterModel:
    """Aggregate sampling throughput of an AliGraph cluster.

    Parameters
    ----------
    cpu_model:
        Per-vCPU cost model.
    vcpus_per_server:
        vCPUs dedicated to sampling per logical server.
    """

    def __init__(
        self, cpu_model: CpuSamplingModel, vcpus_per_server: int = 32
    ) -> None:
        if vcpus_per_server <= 0:
            raise ConfigurationError(
                f"vcpus_per_server must be positive, got {vcpus_per_server}"
            )
        self.cpu_model = cpu_model
        self.vcpus_per_server = vcpus_per_server

    def throughput(self, shape: WorkloadShape, num_servers: int) -> float:
        """Cluster-wide root samples per second with ``num_servers``."""
        per_vcpu = self.cpu_model.roots_per_second(shape, num_servers)
        return per_vcpu * self.vcpus_per_server * num_servers

    def scaling_curve(
        self, shape: WorkloadShape, server_counts: Sequence[int] = (1, 5, 15)
    ) -> List[ScalingPoint]:
        """Figure 2(b): throughput and efficiency at each server count."""
        if not server_counts:
            raise ConfigurationError("server_counts must not be empty")
        base = self.throughput(shape, server_counts[0]) / server_counts[0]
        points = []
        for count in server_counts:
            total = self.throughput(shape, count)
            speedup = total / base
            points.append(
                ScalingPoint(count, total, speedup, speedup / count)
            )
        return points

    def average_scaling_curve(
        self,
        shapes: Iterable[WorkloadShape],
        server_counts: Sequence[int] = (1, 5, 15),
    ) -> List[ScalingPoint]:
        """Geometric-mean scaling curve across datasets (Figure 2b
        averages across all benchmarks)."""
        shapes = list(shapes)
        if not shapes:
            raise ConfigurationError("shapes must not be empty")
        per_shape = [self.scaling_curve(shape, server_counts) for shape in shapes]
        points: List[ScalingPoint] = []
        for idx, count in enumerate(server_counts):
            throughputs = [curve[idx].total_roots_per_second for curve in per_shape]
            speedups = [curve[idx].speedup_vs_one for curve in per_shape]
            geo_tp = _geomean(throughputs)
            geo_sp = _geomean(speedups)
            points.append(ScalingPoint(count, geo_tp, geo_sp, geo_sp / count))
        return points


def _geomean(values: Sequence[float]) -> float:
    product = 1.0
    for value in values:
        if value <= 0:
            raise ConfigurationError("geomean requires positive values")
        product *= value
    return product ** (1.0 / len(values))
