"""Request and response records exchanged between workers and servers.

These mirror the AliGraph RPC surface the AxE command set (Table 4)
was designed to replace: multi-hop sampling, attribute reads, and
negative sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SampleRequest:
    """A multi-hop sampling request for a mini-batch of root nodes."""

    roots: np.ndarray
    fanouts: Tuple[int, ...]
    with_attributes: bool = True
    with_edge_weights: bool = False

    def __post_init__(self) -> None:
        roots = np.asarray(self.roots, dtype=np.int64)
        object.__setattr__(self, "roots", roots)
        if roots.ndim != 1 or roots.size == 0:
            raise ConfigurationError("roots must be a non-empty 1-D array")
        if not self.fanouts:
            raise ConfigurationError("fanouts must contain at least one hop")
        if any(f <= 0 for f in self.fanouts):
            raise ConfigurationError(f"fanouts must be positive, got {self.fanouts}")

    @property
    def batch_size(self) -> int:
        return int(self.roots.size)

    @property
    def num_hops(self) -> int:
        return len(self.fanouts)

    def nodes_per_root(self) -> int:
        """Total nodes touched per root (root + all sampled hops)."""
        total = 1
        layer = 1
        for fanout in self.fanouts:
            layer *= fanout
            total += layer
        return total


@dataclass(frozen=True)
class NegativeSampleRequest:
    """Sample ``rate`` non-neighbors for each (src, dst) positive pair."""

    pairs: np.ndarray
    rate: int

    def __post_init__(self) -> None:
        pairs = np.asarray(self.pairs, dtype=np.int64)
        object.__setattr__(self, "pairs", pairs)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ConfigurationError("pairs must have shape (n, 2)")
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate}")


@dataclass
class SampleResult:
    """Result of a multi-hop sampling request.

    ``layers[0]`` holds the roots; ``layers[k]`` holds the hop-``k``
    sampled node IDs with shape ``(batch, prod(fanouts[:k]))``. Sampling
    pads under-full neighborhoods by resampling with replacement, so
    layer shapes are always dense.
    """

    layers: List[np.ndarray] = field(default_factory=list)
    attributes: Optional[List[np.ndarray]] = None
    edge_weights: Optional[List[np.ndarray]] = None

    @property
    def num_hops(self) -> int:
        return max(0, len(self.layers) - 1)

    def total_nodes(self) -> int:
        """Total node occurrences across all layers."""
        return int(sum(layer.size for layer in self.layers))

    def flat_nodes(self) -> np.ndarray:
        """All node IDs in the result, flattened in layer order."""
        if not self.layers:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([layer.reshape(-1) for layer in self.layers])
