"""System-level hot-node cache (AliGraph-style).

AliGraph caches the most frequently accessed nodes at the framework
level. The paper leans on this to argue that *hardware* temporal caching
is not worthwhile (Tech-4): what reuse exists is already captured here,
and the 512-over-10-billion batch/graph ratio leaves almost nothing for
the FPGA to catch. This LRU implementation lets tests and ablations
quantify exactly that.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError


class HotNodeCache:
    """LRU cache over neighbor lists and attribute rows.

    Capacity is expressed in *nodes* and is a combined budget: a node
    counts once whether it holds its neighbor list, its attribute row,
    or both, and the total number of distinct cached nodes never
    exceeds ``capacity_nodes``. (An earlier version budgeted the two
    facets independently, silently caching up to twice the stated
    capacity.) Eviction is LRU over nodes — touching either facet
    refreshes the node, and evicting a node drops both facets.
    """

    def __init__(self, capacity_nodes: int) -> None:
        if capacity_nodes <= 0:
            raise ConfigurationError(
                f"capacity_nodes must be positive, got {capacity_nodes}"
            )
        self.capacity_nodes = capacity_nodes
        #: Shared recency order; keys are node IDs, oldest first.
        self._lru: "OrderedDict[int, None]" = OrderedDict()
        self._neighbors: Dict[int, np.ndarray] = {}
        self._attributes: Dict[int, np.ndarray] = {}
        self.neighbor_hits = 0
        self.neighbor_misses = 0
        self.attribute_hits = 0
        self.attribute_misses = 0
        self.invalidations = 0

    # -------------------------------------------------------------- budget
    def __len__(self) -> int:
        """Number of distinct cached nodes (the budgeted quantity)."""
        return len(self._lru)

    def _touch(self, node: int) -> None:
        self._lru[node] = None
        self._lru.move_to_end(node)
        while len(self._lru) > self.capacity_nodes:
            victim, _ = self._lru.popitem(last=False)
            self._neighbors.pop(victim, None)
            self._attributes.pop(victim, None)

    # ------------------------------------------------------------ neighbors
    def get_neighbors(self, node: int) -> Optional[np.ndarray]:
        """Cached neighbor list of ``node``, or ``None`` on a miss.

        Hits are read-only views of the cached entry; copy before
        mutating.
        """
        cached = self._neighbors.get(node)
        if cached is None:
            self.neighbor_misses += 1
            return None
        self._touch(node)
        self.neighbor_hits += 1
        return cached

    def put_neighbors(self, node: int, neighbors: np.ndarray) -> None:
        """Insert a neighbor list, evicting the LRU node when full.

        The array is copied and frozen so neither later caller
        mutations nor mutations of the returned hit can corrupt the
        cached entry.
        """
        entry = np.array(neighbors, dtype=np.int64, copy=True)
        entry.flags.writeable = False
        self._neighbors[node] = entry
        self._touch(node)

    # ----------------------------------------------------------- attributes
    def get_attributes(self, node: int) -> Optional[np.ndarray]:
        """Cached attribute row of ``node``, or ``None`` on a miss.

        Hits are read-only views of the cached entry; copy before
        mutating.
        """
        cached = self._attributes.get(node)
        if cached is None:
            self.attribute_misses += 1
            return None
        self._touch(node)
        self.attribute_hits += 1
        return cached

    def put_attributes(self, node: int, row: np.ndarray) -> None:
        """Insert an attribute row, evicting the LRU node when full.

        Copied and frozen like :meth:`put_neighbors`.
        """
        entry = np.array(row, dtype=np.float32, copy=True)
        entry.flags.writeable = False
        self._attributes[node] = entry
        self._touch(node)

    # --------------------------------------------------------- invalidation
    def invalidate(self, node: int) -> bool:
        """Drop ``node`` from the cache entirely (both facets + LRU slot).

        The online-mutation ingest path calls this for every node whose
        adjacency (or attribute row) changed, so stale pre-mutation data
        can never be served as a hit. Returns ``True`` when the node was
        cached (either facet), ``False`` when it was already absent;
        only actual drops count toward ``invalidations``.
        """
        present = node in self._lru
        self._lru.pop(node, None)
        self._neighbors.pop(node, None)
        self._attributes.pop(node, None)
        if present:
            self.invalidations += 1
        return present

    # ------------------------------------------------------------- metrics
    def bump_neighbor_stats(self, hits: int = 0, misses: int = 0) -> None:
        """Credit extra neighbor lookups served without touching entries.

        The batched sampler deduplicates a frontier before probing the
        cache, so repeat occurrences of a node never reach
        :meth:`get_neighbors`; this keeps the hit/miss counters
        occurrence-accurate with the per-node walk.
        """
        self.neighbor_hits += hits
        self.neighbor_misses += misses

    def bump_attribute_stats(self, hits: int = 0, misses: int = 0) -> None:
        """Attribute-facet counterpart of :meth:`bump_neighbor_stats`."""
        self.attribute_hits += hits
        self.attribute_misses += misses

    @property
    def hits(self) -> int:
        """Total hits across both facets."""
        return self.neighbor_hits + self.attribute_hits

    @property
    def misses(self) -> int:
        """Total misses across both facets."""
        return self.neighbor_misses + self.attribute_misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction over all lookups so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero the hit/miss/invalidation counters (contents are kept)."""
        self.neighbor_hits = 0
        self.neighbor_misses = 0
        self.attribute_hits = 0
        self.attribute_misses = 0
        self.invalidations = 0
