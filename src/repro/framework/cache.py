"""System-level hot-node cache (AliGraph-style).

AliGraph caches the most frequently accessed nodes at the framework
level. The paper leans on this to argue that *hardware* temporal caching
is not worthwhile (Tech-4): what reuse exists is already captured here,
and the 512-over-10-billion batch/graph ratio leaves almost nothing for
the FPGA to catch. This LRU implementation lets tests and ablations
quantify exactly that.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


class HotNodeCache:
    """LRU cache over neighbor lists and attribute rows.

    Capacity is expressed in *nodes* (each cached node may hold its
    neighbor list, its attribute row, or both).
    """

    def __init__(self, capacity_nodes: int) -> None:
        if capacity_nodes <= 0:
            raise ConfigurationError(
                f"capacity_nodes must be positive, got {capacity_nodes}"
            )
        self.capacity_nodes = capacity_nodes
        self._neighbors: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._attributes: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------ neighbors
    def get_neighbors(self, node: int) -> Optional[np.ndarray]:
        """Cached neighbor list of ``node``, or ``None`` on a miss."""
        cached = self._neighbors.get(node)
        if cached is None:
            self.misses += 1
            return None
        self._neighbors.move_to_end(node)
        self.hits += 1
        return cached

    def put_neighbors(self, node: int, neighbors: np.ndarray) -> None:
        """Insert a neighbor list, evicting the LRU entry when full."""
        self._neighbors[node] = np.asarray(neighbors, dtype=np.int64)
        self._neighbors.move_to_end(node)
        while len(self._neighbors) > self.capacity_nodes:
            self._neighbors.popitem(last=False)

    # ----------------------------------------------------------- attributes
    def get_attributes(self, node: int) -> Optional[np.ndarray]:
        """Cached attribute row of ``node``, or ``None`` on a miss."""
        cached = self._attributes.get(node)
        if cached is None:
            self.misses += 1
            return None
        self._attributes.move_to_end(node)
        self.hits += 1
        return cached

    def put_attributes(self, node: int, row: np.ndarray) -> None:
        """Insert an attribute row, evicting the LRU entry when full."""
        self._attributes[node] = np.asarray(row, dtype=np.float32)
        self._attributes.move_to_end(node)
        while len(self._attributes) > self.capacity_nodes:
            self._attributes.popitem(last=False)

    # ------------------------------------------------------------- metrics
    @property
    def hit_rate(self) -> float:
        """Hit fraction over all lookups so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (contents are kept)."""
        self.hits = 0
        self.misses = 0
