"""vCPU sampling cost model (the CPU baseline of Figures 14 and 17-21).

The baseline is AliGraph's software sampling path: worker threads issue
synchronous-ish RPCs to graph servers, with a small number of requests
in flight per vCPU, paying per-node software cost (hash lookups,
serialization, protocol handling) plus remote wait time.

The model is analytical; its two calibration constants
(``per_node_software_s`` and ``outstanding_per_vcpu``) are chosen so the
PoC-vs-vCPU ratio lands at the paper's 894x geomean (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.graph.datasets import SAMPLING_CONFIG, DatasetSpec
from repro.memstore.links import LinkModel, get_link
from repro.units import US


@dataclass(frozen=True)
class WorkloadShape:
    """Per-root-sample traffic shape of a sampling workload.

    All byte counts are *per root node* of a mini-batch. Derived from a
    dataset spec plus the Table 2 sampling configuration (2-hop, fanout
    10/10, negative rate 10).
    """

    name: str
    #: GetNeighbor operations per root (1 for the root + fanout for hop 2).
    neighbor_ops: int
    #: Nodes whose attributes are fetched per root (incl. negatives).
    attr_nodes: int
    #: Structure bytes per root (index + offsets + neighbor IDs).
    structure_bytes: float
    #: Attribute bytes per root.
    attribute_bytes: float
    #: Bytes shipped to the NN stage per root (the sampled subgraph).
    output_bytes: float
    #: Count-weighted access mix {request_bytes: probability}.
    access_mix: Dict[int, float]

    @property
    def fetch_bytes(self) -> float:
        """Total bytes read from the store per root."""
        return self.structure_bytes + self.attribute_bytes

    @property
    def mean_request_bytes(self) -> float:
        total_p = sum(self.access_mix.values())
        return sum(s * p for s, p in self.access_mix.items()) / total_p

    @classmethod
    def from_spec(
        cls,
        spec: DatasetSpec,
        fanouts: Tuple[int, ...] = SAMPLING_CONFIG["fanouts"],
        negative_rate: int = SAMPLING_CONFIG["negative_rate"],
        index_entry_bytes: int = 16,
        offset_entry_bytes: int = 16,
        id_bytes: int = 8,
    ) -> "WorkloadShape":
        """Derive the traffic shape for one Table 2 dataset."""
        if not fanouts:
            raise ConfigurationError("fanouts must contain at least one hop")
        # Nodes expanded (GetNeighbor issued) per root: the root itself,
        # then each sampled frontier except the last hop.
        neighbor_ops = 1
        width = 1
        total_sampled = 0
        for fanout in fanouts[:-1]:
            width *= fanout
            neighbor_ops += width
            total_sampled += width
        width *= fanouts[-1]
        total_sampled += width
        attr_nodes = 1 + total_sampled + negative_rate

        avg_ids = spec.avg_degree * id_bytes
        structure_bytes = (
            neighbor_ops * (index_entry_bytes + offset_entry_bytes + avg_ids)
            + attr_nodes * index_entry_bytes
        )
        attr_row = spec.attr_len * 4
        attribute_bytes = float(attr_nodes * attr_row)
        output_bytes = float(attr_nodes * attr_row)

        # Count-weighted access mix: per root there are `neighbor_ops`
        # offset reads, `neighbor_ops` ID-block reads, `attr_nodes +
        # neighbor_ops` index lookups, and `attr_nodes` attribute rows.
        id_block = max(id_bytes, int(round(avg_ids)))
        mix: Dict[int, float] = {}
        total_ops = neighbor_ops * 2 + attr_nodes + neighbor_ops + attr_nodes
        for size, count in (
            (index_entry_bytes, attr_nodes + neighbor_ops),
            (offset_entry_bytes, neighbor_ops),
            (id_block, neighbor_ops),
            (attr_row, attr_nodes),
        ):
            mix[size] = mix.get(size, 0.0) + count / total_ops
        return cls(
            name=spec.name,
            neighbor_ops=neighbor_ops,
            attr_nodes=attr_nodes,
            structure_bytes=structure_bytes,
            attribute_bytes=attribute_bytes,
            output_bytes=output_bytes,
            access_mix=mix,
        )


class CpuSamplingModel:
    """Sampling throughput of one vCPU running the software stack.

    Parameters
    ----------
    per_node_software_s:
        CPU time per touched node: hash lookup, bounds checks,
        serialization, RPC bookkeeping.
    outstanding_per_vcpu:
        Remote requests a vCPU's thread pool keeps in flight.
    rpc_request_bytes:
        Mean wire size of one software RPC. AliGraph coalesces a few
        keys per request, so this exceeds the single-access mean.
    remote_link:
        Link model for server-to-server access (software RDMA path).
    """

    def __init__(
        self,
        per_node_software_s: float = 14.5 * US,
        outstanding_per_vcpu: int = 1,
        rpc_request_bytes: int = 512,
        remote_link: Optional[LinkModel] = None,
    ) -> None:
        if per_node_software_s <= 0:
            raise ConfigurationError(
                f"per_node_software_s must be positive, got {per_node_software_s}"
            )
        if outstanding_per_vcpu <= 0:
            raise ConfigurationError(
                f"outstanding_per_vcpu must be positive, got {outstanding_per_vcpu}"
            )
        if rpc_request_bytes <= 0:
            raise ConfigurationError(
                f"rpc_request_bytes must be positive, got {rpc_request_bytes}"
            )
        self.per_node_software_s = per_node_software_s
        self.outstanding_per_vcpu = outstanding_per_vcpu
        self.rpc_request_bytes = rpc_request_bytes
        self.remote_link = remote_link or get_link("sw_remote_dram")

    def remote_fraction(self, num_servers: int) -> float:
        """Fraction of fetched bytes that cross servers (hash partition)."""
        if num_servers <= 0:
            raise ConfigurationError(
                f"num_servers must be positive, got {num_servers}"
            )
        return 1.0 - 1.0 / num_servers

    def effective_remote_bandwidth(self, shape: WorkloadShape) -> float:
        """Per-vCPU remote bandwidth with the thread pool's concurrency.

        The wire request is the coalesced RPC, not a single access, but
        never smaller than the workload's own mean access size.
        """
        mean = max(
            self.rpc_request_bytes, int(round(shape.mean_request_bytes))
        )
        return self.remote_link.effective_bandwidth(mean, self.outstanding_per_vcpu)

    def seconds_per_root(self, shape: WorkloadShape, num_servers: int) -> float:
        """Wall time one vCPU spends per root sample."""
        touched = shape.neighbor_ops + shape.attr_nodes
        software = touched * self.per_node_software_s
        remote_bytes = shape.fetch_bytes * self.remote_fraction(num_servers)
        remote_wait = remote_bytes / self.effective_remote_bandwidth(shape)
        return software + remote_wait

    def roots_per_second(self, shape: WorkloadShape, num_servers: int) -> float:
        """Sampling throughput of one vCPU, in root samples per second."""
        return 1.0 / self.seconds_per_root(shape, num_servers)

    def batches_per_second(
        self, shape: WorkloadShape, num_servers: int, batch_size: int = 512
    ) -> float:
        """Sampling throughput of one vCPU, in mini-batches per second."""
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        return self.roots_per_second(shape, num_servers) / batch_size
