"""Optional FP32 GEMM engine (§4.1).

"An optional FP32 general matrix-multiplication engine (GEMM) ... can
be added to the design. Although FPGA's FP32 TFlops is not competitive
with GPU or even CPU, GEMM/VPU might be useful in latency-sensitive
inference tasks with simpler model, in which case data movement from
FPGA to local or remote GPU can be eliminated."

This is a functional systolic-array model: exact FP32 results (NumPy),
a cycle model for an ``rows x cols`` MAC array with output-stationary
dataflow, and a resource estimate that scales with the array geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.axe.resources import ResourceEstimate
from repro.units import MEGA


@dataclass(frozen=True)
class GemmConfig:
    """Systolic-array geometry and clock."""

    array_rows: int = 32
    array_cols: int = 32
    frequency_hz: float = 250e6

    def __post_init__(self) -> None:
        if self.array_rows <= 0 or self.array_cols <= 0:
            raise ConfigurationError("array dimensions must be positive")
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")

    @property
    def macs_per_cycle(self) -> int:
        return self.array_rows * self.array_cols

    @property
    def peak_tflops(self) -> float:
        """Peak FP32 TFLOPs (2 flops per MAC)."""
        return 2 * self.macs_per_cycle * self.frequency_hz / 1e12


class GemmEngine:
    """Output-stationary FP32 GEMM on an ``R x C`` MAC array."""

    def __init__(self, config: Optional[GemmConfig] = None) -> None:
        self.config = config or GemmConfig()
        self.total_cycles = 0
        self.total_flops = 0

    def matmul(self, a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, int]:
        """Compute ``a @ b``; returns (result, cycles).

        Tiles the (M, K) x (K, N) product over the array: each
        ``array_rows x array_cols`` output tile streams K partial sums,
        plus a fill/drain overhead of ``array_rows + array_cols``.
        """
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        if a.ndim != 2 or b.ndim != 2:
            raise ConfigurationError("matmul operands must be 2-D")
        if a.shape[1] != b.shape[0]:
            raise ConfigurationError(
                f"inner dimensions differ: {a.shape} x {b.shape}"
            )
        m, k = a.shape
        _k, n = b.shape
        rows, cols = self.config.array_rows, self.config.array_cols
        row_tiles = -(-m // rows)
        col_tiles = -(-n // cols)
        cycles = row_tiles * col_tiles * (k + rows + cols)
        self.total_cycles += cycles
        self.total_flops += 2 * m * k * n
        return a @ b, cycles

    def time_for(self, m: int, k: int, n: int) -> float:
        """Seconds to compute an (M, K) x (K, N) product."""
        if min(m, k, n) <= 0:
            raise ConfigurationError("matrix dimensions must be positive")
        rows, cols = self.config.array_rows, self.config.array_cols
        cycles = (-(-m // rows)) * (-(-n // cols)) * (k + rows + cols)
        return cycles / self.config.frequency_hz

    def achieved_tflops(self) -> float:
        """Sustained TFLOPs over everything executed so far."""
        if self.total_cycles == 0:
            return 0.0
        seconds = self.total_cycles / self.config.frequency_hz
        return self.total_flops / seconds / 1e12

    def resources(self) -> ResourceEstimate:
        """FPGA resources: ~2 DSP slices per FP32 MAC plus control."""
        macs = self.config.macs_per_cycle
        return ResourceEstimate(
            clbs=macs * 0.01,
            luts=macs * 0.06,
            regs=macs * 0.12,
            bram_mb=macs * 64 * 4 / MEGA,  # tile buffers
            uram_mb=0.0,
            dsp=macs * 2.0,
        )
