"""Multi-card system simulation: the full 4-card PoC in one event loop.

:class:`~repro.axe.engine.AxeEngine` models one FPGA with a flat
"remote" channel; this module instantiates *all* cards of the PoC in a
shared simulation, with per-card local DDR channels, per-link fabric
channels from a :class:`~repro.mof.topology.FabricTopology`, and chained
request paths (fabric hop(s) + the owner card's DRAM). Every card both
samples its own batch shard and serves the other cards' remote reads —
the symmetric traffic the FaaS model assumes, now measured rather than
asserted.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.axe.core import AxeCore, CoreConfig
from repro.axe.events import Simulator
from repro.axe.loadunit import MemoryChannel
from repro.graph.csr import CSRGraph
from repro.graph.partition import HashPartitioner
from repro.memstore.links import LinkModel, get_link
from repro.mof.topology import FabricTopology, full_mesh


class PathChannel:
    """A chained request path: traverse each leg in order.

    Used for remote reads: the request crosses the fabric link(s), then
    the owner card's DRAM channel, each leg paying its own serialization
    and latency.
    """

    def __init__(self, legs: List[MemoryChannel], name: str = "path") -> None:
        if not legs:
            raise ConfigurationError("a path needs at least one leg")
        self.legs = legs
        self.name = name

    def request(self, nbytes: int, callback: Callable[[], None]) -> None:
        """Issue through every leg sequentially."""

        def advance(index: int) -> None:
            if index == len(self.legs):
                callback()
                return
            self.legs[index].request(nbytes, lambda: advance(index + 1))

        advance(0)


@dataclass(frozen=True)
class SystemConfig:
    """A multi-card deployment."""

    num_cards: int = 4
    cores_per_card: int = 2
    core: CoreConfig = dataclasses.field(default_factory=CoreConfig)
    local_link: LinkModel = dataclasses.field(
        default_factory=lambda: get_link("local_dram")
    )
    local_channels_per_card: int = 4
    output_link: Optional[LinkModel] = dataclasses.field(
        default_factory=lambda: get_link("pcie_host_dram")
    )
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_cards <= 0 or self.cores_per_card <= 0:
            raise ConfigurationError("cards and cores must be positive")
        if self.local_channels_per_card <= 0:
            raise ConfigurationError("local_channels_per_card must be positive")


@dataclass
class SystemStats:
    """Results of one system-wide batch."""

    elapsed_s: float
    roots: int
    per_card_roots: List[int]
    fabric_bytes: Dict[Tuple[int, int], int]
    remote_requests: int
    local_requests: int

    @property
    def roots_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.roots / self.elapsed_s

    @property
    def remote_fraction(self) -> float:
        total = self.remote_requests + self.local_requests
        return self.remote_requests / total if total else 0.0


class MultiCardSystem:
    """All cards of the PoC in one discrete-event simulation."""

    def __init__(
        self,
        graph: CSRGraph,
        config: Optional[SystemConfig] = None,
        topology: Optional[FabricTopology] = None,
    ) -> None:
        self.graph = graph
        self.config = config or SystemConfig()
        self.topology = topology or full_mesh(max(2, self.config.num_cards))
        if self.config.num_cards > 1 and (
            self.topology.num_nodes != self.config.num_cards
        ):
            raise ConfigurationError(
                f"topology has {self.topology.num_nodes} nodes, system has "
                f"{self.config.num_cards} cards"
            )
        self.partitioner = HashPartitioner(self.config.num_cards)

    def run_batch(self, roots: np.ndarray) -> SystemStats:
        """Sample a batch spread over all cards; returns system stats.

        Each root is processed by the card owning it (data-local
        dispatch); hop expansions and attribute fetches then go local
        or over the fabric according to node ownership.
        """
        roots = np.asarray(roots, dtype=np.int64)
        if roots.size == 0:
            raise ConfigurationError("cannot run an empty batch")
        config = self.config
        sim = Simulator()

        local_channels: List[List[MemoryChannel]] = [
            [
                MemoryChannel(sim, config.local_link, name=f"card{c}.local{i}")
                for i in range(config.local_channels_per_card)
            ]
            for c in range(config.num_cards)
        ]
        output_channels: List[Optional[MemoryChannel]] = [
            MemoryChannel(sim, config.output_link, name=f"card{c}.out")
            if config.output_link is not None
            else None
            for c in range(config.num_cards)
        ]
        fabric_link = LinkModel(
            "fabric",
            self.topology.hop_latency_s,
            self.topology.link_bandwidth,
            packet_overhead_bytes=8,  # amortized MoF framing (Table 5)
        )
        fabric_channels: Dict[Tuple[int, int], MemoryChannel] = {
            link: MemoryChannel(sim, fabric_link, name=f"fab{link}")
            for link in self.topology.links
        }
        remote_counter = [0]
        local_counter = [0]

        def make_router(card: int):
            def router(node: int):
                owner = int(self.partitioner.partition_of([node])[0])
                dram = local_channels[owner][node % config.local_channels_per_card]
                if owner == card:
                    local_counter[0] += 1
                    return dram
                remote_counter[0] += 1
                path = self.topology.shortest_path(card, owner)
                legs: List[MemoryChannel] = []
                for a, b in zip(path, path[1:]):
                    key = (a, b) if (a, b) in fabric_channels else (b, a)
                    legs.append(fabric_channels[key])
                legs.append(dram)
                return PathChannel(legs, name=f"card{card}->card{owner}")

            return router

        owners = self.partitioner.partition_of(roots)
        done = [0]
        active = 0
        per_card_roots = [0] * config.num_cards
        for card in range(config.num_cards):
            shard = roots[owners == card]
            per_card_roots[card] = int(shard.size)
            if shard.size == 0:
                continue
            active += 1
            cores = [
                AxeCore(
                    sim,
                    config.core,
                    self.graph,
                    make_router(card),
                    output_channel=output_channels[card],
                    seed=config.seed + 31 * card + core_index,
                    core_id=card * 100 + core_index,
                )
                for core_index in range(config.cores_per_card)
            ]
            sub_shards = [shard[i :: len(cores)] for i in range(len(cores))]
            live = [core for core, sub in zip(cores, sub_shards) if sub.size]

            def make_on_core_done(remaining):
                def on_core_done():
                    remaining[0] -= 1
                    if remaining[0] == 0:
                        done[0] += 1

                return on_core_done

            on_core_done = make_on_core_done([len(live)])

            for core, sub in zip(cores, sub_shards):
                if sub.size:
                    core.submit(sub, on_core_done)
        sim.run()
        if done[0] != active:
            raise ConfigurationError("system batch did not complete")
        return SystemStats(
            elapsed_s=sim.now,
            roots=int(roots.size),
            per_card_roots=per_card_roots,
            fabric_bytes={
                link: channel.stats.payload_bytes
                for link, channel in fabric_channels.items()
            },
            remote_requests=remote_counter[0],
            local_requests=local_counter[0],
        )
