"""Access Engine (AxE) hardware model: the paper's core contribution.

Cycle-approximate, event-driven simulation of the decoupled
access-execute sampling accelerator: FIFO-pipelined GetNeighbor /
GetSample / GetAttribute modules, an out-of-order load unit with
scoreboards, the streaming step-based sampler, and a small coalescing
cache — assembled into multi-core engines driven by Table 4 commands.
"""

from repro.axe.events import Simulator
from repro.axe.fifo import Fifo, PipelineStage, Pipeline
from repro.axe.sampling import ReservoirSampler, StreamingSampler
from repro.axe.loadunit import LoadUnit, MemoryChannel
from repro.axe.scoreboard import OrderingScoreboard
from repro.axe.cache import CoalescingCache
from repro.axe.core import AxeCore, CoreConfig
from repro.axe.engine import AxeEngine, EngineConfig, EngineStats
from repro.axe.commands import Command, CommandKind
from repro.axe.resources import ResourceEstimate, sampler_resources, engine_resources
from repro.axe.gemm import GemmConfig, GemmEngine
from repro.axe.vpu import VectorUnit, VpuConfig

__all__ = [
    "Simulator",
    "Fifo",
    "PipelineStage",
    "Pipeline",
    "ReservoirSampler",
    "StreamingSampler",
    "LoadUnit",
    "MemoryChannel",
    "OrderingScoreboard",
    "CoalescingCache",
    "AxeCore",
    "CoreConfig",
    "AxeEngine",
    "EngineConfig",
    "EngineStats",
    "Command",
    "CommandKind",
    "ResourceEstimate",
    "sampler_resources",
    "engine_resources",
    "GemmConfig",
    "GemmEngine",
    "VectorUnit",
    "VpuConfig",
]
