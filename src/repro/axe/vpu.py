"""Optional vector processing unit (VPU, §4.1).

"the FPGA compute units are preferable for reductions in the sampling
stages in order to reduce communication overhead, such as the case for
GCN." The VPU performs elementwise/reduction operations on attribute
vectors *before* they leave the FPGA, shrinking the sampled-subgraph
output from (nodes x attr) to (groups x attr).

Functional results are exact; timing is lanes-per-cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.axe.resources import ResourceEstimate
from repro.units import MEGA

_REDUCTIONS = {
    "sum": np.add.reduce,
    "max": np.maximum.reduce,
    "mean": None,  # handled explicitly (sum + scale)
}


@dataclass(frozen=True)
class VpuConfig:
    """Vector unit geometry."""

    lanes: int = 16
    frequency_hz: float = 250e6

    def __post_init__(self) -> None:
        if self.lanes <= 0:
            raise ConfigurationError(f"lanes must be positive, got {self.lanes}")
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")


class VectorUnit:
    """SIMD lanes for elementwise ops and neighborhood reductions."""

    def __init__(self, config: Optional[VpuConfig] = None) -> None:
        self.config = config or VpuConfig()
        self.total_cycles = 0

    def _elementwise_cycles(self, elements: int) -> int:
        return -(-elements // self.config.lanes)

    def elementwise(self, op: str, a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, int]:
        """Lane-parallel elementwise op; returns (result, cycles)."""
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        if a.shape != b.shape:
            raise ConfigurationError(f"shape mismatch: {a.shape} vs {b.shape}")
        ops = {"add": np.add, "mul": np.multiply, "max": np.maximum}
        if op not in ops:
            raise ConfigurationError(
                f"unknown elementwise op {op!r}; expected one of {sorted(ops)}"
            )
        cycles = self._elementwise_cycles(a.size)
        self.total_cycles += cycles
        return ops[op](a, b), cycles

    def reduce_neighborhood(
        self, op: str, neighbors: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        """Reduce (groups, fanout, attr) -> (groups, attr).

        This is the GCN-style aggregation the paper suggests running on
        the FPGA to shrink output traffic by the fanout factor.
        """
        neighbors = np.asarray(neighbors, dtype=np.float32)
        if neighbors.ndim != 3:
            raise ConfigurationError(
                f"expected (groups, fanout, attr), got shape {neighbors.shape}"
            )
        if op not in _REDUCTIONS:
            raise ConfigurationError(
                f"unknown reduction {op!r}; expected one of {sorted(_REDUCTIONS)}"
            )
        groups, fanout, attr = neighbors.shape
        # Tree reduction: fanout-1 vector ops per group.
        cycles = groups * (fanout - 1) * self._elementwise_cycles(attr)
        self.total_cycles += max(cycles, 1)
        if op == "mean":
            result = neighbors.sum(axis=1) / fanout
        else:
            result = _REDUCTIONS[op](np.swapaxes(neighbors, 0, 1))
        return result.astype(np.float32), max(cycles, 1)

    def output_reduction_factor(self, fanout: int) -> float:
        """Output-traffic shrink when aggregating on-FPGA."""
        if fanout <= 0:
            raise ConfigurationError(f"fanout must be positive, got {fanout}")
        return float(fanout)

    def resources(self) -> ResourceEstimate:
        """~5 DSPs and modest logic per FP32 lane."""
        lanes = self.config.lanes
        return ResourceEstimate(
            clbs=lanes * 0.15,
            luts=lanes * 0.9,
            regs=lanes * 1.6,
            bram_mb=lanes * 8 * 4 / MEGA,
            uram_mb=0.0,
            dsp=lanes * 5.0,
        )


def onfpga_aggregation_speedup(
    attr_len: int,
    fanout: int,
    output_bandwidth: float,
    batch_nodes: int,
) -> float:
    """Output-time speedup from reducing neighborhoods before PCIe.

    Without the VPU, all ``batch_nodes`` attribute rows cross the
    output link; with GCN-style on-FPGA aggregation only one reduced
    row per group does.
    """
    if min(attr_len, fanout, batch_nodes) <= 0 or output_bandwidth <= 0:
        raise ConfigurationError("all arguments must be positive")
    raw_bytes = batch_nodes * attr_len * 4
    reduced_bytes = (batch_nodes // fanout) * attr_len * 4
    if reduced_bytes == 0:
        reduced_bytes = attr_len * 4
    return (raw_bytes / output_bandwidth) / (reduced_bytes / output_bandwidth)
