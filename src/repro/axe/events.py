"""Discrete-event simulation kernel.

A minimal, deterministic event loop: callbacks scheduled at absolute or
relative times, FIFO tie-breaking for simultaneous events. Time is in
seconds (hardware blocks convert from their own clock domains — the PoC
runs AxE/MoF at 250MHz and the RISC-V at 100MHz).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError


class Simulator:
    """Deterministic discrete-event simulator."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = count()
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    def at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        heapq.heappush(self._queue, (when, next(self._sequence), callback))

    def after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        self.at(self._now + delay, callback)

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains (or ``until``); returns final time.

        ``max_events`` guards against runaway simulations (a stalled
        pipeline that keeps rescheduling itself).
        """
        while self._queue:
            when, _seq, callback = self._queue[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = when
            self._events_processed += 1
            if self._events_processed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; simulation likely livelocked"
                )
            callback()
        return self._now

    def pending(self) -> int:
        """Number of scheduled-but-unexecuted events."""
        return len(self._queue)
