"""AxE command set (Table 4).

Commands arrive from the RISC-V controller through the decoder and are
dispatched by the top scheduler onto cores. This module defines the
command records and their validation; execution lives in
:mod:`repro.axe.engine`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import CommandError


class CommandKind(enum.Enum):
    """Table 4 command opcodes."""

    SET_CSR = "set_csr"
    READ_CSR = "read_csr"
    SAMPLE_N_HOP = "sample_n_hop"
    READ_NODE_ATTRIBUTE = "read_node_attribute"
    READ_EDGE_ATTRIBUTE = "read_edge_attribute"
    NEGATIVE_SAMPLE = "negative_sample"


@dataclass(frozen=True)
class Command:
    """One decoded AxE command."""

    kind: CommandKind
    #: Root node IDs (sample), node IDs (attr read), or flattened node
    #: pairs (edge attr / negative sample).
    nodes: Optional[np.ndarray] = None
    #: Per-hop sample counts for SAMPLE_N_HOP.
    fanouts: Tuple[int, ...] = ()
    #: Sampling method name ("streaming" or "reservoir"/"uniform").
    method: str = "streaming"
    #: Fetch node attributes as part of the command.
    with_attributes: bool = True
    #: Fetch edge weights alongside neighbor IDs.
    with_edge_attributes: bool = False
    #: Negatives per pair for NEGATIVE_SAMPLE.
    rate: int = 0
    #: CSR index and value for SET_CSR / READ_CSR.
    csr_index: int = 0
    csr_value: int = 0

    def __post_init__(self) -> None:
        if self.nodes is not None:
            object.__setattr__(
                self, "nodes", np.asarray(self.nodes, dtype=np.int64)
            )
        self._validate()

    def _validate(self) -> None:
        kind = self.kind
        if kind in (CommandKind.SET_CSR, CommandKind.READ_CSR):
            if not 0 <= self.csr_index < 32:
                raise CommandError(
                    f"CSR index {self.csr_index} outside the 32-entry file"
                )
            return
        if self.nodes is None or self.nodes.size == 0:
            raise CommandError(f"{kind.value} requires a non-empty node list")
        if kind is CommandKind.SAMPLE_N_HOP:
            if not self.fanouts:
                raise CommandError("sample_n_hop requires at least one fanout")
            if any(f <= 0 for f in self.fanouts):
                raise CommandError(f"fanouts must be positive, got {self.fanouts}")
        if kind in (CommandKind.READ_EDGE_ATTRIBUTE, CommandKind.NEGATIVE_SAMPLE):
            if self.nodes.ndim != 2 or self.nodes.shape[1] != 2:
                raise CommandError(f"{kind.value} requires (n, 2) node pairs")
        if kind is CommandKind.NEGATIVE_SAMPLE and self.rate <= 0:
            raise CommandError(f"negative_sample requires rate > 0, got {self.rate}")


def sample_command(
    roots: np.ndarray,
    fanouts: Tuple[int, ...],
    method: str = "streaming",
    with_attributes: bool = True,
) -> Command:
    """Convenience constructor for the common n-hop sample command."""
    return Command(
        kind=CommandKind.SAMPLE_N_HOP,
        nodes=roots,
        fanouts=tuple(fanouts),
        method=method,
        with_attributes=with_attributes,
    )
