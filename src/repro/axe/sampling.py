"""Hardware sampling units: conventional vs streaming (Tech-2).

Two functional+timing models of the GetSample module:

* :class:`ReservoirSampler` — the conventional design: buffer all N
  candidates, then draw K. Needs N entries of storage and N + K cycles.
* :class:`StreamingSampler` — the paper's step-based approximate random
  sampler: divide the incoming stream into K groups and pick one random
  element per group. Needs O(1) storage beyond the K outputs and
  exactly N cycles (one per arriving candidate); it is a pure streaming
  operator that slots into the FIFO pipeline.

Functional behaviour matches :mod:`repro.framework.selectors`, so the
accuracy-parity experiment can swap samplers in GNN training.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.framework.selectors import select_streaming, select_uniform


class ReservoirSampler:
    """Conventional buffered random sampler: N storage, N + K cycles."""

    name = "reservoir"

    def sample(
        self, neighbors: np.ndarray, fanout: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, int, int]:
        """Sample ``fanout`` of ``neighbors``.

        Returns ``(samples, cycles, storage_entries)``.
        """
        neighbors = np.asarray(neighbors)
        if fanout <= 0:
            raise ConfigurationError(f"fanout must be positive, got {fanout}")
        if neighbors.size == 0:
            raise ConfigurationError("cannot sample from an empty neighbor list")
        samples = select_uniform(neighbors, fanout, rng)
        cycles = neighbors.size + fanout  # fill the buffer, then drain K
        storage = int(neighbors.size)
        return samples, cycles, storage

    def cycles(self, num_candidates: int, fanout: int) -> int:
        """Cycle count without sampling (for timing-only callers)."""
        if num_candidates <= 0 or fanout <= 0:
            raise ConfigurationError("num_candidates and fanout must be positive")
        return num_candidates + fanout

    def storage_entries(self, num_candidates: int) -> int:
        return max(0, num_candidates)


class StreamingSampler:
    """Step-based streaming sampler: O(1) storage, N cycles (Tech-2)."""

    name = "streaming"

    def sample(
        self, neighbors: np.ndarray, fanout: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, int, int]:
        """Sample ``fanout`` of ``neighbors``.

        Returns ``(samples, cycles, storage_entries)``; storage counts
        only the K output registers (the stream itself is not buffered).
        """
        neighbors = np.asarray(neighbors)
        if fanout <= 0:
            raise ConfigurationError(f"fanout must be positive, got {fanout}")
        if neighbors.size == 0:
            raise ConfigurationError("cannot sample from an empty neighbor list")
        samples = select_streaming(neighbors, fanout, rng)
        cycles = max(neighbors.size, fanout)  # one cycle per streamed element
        storage = int(fanout)
        return samples, cycles, storage

    def cycles(self, num_candidates: int, fanout: int) -> int:
        """Cycle count without sampling (for timing-only callers)."""
        if num_candidates <= 0 or fanout <= 0:
            raise ConfigurationError("num_candidates and fanout must be positive")
        return max(num_candidates, fanout)

    def storage_entries(self, num_candidates: int) -> int:
        return 0  # stream is consumed in place


def sampling_speedup(num_candidates: int, fanout: int) -> float:
    """Cycle-count advantage of streaming over the conventional design."""
    conventional = ReservoirSampler().cycles(num_candidates, fanout)
    streaming = StreamingSampler().cycles(num_candidates, fanout)
    return conventional / streaming
