"""Multi-core AxE engine: decoder, scheduler, CSRs, and command execution.

The engine assembles cores, memory channels, and the output IO into one
FPGA's accelerator (Figure 5): commands from the RISC-V arrive through
the decoder, the scheduler distributes work across the homogeneous
cores, and results leave through the command/data IO channel.

Each :meth:`AxeEngine.run` call builds a fresh event simulation, so
timing statistics are per-command and deterministic.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import CommandError, ConfigurationError
from repro.axe.commands import Command, CommandKind
from repro.axe.core import AxeCore, CoreConfig
from repro.axe.events import Simulator
from repro.axe.loadunit import MemoryChannel
from repro.graph.csr import CSRGraph
from repro.graph.partition import HashPartitioner
from repro.memstore.links import LinkModel, get_link


@dataclass(frozen=True)
class EngineConfig:
    """One FPGA's accelerator configuration (Table 10 is the PoC point)."""

    num_cores: int = 2
    core: CoreConfig = dataclasses.field(default_factory=CoreConfig)
    #: Local memory path of *one channel*; the engine instantiates
    #: ``num_local_channels`` of them (4x DDR4-1600 in the PoC).
    local_link: LinkModel = dataclasses.field(
        default_factory=lambda: get_link("local_dram")
    )
    num_local_channels: int = 4
    #: Remote memory path (MoF in the PoC, NIC paths in FaaS.base).
    remote_link: Optional[LinkModel] = dataclasses.field(
        default_factory=lambda: get_link("mof_fabric")
    )
    #: Result output path (PCIe in the PoC). ``None`` = on-chip consumer.
    output_link: Optional[LinkModel] = dataclasses.field(
        default_factory=lambda: get_link("pcie_host_dram")
    )
    #: Graph shards across this many FPGA nodes; accesses to shards other
    #: than ``my_node`` use the remote path.
    num_fpga_nodes: int = 1
    my_node: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigurationError(f"num_cores must be positive, got {self.num_cores}")
        if self.num_local_channels <= 0:
            raise ConfigurationError(
                f"num_local_channels must be positive, got {self.num_local_channels}"
            )
        if not 0 <= self.my_node < self.num_fpga_nodes:
            raise ConfigurationError(
                f"my_node {self.my_node} outside [0, {self.num_fpga_nodes})"
            )
        if self.num_fpga_nodes > 1 and self.remote_link is None:
            raise ConfigurationError(
                "multi-node configurations need a remote link"
            )


@dataclass
class EngineStats:
    """Timing results of one executed command."""

    elapsed_s: float
    roots: int
    events: int
    max_outstanding: int
    channel_utilization: Dict[str, float]
    channel_bytes: Dict[str, int]

    @property
    def roots_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.roots / self.elapsed_s

    def batches_per_second(self, batch_size: int = 512) -> float:
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        return self.roots_per_second / batch_size


class AxeEngine:
    """One FPGA's multi-core access engine."""

    def __init__(self, graph: CSRGraph, config: Optional[EngineConfig] = None) -> None:
        self.graph = graph
        self.config = config or EngineConfig()
        self._partitioner = HashPartitioner(self.config.num_fpga_nodes)
        self.csr_file = np.zeros(32, dtype=np.int64)

    # ------------------------------------------------------------ plumbing
    def _build(
        self, sampler_override: Optional[str] = None, fetch_attributes: Optional[bool] = None
    ) -> Tuple[Simulator, List[AxeCore], List[MemoryChannel]]:
        sim = Simulator()
        config = self.config
        local_channels = [
            MemoryChannel(sim, config.local_link, name=f"local{i}")
            for i in range(config.num_local_channels)
        ]
        remote_channel = (
            MemoryChannel(sim, config.remote_link, name="remote")
            if config.remote_link is not None and config.num_fpga_nodes > 1
            else None
        )
        output_channel = (
            MemoryChannel(sim, config.output_link, name="output")
            if config.output_link is not None
            else None
        )
        channels = list(local_channels)
        if remote_channel is not None:
            channels.append(remote_channel)
        if output_channel is not None:
            channels.append(output_channel)

        def router(node: int) -> MemoryChannel:
            if config.num_fpga_nodes > 1:
                owner = int(self._partitioner.partition_of([node])[0])
                if owner != config.my_node and remote_channel is not None:
                    return remote_channel
            return local_channels[node % config.num_local_channels]

        core_config = config.core
        overrides = {}
        if sampler_override is not None:
            overrides["sampler"] = sampler_override
        if fetch_attributes is not None:
            overrides["fetch_attributes"] = fetch_attributes
        if overrides:
            core_config = dataclasses.replace(core_config, **overrides)
        cores = [
            AxeCore(
                sim,
                core_config,
                self.graph,
                router,
                output_channel=output_channel,
                seed=config.seed + 17 * i,
                core_id=i,
            )
            for i in range(config.num_cores)
        ]
        return sim, cores, channels

    @staticmethod
    def _stats(
        sim: Simulator, cores: List[AxeCore], channels: List[MemoryChannel], roots: int
    ) -> EngineStats:
        return EngineStats(
            elapsed_s=sim.now,
            roots=roots,
            events=sim.events_processed,
            max_outstanding=max(core.load_unit.max_outstanding for core in cores),
            channel_utilization={c.name: c.utilization() for c in channels},
            channel_bytes={c.name: c.stats.payload_bytes for c in channels},
        )

    # ------------------------------------------------------------ commands
    def run(self, command: Command) -> Tuple[object, EngineStats]:
        """Decode and execute one command; returns (result, stats)."""
        handlers = {
            CommandKind.SET_CSR: self._run_set_csr,
            CommandKind.READ_CSR: self._run_read_csr,
            CommandKind.SAMPLE_N_HOP: self._run_sample,
            CommandKind.READ_NODE_ATTRIBUTE: self._run_read_node_attr,
            CommandKind.READ_EDGE_ATTRIBUTE: self._run_read_edge_attr,
            CommandKind.NEGATIVE_SAMPLE: self._run_negative_sample,
        }
        handler = handlers.get(command.kind)
        if handler is None:
            raise CommandError(f"unsupported command {command.kind}")
        return handler(command)

    def _run_set_csr(self, command: Command) -> Tuple[object, EngineStats]:
        self.csr_file[command.csr_index] = command.csr_value
        return None, EngineStats(0.0, 0, 0, 0, {}, {})

    def _run_read_csr(self, command: Command) -> Tuple[object, EngineStats]:
        value = int(self.csr_file[command.csr_index])
        return value, EngineStats(0.0, 0, 0, 0, {}, {})

    def _run_sample(self, command: Command) -> Tuple[object, EngineStats]:
        config = self.config
        core_config = dataclasses.replace(
            config.core,
            fanouts=tuple(command.fanouts),
            fetch_attributes=command.with_attributes,
            fetch_edge_weights=command.with_edge_attributes,
        )
        engine_config = dataclasses.replace(config, core=core_config)
        saved, self.config = self.config, engine_config
        try:
            sim, cores, channels = self._build(sampler_override=command.method)
        finally:
            self.config = saved
        roots = command.nodes
        shards = [roots[i :: len(cores)] for i in range(len(cores))]
        done = [0]

        def on_done() -> None:
            done[0] += 1

        active_cores = []
        for core, shard in zip(cores, shards):
            if shard.size:
                core.submit(shard, on_done)
                active_cores.append(core)
        sim.run()
        if done[0] != len(active_cores):
            raise CommandError("sampling command did not complete on all cores")
        results: Dict[int, List[np.ndarray]] = {}
        for core in active_cores:
            results.update(core.results)
        return results, self._stats(sim, cores, channels, int(roots.size))

    def _run_read_node_attr(self, command: Command) -> Tuple[object, EngineStats]:
        """Fetch attribute rows for a list of nodes (no sampling)."""
        sim, cores, channels = self._build()
        core = cores[0]
        nodes = command.nodes.reshape(-1)
        row_bytes = self.graph.attr_len * 4
        if row_bytes == 0:
            raise CommandError("graph carries no node attributes")
        remaining = [int(nodes.size)]

        def one_done() -> None:
            remaining[0] -= 1

        for node in nodes:
            core.load_unit.load(core.router(int(node)), row_bytes, one_done)
        sim.run()
        if remaining[0]:
            raise CommandError("attribute reads did not drain")
        values = self.graph.attributes(nodes)
        return values, self._stats(sim, cores, channels, int(nodes.size))

    def _run_read_edge_attr(self, command: Command) -> Tuple[object, EngineStats]:
        """Fetch the edge weight for each (src, dst) pair.

        Timing: one offset read plus a coalesced ID scan per source;
        functional result is the weight (or 1.0 when the graph carries
        no edge attributes; missing edges yield NaN).
        """
        sim, cores, channels = self._build()
        core = cores[0]
        pairs = command.nodes
        remaining = [int(pairs.shape[0])]

        def one_done() -> None:
            remaining[0] -= 1

        for src, _dst in pairs:
            src = int(src)
            degree = self.graph.degree(src)
            scan_bytes = max(core.config.id_bytes, degree * core.config.id_bytes)

            def after_offsets(s=src, nbytes=scan_bytes) -> None:
                core.load_unit.load(core.router(s), nbytes, one_done)

            core.load_unit.load(
                core.router(src), core.config.offset_read_bytes, after_offsets
            )
        sim.run()
        if remaining[0]:
            raise CommandError("edge attribute reads did not drain")
        weights = np.full(pairs.shape[0], np.nan, dtype=np.float32)
        for row, (src, dst) in enumerate(pairs):
            neighbors = self.graph.neighbors(int(src))
            matches = np.flatnonzero(neighbors == int(dst))
            if matches.size:
                if self.graph.edge_attr is not None:
                    offset = int(self.graph.indptr[int(src)]) + int(matches[0])
                    weights[row] = self.graph.edge_attr[offset]
                else:
                    weights[row] = 1.0
        return weights, self._stats(sim, cores, channels, int(pairs.shape[0]))

    def _run_negative_sample(self, command: Command) -> Tuple[object, EngineStats]:
        """Sample ``rate`` non-neighbors per pair (hardware path)."""
        sim, cores, channels = self._build()
        core = cores[0]
        pairs = command.nodes
        rng = np.random.default_rng(self.config.seed)
        remaining = [int(pairs.shape[0])]
        out = np.empty((pairs.shape[0], command.rate), dtype=np.int64)

        def one_done() -> None:
            remaining[0] -= 1

        num_nodes = self.graph.num_nodes
        for row, (src, _dst) in enumerate(pairs):
            src = int(src)
            degree = self.graph.degree(src)
            scan_bytes = max(core.config.id_bytes, degree * core.config.id_bytes)
            forbidden = set(int(x) for x in self.graph.neighbors(src))
            forbidden.add(src)
            filled = 0
            while filled < command.rate:
                draw = int(rng.integers(0, num_nodes))
                if draw in forbidden and len(forbidden) < num_nodes:
                    continue
                out[row, filled] = draw
                filled += 1

            def after_offsets(s=src, nbytes=scan_bytes) -> None:
                core.load_unit.load(core.router(s), nbytes, one_done)

            core.load_unit.load(
                core.router(src), core.config.offset_read_bytes, after_offsets
            )
        sim.run()
        if remaining[0]:
            raise CommandError("negative sampling did not drain")
        return out, self._stats(sim, cores, channels, int(pairs.shape[0]))
