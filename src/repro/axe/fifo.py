"""FIFO-connected producer-consumer pipeline machinery (Tech-1).

AxE's modules are built from fine-grained asynchronous stages connected
by bounded FIFOs (Figure 6). Deep pipelining is what lets a batch of N
items complete in roughly ``N + depth`` cycles instead of
``N * work_per_item`` — the effect Figure 7 measures.

The model here is cycle-accurate for a linear pipeline: each stage has
an initiation interval (II, cycles between accepted items) and a
latency; a stage stalls when its output FIFO is full (backpressure).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Sequence

from repro.errors import CapacityError, ConfigurationError


class Fifo:
    """Bounded FIFO queue connecting two pipeline stages."""

    def __init__(self, depth: int) -> None:
        if depth <= 0:
            raise ConfigurationError(f"FIFO depth must be positive, got {depth}")
        self.depth = depth
        self._items: Deque[object] = deque()

    def push(self, item: object) -> None:
        if self.full:
            raise CapacityError("push to a full FIFO")
        self._items.append(item)

    def pop(self) -> object:
        if self.empty:
            raise CapacityError("pop from an empty FIFO")
        return self._items.popleft()

    @property
    def full(self) -> bool:
        return len(self._items) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._items

    def __len__(self) -> int:
        return len(self._items)


class PipelineStage:
    """One pipeline stage with an initiation interval and a latency.

    ``work`` transforms an item (identity by default); timing is what
    the pipeline model cares about.
    """

    def __init__(
        self, name: str, initiation_interval: int = 1, latency: int = 1, work=None
    ) -> None:
        if initiation_interval <= 0:
            raise ConfigurationError(
                f"initiation_interval must be positive, got {initiation_interval}"
            )
        if latency < initiation_interval:
            raise ConfigurationError(
                "latency must be at least the initiation interval"
            )
        self.name = name
        self.initiation_interval = initiation_interval
        self.latency = latency
        self.work = work or (lambda item: item)
        # (ready_cycle, item) entries currently in flight inside the stage
        self._in_flight: Deque[List] = deque()
        self._next_accept_cycle = 0

    def reset(self) -> None:
        self._in_flight.clear()
        self._next_accept_cycle = 0


class Pipeline:
    """A linear pipeline of stages connected by bounded FIFOs.

    :meth:`run` feeds a sequence of items and returns the cycle at which
    the last item leaves the final stage. The simulation advances cycle
    by cycle; per-cycle work is O(stages), so runtime is
    O(cycles * stages).
    """

    def __init__(self, stages: Sequence[PipelineStage], fifo_depth: int = 2) -> None:
        if not stages:
            raise ConfigurationError("pipeline needs at least one stage")
        self.stages = list(stages)
        # fifos[i] feeds stages[i]; one extra FIFO collects the output.
        self.fifos = [Fifo(fifo_depth) for _ in range(len(self.stages) + 1)]

    def run(self, items: Sequence[object]) -> "PipelineResult":
        """Push ``items`` through the pipeline; returns timing results."""
        for stage in self.stages:
            stage.reset()
        inputs: Deque[object] = deque(items)
        outputs: List[object] = []
        cycle = 0
        total = len(inputs)
        completed = 0
        # Iterate until every item has drained out of the last FIFO.
        while completed < total:
            # Drain the output FIFO (unbounded consumer).
            out_fifo = self.fifos[-1]
            while not out_fifo.empty:
                outputs.append(out_fifo.pop())
                completed += 1
            # Walk stages from back to front so an item can advance at
            # most one stage per cycle (no combinational fall-through).
            for index in range(len(self.stages) - 1, -1, -1):
                stage = self.stages[index]
                in_fifo = self.fifos[index]
                out_fifo = self.fifos[index + 1]
                # Retire finished items into the output FIFO.
                while (
                    stage._in_flight
                    and stage._in_flight[0][0] <= cycle
                    and not out_fifo.full
                ):
                    _ready, item = stage._in_flight.popleft()
                    out_fifo.push(stage.work(item))
                # Accept a new item if the II allows and there is space
                # in the stage's internal buffer (latency/II slots).
                slots = max(1, stage.latency // stage.initiation_interval)
                if (
                    not in_fifo.empty
                    and cycle >= stage._next_accept_cycle
                    and len(stage._in_flight) < slots
                ):
                    item = in_fifo.pop()
                    stage._in_flight.append([cycle + stage.latency, item])
                    stage._next_accept_cycle = cycle + stage.initiation_interval
            # Feed the first FIFO from the input sequence.
            while inputs and not self.fifos[0].full:
                self.fifos[0].push(inputs.popleft())
            cycle += 1
            if cycle > 100 * (total + 1) * sum(s.latency for s in self.stages) + 1000:
                raise CapacityError(
                    "pipeline failed to drain; stages are deadlocked"
                )
        return PipelineResult(cycles=cycle, outputs=outputs)

    @property
    def depth(self) -> int:
        """Total pipeline depth in stages."""
        return len(self.stages)


class PipelineResult:
    """Timing and data results from a pipeline run."""

    def __init__(self, cycles: int, outputs: List[object]) -> None:
        self.cycles = cycles
        self.outputs = outputs

    def throughput(self, frequency_hz: float) -> float:
        """Items per second at the given clock."""
        if self.cycles == 0:
            return 0.0
        return len(self.outputs) / (self.cycles / frequency_hz)


def get_neighbor_pipeline(
    avg_degree: float = 10.0, fifo_depth: int = 4
) -> Pipeline:
    """The GetNeighbor sub-module pipeline of Figure 6.

    Five FIFO-connected sub-stages: command decode, index lookup,
    offset fetch, neighbor-ID stream, and the sample handoff. The
    ID-stream stage's initiation interval tracks the average adjacency
    length (one 64B line per ~8 neighbors); everything else accepts one
    item per cycle — the "fine-grained async-pipelining" of Tech-1.
    """
    if avg_degree <= 0:
        raise ConfigurationError(f"avg_degree must be positive, got {avg_degree}")
    # repro: allow[units-magic] 8 IDs per burst-line is the pipeline's
    # initiation-interval heuristic, not a bits/bytes conversion
    id_stream_ii = max(1, int(round(avg_degree / 8.0)))
    stages = [
        PipelineStage("cmd_decode", initiation_interval=1, latency=1),
        PipelineStage("index_lookup", initiation_interval=1, latency=2),
        PipelineStage("offset_fetch", initiation_interval=1, latency=2),
        PipelineStage(
            "id_stream",
            initiation_interval=id_stream_ii,
            latency=max(id_stream_ii, 2),
        ),
        PipelineStage("sample_handoff", initiation_interval=1, latency=1),
    ]
    return Pipeline(stages, fifo_depth=fifo_depth)


def split_work(total_work_cycles: int, depth: int) -> List[PipelineStage]:
    """Split a monolithic ``total_work_cycles`` computation into ``depth``
    balanced stages — the Figure 7 experiment's independent variable.

    Depth 1 models the unpipelined module: one stage whose II equals the
    whole work. Depth D splits the work into D stages of II =
    ceil(work/D), so deeper pipelines accept new items more often.
    """
    if total_work_cycles <= 0:
        raise ConfigurationError(
            f"total_work_cycles must be positive, got {total_work_cycles}"
        )
    if depth <= 0:
        raise ConfigurationError(f"depth must be positive, got {depth}")
    per_stage = -(-total_work_cycles // depth)
    return [
        PipelineStage(f"s{i}", initiation_interval=per_stage, latency=per_stage)
        for i in range(depth)
    ]
