"""Ordering scoreboards for the OoO load unit (Tech-3).

AxE issues memory requests out of order but must deliver results in
order at two points (Figure 6): root order (required by the training
loss computation) and neighbor order within a root (so neighbors from
different roots stay synchronized). A scoreboard tracks completion of
out-of-order responses and releases entries strictly in allocation
order.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.errors import CapacityError, SimulationError


class OrderingScoreboard:
    """Fixed-capacity, in-order-release completion tracker."""

    def __init__(self, capacity: int, name: str = "scoreboard") -> None:
        if capacity <= 0:
            raise CapacityError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        # entry id -> (done flag, payload); insertion order = release order
        self._entries: "OrderedDict[int, List]" = OrderedDict()
        self._next_id = 0
        self.max_occupancy = 0

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def allocate(self) -> int:
        """Reserve the next in-order slot; returns its entry ID."""
        if self.full:
            raise CapacityError(f"{self.name} is full ({self.capacity} entries)")
        entry_id = self._next_id
        self._next_id += 1
        self._entries[entry_id] = [False, None]
        self.max_occupancy = max(self.max_occupancy, len(self._entries))
        return entry_id

    def complete(self, entry_id: int, payload: Optional[object] = None) -> None:
        """Mark an entry's out-of-order response as arrived."""
        entry = self._entries.get(entry_id)
        if entry is None:
            raise SimulationError(
                f"{self.name}: completing unknown or already-released "
                f"entry {entry_id}"
            )
        if entry[0]:
            raise SimulationError(
                f"{self.name}: entry {entry_id} completed twice"
            )
        entry[0] = True
        entry[1] = payload

    def release_ready(self) -> List[object]:
        """Pop the longest completed prefix, preserving allocation order."""
        released: List[object] = []
        while self._entries:
            first_id = next(iter(self._entries))
            done, payload = self._entries[first_id]
            if not done:
                break
            del self._entries[first_id]
            released.append(payload)
        return released
