"""One AxE core: the per-root sampling state machine (Figure 5/6).

A core processes a window of root tasks concurrently. Each root walks
the GetNeighbor -> GetSample -> GetAttribute chain; every memory
operation goes through the core's out-of-order load unit onto the
engine-provided memory channels, and results are released in root
order through an ordering scoreboard before being written to the
output IO channel.

Timing is event-driven; functional sampling uses the same selection
strategies as the software reference, so correctness can be checked
against :class:`~repro.framework.sampler.MultiHopSampler`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.axe.cache import CoalescingCache
from repro.axe.events import Simulator
from repro.axe.loadunit import LoadUnit, MemoryChannel
from repro.axe.sampling import ReservoirSampler, StreamingSampler
from repro.axe.scoreboard import OrderingScoreboard
from repro.graph.csr import CSRGraph


_SAMPLERS = {
    "streaming": StreamingSampler,
    "reservoir": ReservoirSampler,
    "uniform": ReservoirSampler,  # functional alias for the baseline
}


@dataclass(frozen=True)
class CoreConfig:
    """Microarchitectural parameters of one AxE core."""

    fanouts: Tuple[int, ...] = (10, 10)
    sampler: str = "streaming"
    #: Concurrent root tasks (root scoreboard capacity).
    window: int = 16
    #: Load-unit tag-file capacity (outstanding requests).
    max_tags: int = 256
    #: Deliver memory responses in issue order (the pre-Tech-3 baseline).
    in_order: bool = False
    #: Merge element accesses into 64B-line requests (Tech-4 cache).
    coalescing: bool = True
    frequency_hz: float = 250e6
    #: Fetch attributes of sampled nodes.
    fetch_attributes: bool = True
    #: Also fetch per-edge weights during GetNeighbor (Table 4's
    #: "w/ or w/o edge attribute").
    fetch_edge_weights: bool = False
    #: Reduce each sampled neighborhood on-FPGA (VPU, §4.1) before
    #: output: ships one aggregated row per group instead of one row
    #: per node, cutting output traffic by ~the fanout.
    reduce_output: bool = False
    #: Bytes of one index+offset structure lookup.
    offset_read_bytes: int = 32
    id_bytes: int = 8
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if not self.fanouts or any(f <= 0 for f in self.fanouts):
            raise ConfigurationError(f"invalid fanouts {self.fanouts}")
        if self.sampler not in _SAMPLERS:
            raise ConfigurationError(
                f"unknown sampler {self.sampler!r}; expected one of "
                f"{sorted(_SAMPLERS)}"
            )
        if self.window <= 0 or self.max_tags <= 0:
            raise ConfigurationError("window and max_tags must be positive")
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency_hz must be positive")


class _RootTask:
    """In-flight state of one root sample."""

    __slots__ = ("root", "board_entry", "layers", "pending", "output_bytes")

    def __init__(self, root: int, board_entry: int) -> None:
        self.root = root
        self.board_entry = board_entry
        self.layers: List[np.ndarray] = [np.asarray([root], dtype=np.int64)]
        self.pending = 0
        self.output_bytes = 0


class AxeCore:
    """One homogeneous AxE core.

    Parameters
    ----------
    sim:
        Shared event simulator.
    config:
        Core microarchitecture.
    graph:
        Functional graph (neighbor lists and attribute length).
    router:
        ``router(node) -> MemoryChannel`` chooses the memory path that
        owns the node's data (local DDR channel, PCIe host path, or the
        MoF remote path).
    output_channel:
        IO channel results are written to (PCIe or GPU link), shared
        across cores; ``None`` drops results (modeling an on-chip
        consumer).
    seed:
        Per-core RNG seed.
    """

    def __init__(
        self,
        sim: Simulator,
        config: CoreConfig,
        graph: CSRGraph,
        router: Callable[[int], MemoryChannel],
        output_channel: Optional[MemoryChannel] = None,
        seed: int = 0,
        core_id: int = 0,
    ) -> None:
        self.sim = sim
        self.config = config
        self.graph = graph
        self.router = router
        self.output_channel = output_channel
        self.core_id = core_id
        self.rng = np.random.default_rng(seed)
        self.load_unit = LoadUnit(
            sim,
            max_tags=config.max_tags,
            in_order=config.in_order,
            name=f"core{core_id}.loadunit",
        )
        self.sampler = _SAMPLERS[config.sampler]()
        self.cache = CoalescingCache(line_bytes=config.line_bytes)
        self.root_board = OrderingScoreboard(config.window, name=f"core{core_id}.roots")
        self._queue: List[int] = []
        self._results: Dict[int, List[np.ndarray]] = {}
        self._on_done: Optional[Callable[[], None]] = None
        self._outputs_pending = 0
        self._all_submitted = False
        self.sampling_busy_cycles = 0

    # ------------------------------------------------------------ batch API
    def submit(self, roots: np.ndarray, on_done: Callable[[], None]) -> None:
        """Queue a batch of roots; ``on_done`` fires when every root's
        result has been written to the output channel."""
        roots = np.asarray(roots, dtype=np.int64)
        if roots.size == 0:
            raise ConfigurationError("cannot submit an empty batch")
        self._queue = list(int(r) for r in roots)
        self._on_done = on_done
        self._all_submitted = False
        self._outputs_pending = 0
        self._results = {}
        # Prime the window; further roots start as slots free up.
        self.sim.after(0.0, self._fill_window)

    @property
    def results(self) -> Dict[int, List[np.ndarray]]:
        """Per-root sampled layers, keyed by root node ID."""
        return self._results

    def _fill_window(self) -> None:
        while self._queue and not self.root_board.full:
            root = self._queue.pop(0)
            entry = self.root_board.allocate()
            task = _RootTask(root, entry)
            self._expand(task, hop=0)
        if not self._queue:
            self._all_submitted = True
            self._maybe_finish()

    # ------------------------------------------------------------- the FSM
    def _cycles_delay(self, cycles: int) -> float:
        return cycles / self.config.frequency_hz

    def _expand(self, task: _RootTask, hop: int) -> None:
        """GetNeighbor + GetSample for every node of the current frontier."""
        frontier = task.layers[hop]
        fanout = self.config.fanouts[hop]
        groups: List[Optional[np.ndarray]] = [None] * frontier.size
        remaining = [frontier.size]

        def group_done(index: int, sampled: np.ndarray) -> None:
            groups[index] = sampled
            remaining[0] -= 1
            if remaining[0] == 0:
                task.layers.append(np.concatenate(groups))
                next_hop = hop + 1
                if next_hop < len(self.config.fanouts):
                    self._expand(task, next_hop)
                else:
                    self._fetch_attributes(task)

        for index, node in enumerate(frontier):
            self._get_neighbors_then_sample(
                int(node), fanout, lambda s, i=index: group_done(i, s)
            )

    def _get_neighbors_then_sample(
        self, node: int, fanout: int, on_sampled: Callable[[np.ndarray], None]
    ) -> None:
        channel = self.router(node)

        def after_ids() -> None:
            neighbors = self.graph.neighbors(node)
            if neighbors.size == 0:
                sampled = np.full(fanout, node, dtype=np.int64)
                on_sampled(sampled)
                return
            sampled, cycles, _storage = self.sampler.sample(
                neighbors, fanout, self.rng
            )
            self.sampling_busy_cycles += cycles
            self.sim.after(
                self._cycles_delay(cycles),
                lambda: on_sampled(np.asarray(sampled, dtype=np.int64)),
            )

        def after_offsets() -> None:
            degree = self.graph.degree(node)
            if degree == 0:
                after_ids()
                return
            id_bytes = degree * self.config.id_bytes
            if self.config.fetch_edge_weights:
                id_bytes += degree * 4  # float32 weight per edge
            base_addr = int(self.graph.indptr[node]) * self.config.id_bytes
            if self.config.coalescing:
                num_requests = self.cache.access(
                    base_addr, id_bytes, self.config.id_bytes
                )
                request_bytes = self.config.line_bytes
                if num_requests == 0:
                    after_ids()  # fully coalesced with resident lines
                    return
            else:
                num_requests = -(-id_bytes // self.config.id_bytes)
                request_bytes = self.config.id_bytes
            self._scatter_load(channel, num_requests, request_bytes, after_ids)

        self.load_unit.load(channel, self.config.offset_read_bytes, after_offsets)

    def _scatter_load(
        self,
        channel: MemoryChannel,
        num_requests: int,
        request_bytes: int,
        on_all_done: Callable[[], None],
    ) -> None:
        """Issue ``num_requests`` loads; fire the callback when all land."""
        remaining = [num_requests]

        def one_done() -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                on_all_done()

        for _ in range(num_requests):
            self.load_unit.load(channel, request_bytes, one_done)

    def _fetch_attributes(self, task: _RootTask) -> None:
        if not self.config.fetch_attributes or self.graph.attr_len == 0:
            self._complete_root(task)
            return
        nodes = np.concatenate([layer.reshape(-1) for layer in task.layers])
        row_bytes = self.graph.attr_len * 4
        if self.config.reduce_output:
            # One aggregated row per GetNeighbor group (the GCN-style
            # on-FPGA reduction): the root plus one row per expanded
            # node, instead of one per sampled node.
            groups = 1 + sum(
                layer.reshape(-1).size for layer in task.layers[:-1]
            )
            task.output_bytes = groups * (row_bytes + self.config.id_bytes)
        else:
            task.output_bytes = int(nodes.size) * (
                row_bytes + self.config.id_bytes
            )
        remaining = [int(nodes.size)]

        def one_done() -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                self._complete_root(task)

        for node in nodes:
            self.load_unit.load(self.router(int(node)), row_bytes, one_done)

    def _complete_root(self, task: _RootTask) -> None:
        if task.output_bytes == 0:
            # IDs only (no attributes fetched).
            total_ids = sum(layer.size for layer in task.layers)
            task.output_bytes = total_ids * self.config.id_bytes
        self._results[task.root] = task.layers
        self.root_board.complete(task.board_entry, task)
        for released in self.root_board.release_ready():
            self._emit_output(released)
        self._fill_window()

    def _emit_output(self, task: _RootTask) -> None:
        self._outputs_pending += 1

        def output_done() -> None:
            self._outputs_pending -= 1
            self._maybe_finish()

        if self.output_channel is None:
            self.sim.after(0.0, output_done)
        else:
            self.output_channel.request(task.output_bytes, output_done)

    def _maybe_finish(self) -> None:
        if (
            self._all_submitted
            and not self._queue
            and self.root_board.occupancy == 0
            and self._outputs_pending == 0
            and self._on_done is not None
        ):
            callback, self._on_done = self._on_done, None
            callback()
