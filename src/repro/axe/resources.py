"""FPGA resource model (Table 11 and the Tech-2 resource claims).

Component budgets are calibrated so the PoC configuration (2 AxE cores,
3 QSFP-DD MoF channels, one RISC-V E906, PCIe/shared-memory subsystem)
reproduces the Table 11 utilization of a Xilinx VU13P, and so the
streaming sampler's savings over the conventional buffered sampler land
at the paper's 91.9% LUTs / 23% registers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import KILO, MEGA


@dataclass(frozen=True)
class ResourceEstimate:
    """FPGA resource usage."""

    clbs: float = 0.0  # thousands
    luts: float = 0.0  # thousands
    regs: float = 0.0  # thousands
    bram_mb: float = 0.0
    uram_mb: float = 0.0
    dsp: float = 0.0

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            self.clbs + other.clbs,
            self.luts + other.luts,
            self.regs + other.regs,
            self.bram_mb + other.bram_mb,
            self.uram_mb + other.uram_mb,
            self.dsp + other.dsp,
        )

    def scale(self, factor: float) -> "ResourceEstimate":
        if factor < 0:
            raise ConfigurationError(f"scale factor must be >= 0, got {factor}")
        return ResourceEstimate(
            self.clbs * factor,
            self.luts * factor,
            self.regs * factor,
            self.bram_mb * factor,
            self.uram_mb * factor,
            self.dsp * factor,
        )


#: Xilinx VU13P device totals (Table 11 header row).
VU13P_TOTALS = ResourceEstimate(
    clbs=216.0, luts=1728.0, regs=3456.0, bram_mb=94.5, uram_mb=360.0, dsp=12288.0
)

#: Per-component budgets calibrated against Table 11 (see module docstring).
AXE_CORE = ResourceEstimate(clbs=20.0, luts=120.0, regs=150.0, bram_mb=6.0, uram_mb=20.0, dsp=256.0)
MOF_PER_QSFP = ResourceEstimate(clbs=12.0, luts=60.0, regs=90.0, bram_mb=4.0, uram_mb=8.0, dsp=0.0)
RISCV_CONTROLLER = ResourceEstimate(clbs=6.0, luts=30.0, regs=40.0, bram_mb=1.1, uram_mb=0.0, dsp=16.0)
SUBSYSTEM = ResourceEstimate(clbs=48.7, luts=156.0, regs=167.0, bram_mb=12.0, uram_mb=80.0, dsp=1008.0)


def sampler_resources(kind: str, max_candidates: int = 4096) -> ResourceEstimate:
    """Resource estimate for one GetSample unit.

    The conventional buffered sampler stores up to ``max_candidates``
    candidates and needs index/compaction logic across the buffer; the
    streaming sampler needs only a group-boundary counter, an LFSR, and
    the K output registers.
    """
    if max_candidates <= 0:
        raise ConfigurationError(
            f"max_candidates must be positive, got {max_candidates}"
        )
    if kind in ("reservoir", "uniform", "conventional"):
        luts = 3.0 * max_candidates / KILO + 0.012
        regs = 3.0
        return ResourceEstimate(
            luts=luts, regs=regs, bram_mb=max_candidates * 64 / MEGA
        )
    if kind == "streaming":
        conventional = sampler_resources("reservoir", max_candidates)
        return ResourceEstimate(
            luts=conventional.luts * (1.0 - 0.919),
            regs=conventional.regs * (1.0 - 0.23),
            bram_mb=0.0,
        )
    raise ConfigurationError(f"unknown sampler kind {kind!r}")


def sampler_savings(max_candidates: int = 4096) -> dict:
    """LUT/register savings of streaming over conventional (Tech-2)."""
    conventional = sampler_resources("reservoir", max_candidates)
    streaming = sampler_resources("streaming", max_candidates)
    return {
        "lut_saving": 1.0 - streaming.luts / conventional.luts,
        "reg_saving": 1.0 - streaming.regs / conventional.regs,
        "bram_saving": 1.0
        - (streaming.bram_mb / conventional.bram_mb if conventional.bram_mb else 0.0),
    }


def engine_resources(num_cores: int = 2, num_qsfp: int = 3) -> ResourceEstimate:
    """Whole-FPGA resource usage for an engine configuration."""
    if num_cores <= 0:
        raise ConfigurationError(f"num_cores must be positive, got {num_cores}")
    if num_qsfp < 0:
        raise ConfigurationError(f"num_qsfp must be >= 0, got {num_qsfp}")
    total = (
        AXE_CORE.scale(num_cores)
        + MOF_PER_QSFP.scale(num_qsfp)
        + RISCV_CONTROLLER
        + SUBSYSTEM
    )
    return total


def utilization(usage: ResourceEstimate, device: ResourceEstimate = VU13P_TOTALS) -> dict:
    """Fractional utilization of each resource class."""
    return {
        "clbs": usage.clbs / device.clbs,
        "luts": usage.luts / device.luts,
        "regs": usage.regs / device.regs,
        "bram": usage.bram_mb / device.bram_mb,
        "uram": usage.uram_mb / device.uram_mb,
        "dsp": usage.dsp / device.dsp,
    }
