"""Out-of-order load unit and memory channels (Tech-3).

The load unit is AxE's door to the memory system: it embeds the request
context in a 128-bit tag (no thread state to store or switch), keeps a
large number of requests in flight, and lets responses return out of
order — ordering is re-imposed downstream by the scoreboards.

:class:`MemoryChannel` is a bandwidth/latency queueing model of one
memory path (a DDR channel group, the PCIe host path, or the MoF
fabric): requests serialize on the channel at its peak bandwidth and
complete after the link's base latency plus serialization time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

from repro.errors import CapacityError, ConfigurationError
from repro.axe.events import Simulator
from repro.memstore.links import LinkModel


@dataclass
class ChannelStats:
    """Traffic counters for one memory channel."""

    requests: int = 0
    payload_bytes: int = 0
    busy_time_s: float = 0.0


class MemoryChannel:
    """Bandwidth-serializing memory path attached to the simulator."""

    def __init__(self, sim: Simulator, link: LinkModel, name: Optional[str] = None) -> None:
        self.sim = sim
        self.link = link
        self.name = name or link.name
        self._next_free = 0.0
        self.stats = ChannelStats()

    def request(self, nbytes: int, callback: Callable[[], None]) -> float:
        """Issue a request; ``callback`` fires at completion time.

        Returns the completion time. Requests serialize on the channel
        (peak-bandwidth bound) and each pays the link's base latency.
        """
        if nbytes <= 0:
            raise ConfigurationError(f"nbytes must be positive, got {nbytes}")
        wire_bytes = nbytes + self.link.packet_overhead_bytes
        serialization = wire_bytes / self.link.peak_bandwidth
        start = max(self.sim.now, self._next_free)
        self._next_free = start + serialization
        complete = start + serialization + self.link.base_latency_s
        self.stats.requests += 1
        self.stats.payload_bytes += nbytes
        self.stats.busy_time_s += serialization
        self.sim.at(complete, callback)
        return complete

    def utilization(self) -> float:
        """Busy fraction of the channel over elapsed simulation time."""
        if self.sim.now <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time_s / self.sim.now)


@dataclass
class _PendingLoad:
    channel: MemoryChannel
    nbytes: int
    callback: Callable[[], None]


class LoadUnit:
    """Tagged, out-of-order load unit with a bounded tag file.

    Parameters
    ----------
    sim:
        The event simulator.
    max_tags:
        Tag-file capacity = maximum requests in flight. The paper's
        design embeds the context into a 128-bit tag so this can be
        large; the conventional blocking baseline is ``max_tags=1``.
    in_order:
        When True, responses are *delivered* in issue order (a response
        waits for all older requests) — the non-scoreboarded baseline
        the paper's 30x OoO claim is measured against.
    """

    def __init__(
        self,
        sim: Simulator,
        max_tags: int = 256,
        in_order: bool = False,
        name: str = "loadunit",
    ) -> None:
        if max_tags <= 0:
            raise CapacityError(f"max_tags must be positive, got {max_tags}")
        self.sim = sim
        self.max_tags = max_tags
        self.in_order = in_order
        self.name = name
        self._tags_in_use = 0
        self._wait_queue: Deque[_PendingLoad] = deque()
        # In-order delivery bookkeeping.
        self._issue_seq = 0
        self._deliver_seq = 0
        self._held: Dict[int, Callable[[], None]] = {}
        # Statistics
        self.issued = 0
        self.max_outstanding = 0

    @property
    def outstanding(self) -> int:
        return self._tags_in_use

    def load(
        self, channel: MemoryChannel, nbytes: int, callback: Callable[[], None]
    ) -> None:
        """Request ``nbytes`` from ``channel``; queue if no tag is free."""
        if self._tags_in_use < self.max_tags:
            self._issue(channel, nbytes, callback)
        else:
            self._wait_queue.append(_PendingLoad(channel, nbytes, callback))

    def _issue(
        self, channel: MemoryChannel, nbytes: int, callback: Callable[[], None]
    ) -> None:
        self._tags_in_use += 1
        self.issued += 1
        self.max_outstanding = max(self.max_outstanding, self._tags_in_use)
        seq = self._issue_seq
        self._issue_seq += 1

        def on_complete() -> None:
            if self.in_order:
                self._held[seq] = callback
                self._drain_in_order()
            else:
                self._finish(callback)

        channel.request(nbytes, on_complete)

    def _drain_in_order(self) -> None:
        while self._deliver_seq in self._held:
            callback = self._held.pop(self._deliver_seq)
            self._deliver_seq += 1
            self._finish(callback)

    def _finish(self, callback: Callable[[], None]) -> None:
        self._tags_in_use -= 1
        callback()
        # Freeing the tag may unblock a queued request.
        while self._wait_queue and self._tags_in_use < self.max_tags:
            pending = self._wait_queue.popleft()
            self._issue(pending.channel, pending.nbytes, pending.callback)
