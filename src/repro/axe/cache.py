"""Coalescing cache (Tech-4).

The paper argues temporal caching is useless in LSD-GNN (512-root
batches against 10-billion-node graphs leave no reuse; AliGraph already
caches hot nodes at the system level) and instead provisions only an
8KB cache whose job is *coalescing*: merging the element-granular
accesses of a contiguous edge list or attribute row into line-granular
memory requests.

This model is a direct-mapped, 64B-line cache that answers: how many
memory requests does a contiguous read of ``nbytes`` at ``addr``
actually issue? Uncached hardware issues one request per element;
cached hardware issues one per missing line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.units import KB


@dataclass
class CacheStats:
    """Hit/miss counters (line granularity)."""

    line_hits: int = 0
    line_misses: int = 0
    element_accesses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.line_hits + self.line_misses
        return self.line_hits / total if total else 0.0

    @property
    def coalescing_factor(self) -> float:
        """Element accesses per issued memory request."""
        if self.line_misses == 0:
            return float(self.element_accesses) if self.element_accesses else 1.0
        return self.element_accesses / self.line_misses


class CoalescingCache:
    """Direct-mapped line cache used purely for spatial coalescing."""

    def __init__(self, capacity_bytes: int = 8 * KB, line_bytes: int = 64) -> None:
        if line_bytes <= 0 or capacity_bytes <= 0:
            raise ConfigurationError("capacity and line size must be positive")
        if capacity_bytes % line_bytes != 0:
            raise ConfigurationError(
                f"capacity ({capacity_bytes}) must be a multiple of the line "
                f"size ({line_bytes})"
            )
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self.num_lines = capacity_bytes // line_bytes
        self._lines: Dict[int, int] = {}  # set index -> resident tag
        self.stats = CacheStats()

    def access(self, addr: int, nbytes: int, element_bytes: int = 8) -> int:
        """Read ``nbytes`` at ``addr``; returns memory requests issued.

        ``element_bytes`` is the natural access granularity of the
        requesting unit (8B node IDs); it is what an uncached design
        would issue per element and is counted in the stats.
        """
        if addr < 0 or nbytes <= 0:
            raise ConfigurationError("addr must be >= 0 and nbytes positive")
        if element_bytes <= 0:
            raise ConfigurationError(
                f"element_bytes must be positive, got {element_bytes}"
            )
        self.stats.element_accesses += -(-nbytes // element_bytes)
        first_line = addr // self.line_bytes
        last_line = (addr + nbytes - 1) // self.line_bytes
        misses = 0
        for line in range(first_line, last_line + 1):
            set_index = line % self.num_lines
            if self._lines.get(set_index) == line:
                self.stats.line_hits += 1
            else:
                self._lines[set_index] = line
                self.stats.line_misses += 1
                misses += 1
        return misses

    def requests_for(self, addr: int, nbytes: int) -> int:
        """Lines spanned by a contiguous read (no state update)."""
        if addr < 0 or nbytes <= 0:
            raise ConfigurationError("addr must be >= 0 and nbytes positive")
        first_line = addr // self.line_bytes
        last_line = (addr + nbytes - 1) // self.line_bytes
        return last_line - first_line + 1

    def reset(self) -> None:
        """Invalidate all lines and zero the stats."""
        self._lines.clear()
        self.stats = CacheStats()
