"""Pluggable sampling backends behind the serving gateway.

Two execution targets from the rest of the repo are wrapped behind one
interface: the AliGraph-style software :class:`MultiHopSampler` (the
CPU path the paper characterizes) and the event-simulated
:class:`AxeEngine` (the FPGA path). A backend owes the gateway two
things per micro-batch: the functional result (optional, for
timing-only studies) and the *service time* the batch occupies one of
its slots — virtual time for the gateway's discrete-event run.

Backends carry a health bit so the gateway can inject failures and
exercise graceful degradation (hardware dies, software absorbs the
in-flight and subsequent load).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.axe.commands import sample_command
from repro.axe.engine import AxeEngine
from repro.framework.requests import SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.units import US


def nodes_per_root(fanouts: Tuple[int, ...]) -> int:
    """Total nodes touched per root (root + every sampled hop)."""
    total = 1
    layer = 1
    for fanout in fanouts:
        layer *= fanout
        total += layer
    return total


@dataclass
class BackendResult:
    """What one micro-batch execution produced."""

    #: Functional payload (sample layers); ``None`` in timing-only mode.
    payload: Optional[object]
    #: Virtual time the batch occupies a backend slot.
    service_s: float


class ServingBackend(abc.ABC):
    """One execution target with bounded slot concurrency."""

    def __init__(self, name: str, concurrency: int) -> None:
        if concurrency <= 0:
            raise ConfigurationError(
                f"concurrency must be positive, got {concurrency}"
            )
        self.name = name
        self.concurrency = concurrency
        self.healthy = True

    @abc.abstractmethod
    def execute(
        self, roots: np.ndarray, fanouts: Tuple[int, ...]
    ) -> BackendResult:
        """Run one micro-batch; returns payload + service time."""

    def fail(self) -> None:
        """Fault-injection hook: mark this backend dead."""
        self.healthy = False

    def restore(self) -> None:
        self.healthy = True


class SoftwareBackend(ServingBackend):
    """The CPU sampling-service path (AliGraph workers on vCPUs).

    Service time follows the same first-order cost model as
    :class:`repro.framework.service.ServiceConfig`: a fixed RPC/setup
    overhead plus a per-touched-key software cost, divided across the
    worker pool's vCPU parallelism. When the wrapped sampler runs the
    batched fast path, the per-key cost is divided by
    ``batched_speedup`` (the measured factor from
    ``repro bench-sampler``). A sharded parallel sampler
    (:class:`~repro.parallel.ParallelSampler` with ``workers >= 1``)
    additionally divides by its worker count, discounted by
    ``parallel_efficiency`` for merge/gather time on the coordinator.
    """

    def __init__(
        self,
        sampler: MultiHopSampler,
        concurrency: int = 4,
        functional: bool = True,
        base_overhead_s: float = 150.0 * US,
        per_key_s: float = 3.0 * US,
        parallelism: int = 8,
        batched_speedup: float = 5.0,
        parallel_efficiency: float = 0.85,
        name: str = "software",
    ) -> None:
        super().__init__(name=name, concurrency=concurrency)
        if base_overhead_s <= 0 or per_key_s <= 0:
            raise ConfigurationError("overhead and per-key cost must be positive")
        if parallelism <= 0:
            raise ConfigurationError(
                f"parallelism must be positive, got {parallelism}"
            )
        if batched_speedup < 1.0:
            raise ConfigurationError(
                f"batched_speedup must be >= 1, got {batched_speedup}"
            )
        if not 0.0 < parallel_efficiency <= 1.0:
            raise ConfigurationError(
                f"parallel_efficiency must be in (0, 1], got {parallel_efficiency}"
            )
        self.sampler = sampler
        self.functional = functional
        self.base_overhead_s = base_overhead_s
        self.per_key_s = per_key_s
        self.parallelism = parallelism
        self.batched_speedup = batched_speedup
        self.parallel_efficiency = parallel_efficiency

    def sampling_speedup(self) -> float:
        """Modeled speedup of the wrapped sampler over the reference walk."""
        speedup = 1.0
        if getattr(self.sampler, "batched", False):
            speedup *= self.batched_speedup
        workers = getattr(self.sampler, "workers", 0)
        if workers >= 1:
            speedup *= max(1.0, workers * self.parallel_efficiency)
        return speedup

    def execute(
        self, roots: np.ndarray, fanouts: Tuple[int, ...]
    ) -> BackendResult:
        keys = int(roots.size) * nodes_per_root(fanouts)
        per_key_s = self.per_key_s / self.sampling_speedup()
        service_s = self.base_overhead_s + keys * per_key_s / self.parallelism
        payload = None
        if self.functional:
            payload = self.sampler.sample(
                SampleRequest(roots=roots, fanouts=fanouts)
            )
        return BackendResult(payload=payload, service_s=service_s)


class HardwareBackend(ServingBackend):
    """The AxE FPGA path behind a host dispatch interface.

    In functional mode every micro-batch runs through the event
    simulator and the measured ``elapsed_s`` (plus a fixed host
    dispatch overhead) is the service time. In timing-only mode the
    engine is probed once per fanout shape at two batch sizes and a
    linear (intercept + slope*roots) model stands in — the engine's
    pipelines make per-batch time affine in root count to first order.
    """

    def __init__(
        self,
        engine: AxeEngine,
        concurrency: int = 1,
        functional: bool = True,
        dispatch_overhead_s: float = 50.0 * US,
        name: str = "axe",
    ) -> None:
        super().__init__(name=name, concurrency=concurrency)
        if dispatch_overhead_s <= 0:
            raise ConfigurationError(
                f"dispatch_overhead_s must be positive, got {dispatch_overhead_s}"
            )
        self.engine = engine
        self.functional = functional
        self.dispatch_overhead_s = dispatch_overhead_s
        self._calibration: Dict[Tuple[int, ...], Tuple[float, float]] = {}

    def _calibrate(self, fanouts: Tuple[int, ...]) -> Tuple[float, float]:
        """Probe the engine at two batch sizes; fit time = a + b*roots."""
        model = self._calibration.get(fanouts)
        if model is not None:
            return model
        num_nodes = self.engine.graph.num_nodes
        sizes = (4, 16)
        times = []
        for size in sizes:
            probe = np.arange(size, dtype=np.int64) % num_nodes
            _result, stats = self.engine.run(sample_command(probe, fanouts))
            times.append(stats.elapsed_s)
        slope = (times[1] - times[0]) / (sizes[1] - sizes[0])
        slope = max(slope, 0.0)
        intercept = max(times[0] - slope * sizes[0], 0.0)
        model = (intercept, slope)
        self._calibration[fanouts] = model
        return model

    def execute(
        self, roots: np.ndarray, fanouts: Tuple[int, ...]
    ) -> BackendResult:
        if self.functional:
            results, stats = self.engine.run(sample_command(roots, fanouts))
            return BackendResult(
                payload=results,
                service_s=self.dispatch_overhead_s + stats.elapsed_s,
            )
        intercept, slope = self._calibrate(fanouts)
        service_s = self.dispatch_overhead_s + intercept + slope * roots.size
        return BackendResult(payload=None, service_s=service_s)
