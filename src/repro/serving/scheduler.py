"""SLO-aware dispatch order and per-tenant admission fair share.

Two policies live here, one per decision the gateway makes:

* **Admission** — a token bucket per tenant, provisioned at the
  tenant's fair-share rate (with headroom and burst). A tenant
  offering beyond its contract is refused *before* its excess can
  queue behind everyone else's traffic; refusals carry the
  earliest-useful retry time.
* **Dispatch** — earliest-deadline-first over ready micro-batches. A
  batch's deadline is the tightest member deadline, so a mixed batch
  inherits its most urgent tenant's urgency.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ConfigurationError(f"burst must be at least 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last_s = 0.0

    def _refill(self, now_s: float) -> None:
        if now_s > self._last_s:
            self._tokens = min(
                self.burst, self._tokens + (now_s - self._last_s) * self.rate
            )
            self._last_s = now_s

    @property
    def tokens(self) -> float:
        return self._tokens

    def try_take(self, now_s: float, cost: float = 1.0) -> bool:
        """Consume ``cost`` tokens if available; ``False`` otherwise."""
        self._refill(now_s)
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    def time_until(self, now_s: float, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will have accumulated."""
        self._refill(now_s)
        deficit = cost - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


class SloScheduler:
    """Token-bucket admission + earliest-deadline-first ready queue."""

    def __init__(self) -> None:
        self._buckets: Dict[str, TokenBucket] = {}
        self._ready: List[Tuple[float, int, object]] = []
        self._sequence = count()

    # ---------------------------------------------------------- admission
    def register_tenant(self, name: str, rate: float, burst: float) -> None:
        self._buckets[name] = TokenBucket(rate=rate, burst=burst)

    def admit(
        self, tenant: str, now_s: float, cost: float = 1.0
    ) -> Optional[float]:
        """Charge the tenant's bucket; ``None`` on success, otherwise
        the retry-after hint in seconds."""
        bucket = self._buckets.get(tenant)
        if bucket is None:
            raise ConfigurationError(f"unknown tenant {tenant!r}")
        if bucket.try_take(now_s, cost):
            return None
        return bucket.time_until(now_s, cost)

    # ----------------------------------------------------------- dispatch
    def push(self, deadline_s: float, item: object) -> None:
        """Queue a ready micro-batch keyed by its deadline."""
        heapq.heappush(self._ready, (deadline_s, next(self._sequence), item))

    def pop(self) -> object:
        """Remove and return the most urgent ready micro-batch."""
        if not self._ready:
            raise ConfigurationError("scheduler ready queue is empty")
        _deadline, _seq, item = heapq.heappop(self._ready)
        return item

    def peek_deadline(self) -> Optional[float]:
        if not self._ready:
            return None
        return self._ready[0][0]

    def __len__(self) -> int:
        return len(self._ready)
