"""Metrics registry and the :class:`ServingReport` for the gateway.

The serving layer is judged by distributions, not averages: admitted
p99 against the tenant SLO, shed rate under overload, and micro-batch
occupancy (how much cross-tenant coalescing the batcher achieved). The
registry accumulates raw observations during a run; the report is an
immutable snapshot with derived statistics.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.errors import ConfigurationError
from repro.units import MS_PER_S


def _percentile(samples: List[float], q: float) -> float:
    """Percentile of ``samples``; NaN when none were recorded.

    A latency percentile over zero completed requests is undefined —
    returning NaN keeps report plumbing (format strings, dashboards)
    alive instead of crashing an otherwise-valid empty-window report.
    Out-of-range ``q`` is still a caller bug and raises.
    """
    if not 0 <= q <= 100:
        raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
    if not samples:
        return float("nan")
    return float(np.percentile(samples, q))


@dataclass
class TenantReport:
    """Per-tenant slice of a serving run."""

    name: str
    slo_s: float
    offered: int = 0
    admitted: int = 0
    completed: int = 0
    shed: int = 0
    latencies_s: List[float] = field(default_factory=list)
    slo_misses: int = 0

    @property
    def shed_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    @property
    def slo_miss_rate(self) -> float:
        if self.completed == 0:
            return 0.0
        return self.slo_misses / self.completed

    def percentile(self, q: float) -> float:
        return _percentile(self.latencies_s, q)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)


@dataclass
class BackendReport:
    """Per-backend utilization slice of a serving run.

    Every derived statistic is total — not NaN, not a crash — for a
    backend that finished zero batches: a registered-but-idle backend
    (e.g. hardware that failed before its first dispatch, or software
    that never overflowed) is a normal outcome of a serving run, and
    report plumbing must survive it.
    """

    name: str
    concurrency: int
    batches: int = 0
    requests: int = 0
    busy_s: float = 0.0

    def utilization(self, duration_s: float) -> float:
        """Busy fraction of slot-time; 0.0 for empty windows/slots."""
        if duration_s <= 0 or self.concurrency <= 0:
            return 0.0
        return self.busy_s / (duration_s * self.concurrency)

    @property
    def mean_service_s(self) -> float:
        """Mean slot time per dispatched batch; 0.0 with zero batches."""
        if self.batches == 0:
            return 0.0
        return self.busy_s / self.batches

    @property
    def mean_batch_requests(self) -> float:
        """Mean requests coalesced per batch; 0.0 with zero batches."""
        if self.batches == 0:
            return 0.0
        return self.requests / self.batches


@dataclass
class ServingReport:
    """Result of one online serving run.

    ``duration_s`` is the workload window (used for rate
    normalization); ``drain_s`` is when the last admitted request
    completed (the gateway never drops admitted work, so it may drain
    past the arrival window).
    """

    duration_s: float
    drain_s: float
    offered: int
    admitted: int
    completed: int
    shed: int
    retried: int
    shed_by_reason: Dict[str, int]
    latencies_s: List[float]
    tenants: Dict[str, TenantReport]
    backends: Dict[str, BackendReport]
    batch_request_sizes: List[int]
    batch_root_sizes: List[int]
    max_queue_depth: int
    #: Store-level (memstore reliable-path) counters for the run, when
    #: a functional backend samples over a fault-tolerant store.
    store_reads: int = 0
    store_retries: int = 0
    store_timeouts: int = 0
    store_hedges: int = 0
    store_hedge_wins: int = 0
    store_failovers: int = 0
    store_degraded_reads: int = 0
    #: Online mutations applied during the run (dynamic sessions only).
    mutations_applied: int = 0

    # ------------------------------------------------------------- derived
    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests refused admission."""
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    @property
    def completed_qps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    @property
    def mean_batch_occupancy(self) -> float:
        """Mean admitted requests coalesced per dispatched micro-batch."""
        if not self.batch_request_sizes:
            return 0.0
        return float(np.mean(self.batch_request_sizes))

    @property
    def mean_batch_roots(self) -> float:
        """Mean root count per dispatched micro-batch."""
        if not self.batch_root_sizes:
            return 0.0
        return float(np.mean(self.batch_root_sizes))

    @property
    def slo_miss_rate(self) -> float:
        completed = sum(t.completed for t in self.tenants.values())
        if completed == 0:
            return 0.0
        return sum(t.slo_misses for t in self.tenants.values()) / completed

    def percentile(self, q: float) -> float:
        """Latency percentile over all completed (admitted) requests."""
        return _percentile(self.latencies_s, q)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    # ----------------------------------------------------------- rendering
    def format(self) -> str:
        """Multi-line human-readable summary (the CLI/report block)."""
        lines = [
            f"window {self.duration_s * MS_PER_S:.0f} ms"
            f" (drained at {self.drain_s * MS_PER_S:.0f} ms)"
            f"  offered {self.offered}  admitted {self.admitted}"
            f"  completed {self.completed}  retried {self.retried}",
            f"throughput: {self.completed_qps:,.0f} completed req/s"
            f"  max queue depth: {self.max_queue_depth}",
        ]
        if self.latencies_s:
            lines.append(
                f"p50 latency: {MS_PER_S * self.p50:.3f} ms"
                f"  p99 latency: {MS_PER_S * self.p99:.3f} ms"
                f"  SLO miss rate: {100 * self.slo_miss_rate:.1f}%"
            )
        else:
            lines.append("p50 latency: n/a  p99 latency: n/a")
        lines.append(
            f"shed rate: {100 * self.shed_rate:.1f}%"
            + "".join(
                f"  [{reason}: {count}]"
                for reason, count in sorted(self.shed_by_reason.items())
            )
        )
        lines.append(
            f"batch occupancy: {self.mean_batch_occupancy:.2f} req/batch"
            f"  ({self.mean_batch_roots:.1f} roots/batch,"
            f" {len(self.batch_request_sizes)} batches)"
        )
        if self.store_reads:
            lines.append(
                f"store path: {self.store_reads} reads"
                f"  retries {self.store_retries}"
                f"  timeouts {self.store_timeouts}"
                f"  hedges {self.store_hedges}"
                f" (won {self.store_hedge_wins})"
                f"  failovers {self.store_failovers}"
                f"  degraded {self.store_degraded_reads}"
            )
        for name, backend in sorted(self.backends.items()):
            service = (
                f" mean service {MS_PER_S * backend.mean_service_s:.3f} ms,"
                if backend.batches
                else " idle,"
            )
            lines.append(
                f"backend {name}: {backend.batches} batches,"
                f" {backend.requests} requests,{service}"
                f" {100 * backend.utilization(self.drain_s):.1f}% busy"
            )
        for name, tenant in sorted(self.tenants.items()):
            tail = (
                f"p99 {MS_PER_S * tenant.p99:.3f} ms"
                if tenant.latencies_s
                else "p99 n/a"
            )
            lines.append(
                f"tenant {name}: offered {tenant.offered}"
                f"  shed {100 * tenant.shed_rate:.1f}%  {tail}"
                f"  (SLO {MS_PER_S * tenant.slo_s:.1f} ms,"
                f" miss {100 * tenant.slo_miss_rate:.1f}%)"
            )
        return "\n".join(lines)


class MetricsRegistry:
    """Mutable accumulator the gateway writes during a run."""

    def __init__(self) -> None:
        self.offered = 0
        self.admitted = 0
        self.completed = 0
        self.retried = 0
        self.shed_by_reason: Dict[str, int] = defaultdict(int)
        self.latencies_s: List[float] = []
        self.batch_request_sizes: List[int] = []
        self.batch_root_sizes: List[int] = []
        self.max_queue_depth = 0
        self._tenants: Dict[str, TenantReport] = {}
        self._backends: Dict[str, BackendReport] = {}
        self._store_faults: Dict[str, int] = {}

    # ------------------------------------------------------------ wiring
    def register_tenant(self, name: str, slo_s: float) -> None:
        if name not in self._tenants:
            self._tenants[name] = TenantReport(name=name, slo_s=slo_s)

    def register_backend(self, name: str, concurrency: int) -> None:
        if name not in self._backends:
            self._backends[name] = BackendReport(
                name=name, concurrency=concurrency
            )

    # ------------------------------------------------------------ events
    def on_offered(self, tenant: str) -> None:
        self.offered += 1
        self._tenants[tenant].offered += 1

    def on_admitted(self, tenant: str, queue_depth: int) -> None:
        self.admitted += 1
        self._tenants[tenant].admitted += 1
        self.max_queue_depth = max(self.max_queue_depth, queue_depth)

    def on_shed(self, tenant: str, reason: str) -> None:
        self.shed_by_reason[reason] += 1
        self._tenants[tenant].shed += 1

    def on_batch(self, num_requests: int, num_roots: int) -> None:
        self.batch_request_sizes.append(num_requests)
        self.batch_root_sizes.append(num_roots)

    def on_dispatch(
        self, backend: str, num_requests: int, service_s: float
    ) -> None:
        stats = self._backends[backend]
        stats.batches += 1
        stats.requests += num_requests
        stats.busy_s += service_s

    def on_retried(self, num_requests: int) -> None:
        self.retried += num_requests

    def on_store_faults(self, stats) -> None:
        """Record the run's store-level fault counters.

        ``stats`` is a :class:`repro.memstore.faults.FaultStats` delta
        (counters accumulated during this run only).
        """
        self._store_faults = {
            "store_reads": stats.reads,
            "store_retries": stats.retries,
            "store_timeouts": stats.timeouts,
            "store_hedges": stats.hedges,
            "store_hedge_wins": stats.hedge_wins,
            "store_failovers": stats.failovers,
            "store_degraded_reads": stats.failed_reads,
        }

    def on_completed(self, tenant: str, latency_s: float) -> None:
        self.completed += 1
        self.latencies_s.append(latency_s)
        record = self._tenants[tenant]
        record.completed += 1
        record.latencies_s.append(latency_s)
        if latency_s > record.slo_s:
            record.slo_misses += 1

    # ----------------------------------------------------------- snapshot
    def snapshot(self, duration_s: float, drain_s: float) -> ServingReport:
        shed = sum(self.shed_by_reason.values())
        return ServingReport(
            duration_s=duration_s,
            drain_s=drain_s,
            offered=self.offered,
            admitted=self.admitted,
            completed=self.completed,
            shed=shed,
            retried=self.retried,
            shed_by_reason=dict(self.shed_by_reason),
            latencies_s=list(self.latencies_s),
            tenants=dict(self._tenants),
            backends=dict(self._backends),
            batch_request_sizes=list(self.batch_request_sizes),
            batch_root_sizes=list(self.batch_root_sizes),
            max_queue_depth=self.max_queue_depth,
            **self._store_faults,
        )
