"""The admission-controlled serving gateway.

The online path the paper's Challenge-1 is about: per-tenant request
streams hit an admission controller (token-bucket fair share + a
bounded pending queue), admitted requests are coalesced *across
tenants* into dynamic micro-batches (flush on a root-count budget, a
request-count cap, or a max-wait timer — whichever first), and an
earliest-deadline-first scheduler dispatches batches onto the first
healthy backend with a free slot.

Two properties the tests pin down:

* **Backpressure, not collapse** — when offered load exceeds the fair
  share or the pending queue bound, requests are refused immediately
  with a retry-after hint; admitted requests are *never* dropped, so
  admitted-latency tails stay bounded under overload.
* **Graceful degradation** — a backend failure strands its in-flight
  micro-batches; the gateway invalidates their completions, re-queues
  the batches (counted as retried, not shed), and later dispatches
  fall through to the surviving backends.

Everything runs on the deterministic event kernel
(:mod:`repro.axe.events`): arrivals, flush timers, completions, and
fault injections are events, so a run is a pure function of its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.axe.events import Simulator
from repro.serving.backends import ServingBackend
from repro.serving.metrics import MetricsRegistry, ServingReport
from repro.serving.scheduler import SloScheduler
from repro.serving.workload import Arrival, TenantSpec, generate_arrivals


@dataclass(frozen=True)
class GatewayConfig:
    """Admission, batching, and fair-share parameters."""

    #: Flush a micro-batch once it holds this many roots...
    batch_root_budget: int = 32
    #: ...or this many coalesced requests...
    max_batch_requests: int = 16
    #: ...or once its oldest member has waited this long.
    max_wait_s: float = 2e-3
    #: Bound on admitted-but-undispatched requests (backpressure).
    queue_capacity: int = 256
    #: Token-bucket rate = headroom * tenant fair-share rate.
    token_rate_headroom: float = 1.4
    #: Token-bucket burst capacity (absorbs Poisson clumping).
    token_burst: float = 8.0

    def __post_init__(self) -> None:
        if self.batch_root_budget <= 0 or self.max_batch_requests <= 0:
            raise ConfigurationError("batch budget and request cap must be positive")
        if self.max_wait_s <= 0:
            raise ConfigurationError(
                f"max_wait_s must be positive, got {self.max_wait_s}"
            )
        if self.queue_capacity <= 0:
            raise ConfigurationError(
                f"queue_capacity must be positive, got {self.queue_capacity}"
            )
        if self.token_rate_headroom <= 0:
            raise ConfigurationError(
                f"token_rate_headroom must be positive, got {self.token_rate_headroom}"
            )
        if self.token_burst < 1:
            raise ConfigurationError(
                f"token_burst must be at least 1, got {self.token_burst}"
            )


@dataclass(frozen=True)
class ShedResponse:
    """The refusal returned to a shed request (backpressure signal)."""

    tenant: str
    time_s: float
    reason: str
    retry_after_s: float


@dataclass(frozen=True)
class GatewayLoad:
    """Instantaneous load snapshot a cluster router balances on.

    ``queue_depth`` counts admitted-but-undispatched requests;
    ``in_flight_roots`` counts roots currently occupying backend slots
    (the work that must finish before a drain can complete).
    """

    queue_depth: int
    in_flight_batches: int
    in_flight_roots: int

    @property
    def score(self) -> int:
        """Scalar ordering key for least-loaded routing."""
        return self.queue_depth + self.in_flight_roots


class MicroBatch:
    """Requests coalesced across tenants sharing one fanout shape."""

    def __init__(self, requests: List[Arrival], fanouts: Tuple[int, ...]) -> None:
        self.requests = requests
        self.fanouts = fanouts
        self.roots = np.concatenate([r.roots for r in requests])
        #: EDF key: the tightest member deadline.
        self.deadline_s = min(r.deadline_s for r in requests)
        #: Whether this batch already left the pending-queue accounting
        #: (a failure re-dispatch must not decrement it twice).
        self.dispatched = False

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def num_roots(self) -> int:
        return int(self.roots.size)


class _InFlight:
    """One dispatched batch; ``valid`` is cleared by fault injection."""

    def __init__(self, batch: MicroBatch, backend: str, service_s: float) -> None:
        self.batch = batch
        self.backend = backend
        self.service_s = service_s
        self.valid = True


class ServingGateway:
    """Admission control, micro-batching, and dispatch over backends.

    ``backends`` is a priority list: dispatch prefers the earliest
    healthy entry with a free slot (put the hardware path first).
    """

    def __init__(
        self,
        backends: Sequence[ServingBackend],
        tenants: Sequence[TenantSpec],
        config: Optional[GatewayConfig] = None,
    ) -> None:
        if not backends:
            raise ConfigurationError("at least one backend is required")
        if not tenants:
            raise ConfigurationError("at least one tenant is required")
        names = [b.name for b in backends]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"backend names must be unique, got {names}")
        self.backends = list(backends)
        self.tenants = list(tenants)
        self.config = config or GatewayConfig()
        self.shed_responses: List[ShedResponse] = []
        #: Optional observer fired with ``(batch, payload)`` on completion.
        self.on_batch_complete: Optional[Callable[[MicroBatch, object], None]] = None
        #: Optional observer fired with each :class:`ShedResponse`.
        self.on_shed: Optional[Callable[[Arrival, ShedResponse], None]] = None
        self._fault_schedule: Dict[str, float] = {}
        self._attached = False
        self._draining = False
        self._halted = False

    # -------------------------------------------------------------- faults
    def inject_backend_failure(self, backend_name: str, at_s: float) -> None:
        """Schedule ``backend_name`` to die at ``at_s`` into the run."""
        if backend_name not in {b.name for b in self.backends}:
            raise ConfigurationError(f"unknown backend {backend_name!r}")
        if at_s < 0:
            raise ConfigurationError(f"at_s must be non-negative, got {at_s}")
        self._fault_schedule[backend_name] = at_s

    # -------------------------------------------------------------- attach
    def attach(self, sim: Simulator, admission: bool = True) -> None:
        """Bind this gateway to an external event kernel.

        Cluster mode: a :class:`~repro.cluster.sim.ClusterSim` runs many
        gateways on one shared simulator and delivers arrivals itself
        via :meth:`submit`. ``admission=False`` disables the per-tenant
        token buckets (the cluster router admission-controls centrally
        before routing); the queue-capacity backpressure stays local.
        """
        self._sim = sim
        self._admission = admission
        self.metrics = MetricsRegistry()
        self.scheduler = SloScheduler()
        self.shed_responses = []
        self._groups: Dict[Tuple[int, ...], List[Arrival]] = {}
        self._group_roots: Dict[Tuple[int, ...], int] = {}
        self._group_gen: Dict[Tuple[int, ...], int] = {}
        self._pending = 0
        self._free_slots: Dict[str, int] = {}
        self._in_flight: Dict[str, List[_InFlight]] = {}
        self._attached = True
        self._draining = False
        self._halted = False
        #: EWMA of observed service time per request — the queue_full
        #: retry-after hint scales with it.
        self._drain_per_request_s = 1e-3

        for spec in self.tenants:
            self.scheduler.register_tenant(
                spec.name,
                rate=self.config.token_rate_headroom * spec.fair_share_rps,
                burst=self.config.token_burst,
            )
            self.metrics.register_tenant(spec.name, spec.slo_s)
        for backend in self.backends:
            self._free_slots[backend.name] = backend.concurrency
            self._in_flight[backend.name] = []
            self.metrics.register_backend(backend.name, backend.concurrency)

    # ----------------------------------------------------------------- run
    def run(
        self,
        arrivals: Sequence[Arrival],
        duration_s: float,
        events: Optional[Sequence[Tuple[float, Callable[[], None]]]] = None,
    ) -> ServingReport:
        """Replay ``arrivals`` through the gateway; runs to full drain.

        ``events`` is an optional auxiliary timeline of ``(time_s,
        callback)`` pairs scheduled on the same virtual clock — the
        ingest path uses it to interleave graph mutations with the read
        traffic (each callback applies a mutation batch to the store).
        Callbacks fire between event-kernel steps, never inside a
        backend's ``execute``, so a micro-batch's pinned sample window
        is never torn by construction.
        """
        if duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be positive, got {duration_s}"
            )
        sim = Simulator()
        self.attach(sim)
        for name, at_s in self._fault_schedule.items():
            sim.at(at_s, lambda n=name: self._on_fault(n))
        for arrival in arrivals:
            sim.at(arrival.time_s, lambda a=arrival: self._submit(a))
        if events:
            for time_s, callback in events:
                if time_s < 0:
                    raise ConfigurationError(
                        f"event time_s must be non-negative, got {time_s}"
                    )
                sim.at(time_s, callback)
        store_paths = self._store_fault_paths()
        baselines = [path.stats.copy() for path in store_paths]
        sim.run()
        self._collect_store_faults(store_paths, baselines)
        return self.metrics.snapshot(duration_s=duration_s, drain_s=sim.now)

    # ------------------------------------------------------- load and drain
    def load(self) -> GatewayLoad:
        """Instantaneous load: queue depth plus in-flight work."""
        batches = sum(len(v) for v in self._in_flight.values())
        roots = sum(
            entry.batch.num_roots
            for entries in self._in_flight.values()
            for entry in entries
        )
        return GatewayLoad(
            queue_depth=self._pending,
            in_flight_batches=batches,
            in_flight_roots=roots,
        )

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def halted(self) -> bool:
        return self._halted

    def begin_drain(self) -> None:
        """Stop accepting work; in-flight and queued batches finish.

        New submissions are shed with reason ``"draining"`` and a
        retry-after hint sized to the remaining backlog. The caller
        (cluster scale-down) should already have unrouted this gateway;
        shedding covers the race where traffic is still in flight.
        """
        self._draining = True

    @property
    def drained(self) -> bool:
        """True once no admitted request remains queued or in flight."""
        return (
            self._pending == 0
            and len(self.scheduler) == 0
            and all(not entries for entries in self._in_flight.values())
        )

    def assert_drained(self) -> None:
        """Raise unless the drain actually ran the queue empty."""
        if not self._draining:
            raise SimulationError("assert_drained() before begin_drain()")
        if not self.drained:
            load = self.load()
            raise SimulationError(
                f"drain incomplete: {load.queue_depth} queued, "
                f"{load.in_flight_batches} batches in flight"
            )

    # ----------------------------------------------------- failure recovery
    def halt(self) -> None:
        """Hard-stop (replica kill): nothing dispatches or completes.

        In-flight batches are invalidated — their completions will fire
        on the shared simulator but no longer count. The admitted work
        stays collectable via :meth:`evacuate` so a cluster can re-route
        it instead of losing it.
        """
        self._halted = True
        for entries in self._in_flight.values():
            for entry in entries:
                entry.valid = False

    def evacuate(self) -> List[Arrival]:
        """Strip every admitted-but-incomplete request for re-routing.

        Collects, in admission order: coalescing groups that never
        flushed, ready batches the scheduler holds, and in-flight
        batches stranded by :meth:`halt`. Leaves the gateway empty
        (``drained``); the caller owns re-submission and its retried
        accounting.
        """
        orphans: List[Arrival] = []
        for key, group in self._groups.items():
            orphans.extend(group)
            group.clear()
            self._group_roots[key] = 0
            self._group_gen[key] = self._group_gen.get(key, 0) + 1
        while len(self.scheduler):
            batch = self.scheduler.pop()
            orphans.extend(batch.requests)
        for entries in self._in_flight.values():
            for entry in entries:
                entry.valid = False
                orphans.extend(entry.batch.requests)
            entries.clear()
        self._pending = 0
        orphans.sort(key=lambda a: (a.time_s, a.seq))
        return orphans

    def _store_fault_paths(self) -> List[object]:
        """Reliable read paths under this gateway's functional backends."""
        paths: List[object] = []
        for backend in self.backends:
            sampler = getattr(backend, "sampler", None)
            store = getattr(sampler, "store", None)
            path = getattr(store, "reliability", None)
            if path is not None and all(path is not p for p in paths):
                paths.append(path)
        return paths

    def _collect_store_faults(self, paths, baselines) -> None:
        """Surface store-level retry/hedge counters accrued this run."""
        if not paths:
            return
        total = None
        for path, baseline in zip(paths, baselines):
            delta = path.stats.minus(baseline)
            if total is None:
                total = delta
            else:
                for field in vars(delta):
                    setattr(
                        total, field,
                        getattr(total, field) + getattr(delta, field),
                    )
        self.metrics.on_store_faults(total)

    # ------------------------------------------------------------ admission
    def _shed(self, arrival: Arrival, reason: str, retry_after_s: float) -> None:
        self.metrics.on_shed(arrival.tenant, reason)
        response = ShedResponse(
            tenant=arrival.tenant,
            time_s=self._sim.now,
            reason=reason,
            retry_after_s=retry_after_s,
        )
        self.shed_responses.append(response)
        if self.on_shed is not None:
            self.on_shed(arrival, response)

    def _backlog_estimate_s(self) -> float:
        """Retry-after hint sized to the current backlog."""
        return max(
            self.config.max_wait_s,
            self._pending * self._drain_per_request_s
            / max(1, sum(b.concurrency for b in self.backends)),
        )

    def submit(self, arrival: Arrival) -> None:
        """Offer one request at the current simulator time.

        The external-driver counterpart of the arrival events
        :meth:`run` schedules: admission control (unless the gateway is
        attached with ``admission=False``), queue backpressure, then
        coalescing.
        """
        self._submit(arrival)

    def submit_admitted(self, arrival: Arrival) -> None:
        """Accept an already-admitted request (failure re-route path).

        Skips admission and the queue-capacity check: the request
        passed both on the replica that died, and dropping it now would
        turn an accepted request into a loss. Draining gateways still
        refuse — re-routing must pick an accepting replica.
        """
        if self._halted:
            raise SimulationError(
                f"submit_admitted on halted gateway for {arrival.tenant!r}"
            )
        if self._draining:
            raise SimulationError(
                f"submit_admitted on draining gateway for {arrival.tenant!r}"
            )
        self._pending += 1
        self.metrics.on_admitted(arrival.tenant, self._pending)
        self._coalesce(arrival)

    def _submit(self, arrival: Arrival) -> None:
        if self._halted:
            raise SimulationError(
                f"submit on halted gateway for {arrival.tenant!r}"
            )
        now = self._sim.now
        self.metrics.on_offered(arrival.tenant)
        if self._draining:
            self._shed(arrival, "draining", self._backlog_estimate_s())
            return
        if self._admission:
            retry_after = self.scheduler.admit(arrival.tenant, now)
            if retry_after is not None:
                self._shed(arrival, "rate_limited", retry_after)
                return
        if self._pending >= self.config.queue_capacity:
            self._shed(arrival, "queue_full", self._backlog_estimate_s())
            return
        self._pending += 1
        self.metrics.on_admitted(arrival.tenant, self._pending)
        self._coalesce(arrival)

    def _coalesce(self, arrival: Arrival) -> None:
        key = arrival.fanouts
        group = self._groups.setdefault(key, [])
        group.append(arrival)
        self._group_roots[key] = (
            self._group_roots.get(key, 0) + arrival.num_roots
        )
        if (
            self._group_roots[key] >= self.config.batch_root_budget
            or len(group) >= self.config.max_batch_requests
        ):
            self._flush(key)
        elif len(group) == 1:
            generation = self._group_gen.get(key, 0)
            self._sim.after(
                self.config.max_wait_s,
                lambda k=key, g=generation: self._flush_if_stale(k, g),
            )

    # ------------------------------------------------------------- batching
    def _flush_if_stale(self, key: Tuple[int, ...], generation: int) -> None:
        if self._group_gen.get(key, 0) != generation:
            return
        self._flush(key)

    def _flush(self, key: Tuple[int, ...]) -> None:
        if self._halted:
            return
        group = self._groups.get(key)
        if not group:
            return
        self._group_gen[key] = self._group_gen.get(key, 0) + 1
        batch = MicroBatch(list(group), key)
        group.clear()
        self._group_roots[key] = 0
        self.metrics.on_batch(batch.num_requests, batch.num_roots)
        self.scheduler.push(batch.deadline_s, batch)
        self._dispatch()

    # ------------------------------------------------------------- dispatch
    def _pick_backend(self) -> Optional[ServingBackend]:
        for backend in self.backends:
            if backend.healthy and self._free_slots[backend.name] > 0:
                return backend
        return None

    def _dispatch(self) -> None:
        if self._halted:
            return
        while len(self.scheduler):
            backend = self._pick_backend()
            if backend is None:
                return
            batch = self.scheduler.pop()
            self._free_slots[backend.name] -= 1
            if not batch.dispatched:
                batch.dispatched = True
                self._pending -= batch.num_requests
            result = backend.execute(batch.roots, batch.fanouts)
            self.metrics.on_dispatch(
                backend.name, batch.num_requests, result.service_s
            )
            entry = _InFlight(batch, backend.name, result.service_s)
            self._in_flight[backend.name].append(entry)
            self._sim.after(
                result.service_s,
                lambda e=entry, p=result.payload: self._complete(e, p),
            )

    def _complete(self, entry: _InFlight, payload: object) -> None:
        if not entry.valid:
            return
        self._in_flight[entry.backend].remove(entry)
        self._free_slots[entry.backend] += 1
        now = self._sim.now
        for arrival in entry.batch.requests:
            self.metrics.on_completed(arrival.tenant, now - arrival.time_s)
        self._drain_per_request_s = 0.8 * self._drain_per_request_s + 0.2 * (
            entry.service_s / entry.batch.num_requests
        )
        if self.on_batch_complete is not None:
            self.on_batch_complete(entry.batch, payload)
        self._dispatch()

    # --------------------------------------------------------------- faults
    def _on_fault(self, backend_name: str) -> None:
        backend = next(b for b in self.backends if b.name == backend_name)
        if not backend.healthy:
            return
        backend.fail()
        stranded = self._in_flight[backend_name]
        self._in_flight[backend_name] = []
        for entry in stranded:
            entry.valid = False
            self.metrics.on_retried(entry.batch.num_requests)
            self.scheduler.push(entry.batch.deadline_s, entry.batch)
        self._dispatch()


def serve_workload(
    backends: Sequence[ServingBackend],
    tenants: Sequence[TenantSpec],
    duration_s: float,
    num_nodes: int,
    seed: int = 0,
    config: Optional[GatewayConfig] = None,
    fail_backend_at: Optional[Dict[str, float]] = None,
    events: Optional[Sequence[Tuple[float, Callable[[], None]]]] = None,
) -> ServingReport:
    """Generate the tenants' open-loop workload and run it end-to-end.

    ``events`` threads an auxiliary ``(time_s, callback)`` timeline
    (e.g. graph-mutation batches) into the run; see
    :meth:`ServingGateway.run`.
    """
    gateway = ServingGateway(backends, tenants, config=config)
    if fail_backend_at:
        for name, at_s in fail_backend_at.items():
            gateway.inject_backend_failure(name, at_s)
    arrivals = generate_arrivals(
        tenants, duration_s=duration_s, num_nodes=num_nodes, seed=seed
    )
    return gateway.run(arrivals, duration_s=duration_s, events=events)
