"""The admission-controlled serving gateway.

The online path the paper's Challenge-1 is about: per-tenant request
streams hit an admission controller (token-bucket fair share + a
bounded pending queue), admitted requests are coalesced *across
tenants* into dynamic micro-batches (flush on a root-count budget, a
request-count cap, or a max-wait timer — whichever first), and an
earliest-deadline-first scheduler dispatches batches onto the first
healthy backend with a free slot.

Two properties the tests pin down:

* **Backpressure, not collapse** — when offered load exceeds the fair
  share or the pending queue bound, requests are refused immediately
  with a retry-after hint; admitted requests are *never* dropped, so
  admitted-latency tails stay bounded under overload.
* **Graceful degradation** — a backend failure strands its in-flight
  micro-batches; the gateway invalidates their completions, re-queues
  the batches (counted as retried, not shed), and later dispatches
  fall through to the surviving backends.

Everything runs on the deterministic event kernel
(:mod:`repro.axe.events`): arrivals, flush timers, completions, and
fault injections are events, so a run is a pure function of its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.axe.events import Simulator
from repro.serving.backends import ServingBackend
from repro.serving.metrics import MetricsRegistry, ServingReport
from repro.serving.scheduler import SloScheduler
from repro.serving.workload import Arrival, TenantSpec, generate_arrivals


@dataclass(frozen=True)
class GatewayConfig:
    """Admission, batching, and fair-share parameters."""

    #: Flush a micro-batch once it holds this many roots...
    batch_root_budget: int = 32
    #: ...or this many coalesced requests...
    max_batch_requests: int = 16
    #: ...or once its oldest member has waited this long.
    max_wait_s: float = 2e-3
    #: Bound on admitted-but-undispatched requests (backpressure).
    queue_capacity: int = 256
    #: Token-bucket rate = headroom * tenant fair-share rate.
    token_rate_headroom: float = 1.4
    #: Token-bucket burst capacity (absorbs Poisson clumping).
    token_burst: float = 8.0

    def __post_init__(self) -> None:
        if self.batch_root_budget <= 0 or self.max_batch_requests <= 0:
            raise ConfigurationError("batch budget and request cap must be positive")
        if self.max_wait_s <= 0:
            raise ConfigurationError(
                f"max_wait_s must be positive, got {self.max_wait_s}"
            )
        if self.queue_capacity <= 0:
            raise ConfigurationError(
                f"queue_capacity must be positive, got {self.queue_capacity}"
            )
        if self.token_rate_headroom <= 0:
            raise ConfigurationError(
                f"token_rate_headroom must be positive, got {self.token_rate_headroom}"
            )
        if self.token_burst < 1:
            raise ConfigurationError(
                f"token_burst must be at least 1, got {self.token_burst}"
            )


@dataclass(frozen=True)
class ShedResponse:
    """The refusal returned to a shed request (backpressure signal)."""

    tenant: str
    time_s: float
    reason: str
    retry_after_s: float


class MicroBatch:
    """Requests coalesced across tenants sharing one fanout shape."""

    def __init__(self, requests: List[Arrival], fanouts: Tuple[int, ...]) -> None:
        self.requests = requests
        self.fanouts = fanouts
        self.roots = np.concatenate([r.roots for r in requests])
        #: EDF key: the tightest member deadline.
        self.deadline_s = min(r.deadline_s for r in requests)
        #: Whether this batch already left the pending-queue accounting
        #: (a failure re-dispatch must not decrement it twice).
        self.dispatched = False

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def num_roots(self) -> int:
        return int(self.roots.size)


class _InFlight:
    """One dispatched batch; ``valid`` is cleared by fault injection."""

    def __init__(self, batch: MicroBatch, backend: str, service_s: float) -> None:
        self.batch = batch
        self.backend = backend
        self.service_s = service_s
        self.valid = True


class ServingGateway:
    """Admission control, micro-batching, and dispatch over backends.

    ``backends`` is a priority list: dispatch prefers the earliest
    healthy entry with a free slot (put the hardware path first).
    """

    def __init__(
        self,
        backends: Sequence[ServingBackend],
        tenants: Sequence[TenantSpec],
        config: Optional[GatewayConfig] = None,
    ) -> None:
        if not backends:
            raise ConfigurationError("at least one backend is required")
        if not tenants:
            raise ConfigurationError("at least one tenant is required")
        names = [b.name for b in backends]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"backend names must be unique, got {names}")
        self.backends = list(backends)
        self.tenants = list(tenants)
        self.config = config or GatewayConfig()
        self.shed_responses: List[ShedResponse] = []
        #: Optional observer fired with ``(batch, payload)`` on completion.
        self.on_batch_complete: Optional[Callable[[MicroBatch, object], None]] = None
        self._fault_schedule: Dict[str, float] = {}

    # -------------------------------------------------------------- faults
    def inject_backend_failure(self, backend_name: str, at_s: float) -> None:
        """Schedule ``backend_name`` to die at ``at_s`` into the run."""
        if backend_name not in {b.name for b in self.backends}:
            raise ConfigurationError(f"unknown backend {backend_name!r}")
        if at_s < 0:
            raise ConfigurationError(f"at_s must be non-negative, got {at_s}")
        self._fault_schedule[backend_name] = at_s

    # ----------------------------------------------------------------- run
    def run(self, arrivals: Sequence[Arrival], duration_s: float) -> ServingReport:
        """Replay ``arrivals`` through the gateway; runs to full drain."""
        if duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be positive, got {duration_s}"
            )
        sim = self._sim = Simulator()
        self.metrics = MetricsRegistry()
        self.scheduler = SloScheduler()
        self.shed_responses = []
        self._groups: Dict[Tuple[int, ...], List[Arrival]] = {}
        self._group_roots: Dict[Tuple[int, ...], int] = {}
        self._group_gen: Dict[Tuple[int, ...], int] = {}
        self._pending = 0
        self._free_slots: Dict[str, int] = {}
        self._in_flight: Dict[str, List[_InFlight]] = {}
        #: EWMA of observed service time per request — the queue_full
        #: retry-after hint scales with it.
        self._drain_per_request_s = 1e-3

        for spec in self.tenants:
            self.scheduler.register_tenant(
                spec.name,
                rate=self.config.token_rate_headroom * spec.fair_share_rps,
                burst=self.config.token_burst,
            )
            self.metrics.register_tenant(spec.name, spec.slo_s)
        for backend in self.backends:
            self._free_slots[backend.name] = backend.concurrency
            self._in_flight[backend.name] = []
            self.metrics.register_backend(backend.name, backend.concurrency)

        for name, at_s in self._fault_schedule.items():
            sim.at(at_s, lambda n=name: self._on_fault(n))
        for arrival in arrivals:
            sim.at(arrival.time_s, lambda a=arrival: self._submit(a))
        store_paths = self._store_fault_paths()
        baselines = [path.stats.copy() for path in store_paths]
        sim.run()
        self._collect_store_faults(store_paths, baselines)
        return self.metrics.snapshot(duration_s=duration_s, drain_s=sim.now)

    def _store_fault_paths(self) -> List[object]:
        """Reliable read paths under this gateway's functional backends."""
        paths: List[object] = []
        for backend in self.backends:
            sampler = getattr(backend, "sampler", None)
            store = getattr(sampler, "store", None)
            path = getattr(store, "reliability", None)
            if path is not None and all(path is not p for p in paths):
                paths.append(path)
        return paths

    def _collect_store_faults(self, paths, baselines) -> None:
        """Surface store-level retry/hedge counters accrued this run."""
        if not paths:
            return
        total = None
        for path, baseline in zip(paths, baselines):
            delta = path.stats.minus(baseline)
            if total is None:
                total = delta
            else:
                for field in vars(delta):
                    setattr(
                        total, field,
                        getattr(total, field) + getattr(delta, field),
                    )
        self.metrics.on_store_faults(total)

    # ------------------------------------------------------------ admission
    def _shed(self, arrival: Arrival, reason: str, retry_after_s: float) -> None:
        self.metrics.on_shed(arrival.tenant, reason)
        self.shed_responses.append(
            ShedResponse(
                tenant=arrival.tenant,
                time_s=self._sim.now,
                reason=reason,
                retry_after_s=retry_after_s,
            )
        )

    def _submit(self, arrival: Arrival) -> None:
        now = self._sim.now
        self.metrics.on_offered(arrival.tenant)
        retry_after = self.scheduler.admit(arrival.tenant, now)
        if retry_after is not None:
            self._shed(arrival, "rate_limited", retry_after)
            return
        if self._pending >= self.config.queue_capacity:
            estimate = max(
                self.config.max_wait_s,
                self._pending * self._drain_per_request_s
                / max(1, sum(b.concurrency for b in self.backends)),
            )
            self._shed(arrival, "queue_full", estimate)
            return
        self._pending += 1
        self.metrics.on_admitted(arrival.tenant, self._pending)
        key = arrival.fanouts
        group = self._groups.setdefault(key, [])
        group.append(arrival)
        self._group_roots[key] = (
            self._group_roots.get(key, 0) + arrival.num_roots
        )
        if (
            self._group_roots[key] >= self.config.batch_root_budget
            or len(group) >= self.config.max_batch_requests
        ):
            self._flush(key)
        elif len(group) == 1:
            generation = self._group_gen.get(key, 0)
            self._sim.after(
                self.config.max_wait_s,
                lambda k=key, g=generation: self._flush_if_stale(k, g),
            )

    # ------------------------------------------------------------- batching
    def _flush_if_stale(self, key: Tuple[int, ...], generation: int) -> None:
        if self._group_gen.get(key, 0) != generation:
            return
        self._flush(key)

    def _flush(self, key: Tuple[int, ...]) -> None:
        group = self._groups.get(key)
        if not group:
            return
        self._group_gen[key] = self._group_gen.get(key, 0) + 1
        batch = MicroBatch(list(group), key)
        group.clear()
        self._group_roots[key] = 0
        self.metrics.on_batch(batch.num_requests, batch.num_roots)
        self.scheduler.push(batch.deadline_s, batch)
        self._dispatch()

    # ------------------------------------------------------------- dispatch
    def _pick_backend(self) -> Optional[ServingBackend]:
        for backend in self.backends:
            if backend.healthy and self._free_slots[backend.name] > 0:
                return backend
        return None

    def _dispatch(self) -> None:
        while len(self.scheduler):
            backend = self._pick_backend()
            if backend is None:
                return
            batch = self.scheduler.pop()
            self._free_slots[backend.name] -= 1
            if not batch.dispatched:
                batch.dispatched = True
                self._pending -= batch.num_requests
            result = backend.execute(batch.roots, batch.fanouts)
            self.metrics.on_dispatch(
                backend.name, batch.num_requests, result.service_s
            )
            entry = _InFlight(batch, backend.name, result.service_s)
            self._in_flight[backend.name].append(entry)
            self._sim.after(
                result.service_s,
                lambda e=entry, p=result.payload: self._complete(e, p),
            )

    def _complete(self, entry: _InFlight, payload: object) -> None:
        if not entry.valid:
            return
        self._in_flight[entry.backend].remove(entry)
        self._free_slots[entry.backend] += 1
        now = self._sim.now
        for arrival in entry.batch.requests:
            self.metrics.on_completed(arrival.tenant, now - arrival.time_s)
        self._drain_per_request_s = 0.8 * self._drain_per_request_s + 0.2 * (
            entry.service_s / entry.batch.num_requests
        )
        if self.on_batch_complete is not None:
            self.on_batch_complete(entry.batch, payload)
        self._dispatch()

    # --------------------------------------------------------------- faults
    def _on_fault(self, backend_name: str) -> None:
        backend = next(b for b in self.backends if b.name == backend_name)
        if not backend.healthy:
            return
        backend.fail()
        stranded = self._in_flight[backend_name]
        self._in_flight[backend_name] = []
        for entry in stranded:
            entry.valid = False
            self.metrics.on_retried(entry.batch.num_requests)
            self.scheduler.push(entry.batch.deadline_s, entry.batch)
        self._dispatch()


def serve_workload(
    backends: Sequence[ServingBackend],
    tenants: Sequence[TenantSpec],
    duration_s: float,
    num_nodes: int,
    seed: int = 0,
    config: Optional[GatewayConfig] = None,
    fail_backend_at: Optional[Dict[str, float]] = None,
) -> ServingReport:
    """Generate the tenants' open-loop workload and run it end-to-end."""
    gateway = ServingGateway(backends, tenants, config=config)
    if fail_backend_at:
        for name, at_s in fail_backend_at.items():
            gateway.inject_backend_failure(name, at_s)
    arrivals = generate_arrivals(
        tenants, duration_s=duration_s, num_nodes=num_nodes, seed=seed
    )
    return gateway.run(arrivals, duration_s=duration_s)
