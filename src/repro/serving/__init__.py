"""Online, SLO-aware serving layer over the sampling backends.

The closed-loop simulation in :mod:`repro.framework.service` shows
*that* sampling latency blows deadlines (Challenge-1); this package is
the serving architecture that manages it: an admission-controlled
gateway (:mod:`~repro.serving.gateway`) coalescing per-tenant open-loop
request streams (:mod:`~repro.serving.workload`) into dynamic
micro-batches, scheduled earliest-deadline-first with token-bucket
fair share (:mod:`~repro.serving.scheduler`) onto pluggable software /
AxE-hardware backends (:mod:`~repro.serving.backends`), with
load-shedding backpressure, graceful degradation on backend failure,
and a full metrics registry (:mod:`~repro.serving.metrics`).
"""

from repro.serving.backends import (
    BackendResult,
    HardwareBackend,
    ServingBackend,
    SoftwareBackend,
    nodes_per_root,
)
from repro.serving.gateway import (
    GatewayConfig,
    GatewayLoad,
    MicroBatch,
    ServingGateway,
    ShedResponse,
    serve_workload,
)
from repro.serving.metrics import (
    BackendReport,
    MetricsRegistry,
    ServingReport,
    TenantReport,
)
from repro.serving.scheduler import SloScheduler, TokenBucket
from repro.serving.workload import (
    Arrival,
    DiurnalProfile,
    TenantSpec,
    default_tenants,
    generate_arrivals,
)

__all__ = [
    "Arrival",
    "BackendReport",
    "BackendResult",
    "DiurnalProfile",
    "GatewayConfig",
    "GatewayLoad",
    "HardwareBackend",
    "MetricsRegistry",
    "MicroBatch",
    "ServingBackend",
    "ServingGateway",
    "ServingReport",
    "ShedResponse",
    "SloScheduler",
    "SoftwareBackend",
    "TenantReport",
    "TenantSpec",
    "TokenBucket",
    "default_tenants",
    "generate_arrivals",
    "nodes_per_root",
    "serve_workload",
]
