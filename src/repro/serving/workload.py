"""Open-loop workload generation for the serving gateway.

`repro.framework.service` drives a *closed* loop (workers issue the
next batch only after the previous completes); real inference traffic
is *open* — users arrive whether or not the system keeps up, which is
what makes overload, shedding, and backpressure observable at all.
Each tenant is an independent (optionally diurnally-modulated) Poisson
process; arrivals are pre-generated so a run is a pure function of the
seed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DiurnalProfile:
    """Sinusoidal rate modulation: ``rate * (1 + amplitude*sin(...))``.

    A laptop-scale stand-in for the day/night traffic swing a
    hyperscale service provisions for; ``period_s`` is the full cycle
    (compressed from 24h to the run window).
    """

    amplitude: float = 0.0
    period_s: float = 1.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.amplitude < 1:
            raise ConfigurationError(
                f"amplitude must be in [0, 1), got {self.amplitude}"
            )
        if self.period_s <= 0:
            raise ConfigurationError(
                f"period_s must be positive, got {self.period_s}"
            )

    def multiplier(self, time_s: float) -> float:
        """Instantaneous rate multiplier at ``time_s``."""
        return 1.0 + self.amplitude * float(
            np.sin(2 * np.pi * time_s / self.period_s + self.phase)
        )


@dataclass(frozen=True)
class TenantSpec:
    """One traffic source sharing the gateway.

    ``rate_rps`` is the *offered* request rate; ``provisioned_rps`` is
    the rate the tenant paid for (its token-bucket fair share). They
    differ exactly when the tenant is overloading its contract, which
    is the case load shedding exists for. ``None`` provisions at the
    offered rate.
    """

    name: str
    rate_rps: float
    roots_per_request: int = 4
    fanouts: Tuple[int, ...] = (5, 5)
    slo_s: float = 20e-3
    provisioned_rps: Optional[float] = None
    diurnal: Optional[DiurnalProfile] = None
    start_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.rate_rps <= 0:
            raise ConfigurationError(
                f"rate_rps must be positive, got {self.rate_rps}"
            )
        if self.roots_per_request <= 0:
            raise ConfigurationError(
                f"roots_per_request must be positive, got {self.roots_per_request}"
            )
        if not self.fanouts or any(f <= 0 for f in self.fanouts):
            raise ConfigurationError(
                f"fanouts must be positive, got {self.fanouts}"
            )
        if self.slo_s <= 0:
            raise ConfigurationError(f"slo_s must be positive, got {self.slo_s}")
        if self.provisioned_rps is not None and self.provisioned_rps <= 0:
            raise ConfigurationError(
                f"provisioned_rps must be positive, got {self.provisioned_rps}"
            )
        if self.start_s < 0:
            raise ConfigurationError(
                f"start_s must be non-negative, got {self.start_s}"
            )

    @property
    def fair_share_rps(self) -> float:
        """The rate the admission token bucket is provisioned at."""
        if self.provisioned_rps is not None:
            return self.provisioned_rps
        return self.rate_rps

    def overloaded(self, factor: float) -> "TenantSpec":
        """The same tenant offering ``factor``x its provisioned rate."""
        if factor <= 0:
            raise ConfigurationError(f"factor must be positive, got {factor}")
        return dataclasses.replace(
            self,
            rate_rps=self.fair_share_rps * factor,
            provisioned_rps=self.fair_share_rps,
        )


@dataclass(frozen=True)
class Arrival:
    """One request materialized from a tenant's arrival process."""

    time_s: float
    tenant: str
    roots: np.ndarray
    fanouts: Tuple[int, ...]
    slo_s: float
    seq: int

    @property
    def deadline_s(self) -> float:
        return self.time_s + self.slo_s

    @property
    def num_roots(self) -> int:
        return int(self.roots.size)


def default_tenants(duration_s: float = 0.5) -> List[TenantSpec]:
    """Three representative tenants sharing one sampling shape.

    Recsys carries a diurnal swing (one full cycle over the run
    window); fraud is small-batch latency-critical; search sends
    larger batches with a looser SLO. All three use the same fanouts
    so the gateway can coalesce their roots into shared micro-batches.
    """
    return [
        TenantSpec(
            name="recsys",
            rate_rps=240.0,
            roots_per_request=4,
            fanouts=(5, 5),
            slo_s=20e-3,
            diurnal=DiurnalProfile(amplitude=0.3, period_s=duration_s),
        ),
        TenantSpec(
            name="fraud",
            rate_rps=160.0,
            roots_per_request=2,
            fanouts=(5, 5),
            slo_s=10e-3,
        ),
        TenantSpec(
            name="search",
            rate_rps=120.0,
            roots_per_request=8,
            fanouts=(5, 5),
            slo_s=40e-3,
        ),
    ]


def generate_arrivals(
    tenants: Sequence[TenantSpec],
    duration_s: float,
    num_nodes: int,
    seed: int = 0,
) -> List[Arrival]:
    """Materialize every tenant's Poisson stream over ``duration_s``.

    Non-homogeneous (diurnal) tenants use Lewis-Shedler thinning:
    candidates are drawn at the peak rate and accepted with
    probability ``rate(t)/rate_peak``. Returns arrivals merged in time
    order, deterministically for a fixed seed.
    """
    if duration_s <= 0:
        raise ConfigurationError(
            f"duration_s must be positive, got {duration_s}"
        )
    if num_nodes <= 0:
        raise ConfigurationError(
            f"num_nodes must be positive, got {num_nodes}"
        )
    if not tenants:
        raise ConfigurationError("at least one tenant is required")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"tenant names must be unique, got {names}")

    arrivals: List[Arrival] = []
    for tenant_index, spec in enumerate(tenants):
        rng = np.random.default_rng(seed + 1009 * tenant_index)
        peak = spec.rate_rps
        if spec.diurnal is not None:
            peak *= 1.0 + spec.diurnal.amplitude
        time_s = spec.start_s
        while True:
            time_s += float(rng.exponential(1.0 / peak))
            if time_s >= duration_s:
                break
            if spec.diurnal is not None:
                accept = spec.rate_rps * spec.diurnal.multiplier(time_s) / peak
                if rng.random() >= accept:
                    continue
            roots = rng.integers(
                0, num_nodes, size=spec.roots_per_request, dtype=np.int64
            )
            arrivals.append(
                Arrival(
                    time_s=time_s,
                    tenant=spec.name,
                    roots=roots,
                    fanouts=spec.fanouts,
                    slo_s=spec.slo_s,
                    seq=0,
                )
            )
    arrivals.sort(key=lambda a: a.time_s)
    return [
        dataclasses.replace(arrival, seq=index)
        for index, arrival in enumerate(arrivals)
    ]
