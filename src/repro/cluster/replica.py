"""One serving replica: a gateway plus its backend capacity.

A replica is the cluster's unit of scaling: a :class:`ServingGateway`
(micro-batching + EDF dispatch, cluster-level admission control
disabled) over a backend pool of one *flavor*. A flavor is one of the
paper's Table 8 FaaS architectures priced through the
:mod:`repro.cost` fitted model and rated through the :mod:`repro.faas`
analytical throughput model — which is exactly what lets the
autoscaler trade SLO attainment against $/hr with the paper's own
economics (Section 7.2) instead of made-up constants.

Two backend modes:

* **Modeled** (default) — :class:`ModeledBackend` charges each
  micro-batch ``overhead + roots/rate`` of virtual service time, where
  the rate is the flavor's architecture throughput scaled to the
  compressed trace (``capacity_scale``). This is the fleet-economics
  mode: millions of virtual users, zero real sampling.
* **Session-backed** — :func:`session_backends` wraps a
  :class:`repro.api.GnnSession` (optionally ``workers=k`` for the
  sharded parallel engine) in :class:`SoftwareBackend`, so every
  micro-batch really samples the session's graph.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.axe.events import Simulator
from repro.serving.backends import BackendResult, ServingBackend, SoftwareBackend
from repro.serving.gateway import GatewayConfig, GatewayLoad, ServingGateway
from repro.serving.workload import TenantSpec
from repro.units import MS


class ReplicaState(enum.Enum):
    """Replica lifecycle the health checker and autoscaler drive."""

    STARTING = "starting"  # spawned, warming up, unrouted
    HEALTHY = "healthy"  # routed, serving
    DRAINING = "draining"  # unrouted, finishing admitted work
    DOWN = "down"  # drained and retired
    FAILED = "failed"  # killed; admitted work awaits evacuation


@dataclass(frozen=True)
class ReplicaFlavor:
    """One deployable replica shape: capacity and price.

    ``roots_per_second`` is the whole replica's sampling capacity;
    ``price_per_hour`` its all-in cost (instance + the GPU share its
    output throughput obligates, per the Limitation-2 rule).
    """

    arch: str
    size: str
    roots_per_second: float
    price_per_hour: float
    concurrency: int = 2
    base_overhead_s: float = 1.0 * MS

    def __post_init__(self) -> None:
        if self.roots_per_second <= 0:
            raise ConfigurationError(
                f"roots_per_second must be positive, got "
                f"{self.roots_per_second}"
            )
        if self.price_per_hour <= 0:
            raise ConfigurationError(
                f"price_per_hour must be positive, got {self.price_per_hour}"
            )
        if self.concurrency <= 0:
            raise ConfigurationError(
                f"concurrency must be positive, got {self.concurrency}"
            )
        if self.base_overhead_s <= 0:
            raise ConfigurationError(
                f"base_overhead_s must be positive, got {self.base_overhead_s}"
            )

    @property
    def name(self) -> str:
        return self.arch

    @property
    def price_per_capacity(self) -> float:
        """$/hr per root/s — the scale-down ordering key."""
        return self.price_per_hour / self.roots_per_second


def flavor_catalog(
    archs: Sequence[str],
    size: str = "medium",
    dataset: str = "ss",
    capacity_scale: float = 1.0,
    concurrency: int = 2,
    dse: Optional[object] = None,
) -> "dict[str, ReplicaFlavor]":
    """Price and rate a set of Table 8 architectures as replica flavors.

    ``capacity_scale`` maps fleet-scale analytical throughput onto the
    compressed trace's demand scale — the same factor for every flavor,
    so relative perf-per-dollar (the quantity the cost policy optimizes)
    is preserved exactly.
    """
    if capacity_scale <= 0:
        raise ConfigurationError(
            f"capacity_scale must be positive, got {capacity_scale}"
        )
    from repro.faas.arch import get_architecture
    from repro.faas.dse import FaasDse

    engine = dse if dse is not None else FaasDse()
    catalog = {}
    for arch_name in archs:
        result = engine.evaluate(get_architecture(arch_name), size, dataset)
        catalog[arch_name] = ReplicaFlavor(
            arch=arch_name,
            size=size,
            roots_per_second=result.roots_per_second * capacity_scale,
            price_per_hour=result.total_price,
            concurrency=concurrency,
        )
    return catalog


class ModeledBackend(ServingBackend):
    """Timing-only backend charging the flavor's analytical rate.

    ``concurrency`` slots each deliver ``roots_per_second /
    concurrency``, so the replica's aggregate rate matches the flavor
    while per-batch latency reflects slot parallelism.
    """

    def __init__(self, flavor: ReplicaFlavor, name: str = "model") -> None:
        super().__init__(name=name, concurrency=flavor.concurrency)
        self.flavor = flavor
        self._slot_rate = flavor.roots_per_second / flavor.concurrency

    def execute(
        self, roots: np.ndarray, fanouts: Tuple[int, ...]
    ) -> BackendResult:
        service_s = self.flavor.base_overhead_s + roots.size / self._slot_rate
        return BackendResult(payload=None, service_s=service_s)


#: Builds a replica's backend pool; called per (re)start so a restarted
#: replica gets fresh backend state.
BackendFactory = Callable[[str], Sequence[ServingBackend]]


def modeled_backends(flavor: ReplicaFlavor) -> BackendFactory:
    """The default factory: one modeled backend of ``flavor``."""

    def factory(replica_name: str) -> Sequence[ServingBackend]:
        return [ModeledBackend(flavor, name=f"{replica_name}.model")]

    return factory


def session_backends(
    session: "object",
    functional: bool = True,
    concurrency: int = 4,
) -> BackendFactory:
    """Backends that really sample a :class:`repro.api.GnnSession`.

    Each replica wraps the session's sampler (the sharded parallel
    engine when the session was built with ``workers=k``) in a
    :class:`SoftwareBackend`; service time follows the backend's cost
    model while payloads are genuine sample layers.
    """
    sampler = getattr(session, "sampler", None)
    if sampler is None:
        raise ConfigurationError(
            "session_backends needs a GnnSession-like object with a .sampler"
        )

    def factory(replica_name: str) -> Sequence[ServingBackend]:
        return [
            SoftwareBackend(
                sampler,
                concurrency=concurrency,
                functional=functional,
                name=f"{replica_name}.software",
            )
        ]

    return factory


class ClusterReplica:
    """Lifecycle wrapper tying a gateway to the shared event kernel."""

    def __init__(
        self,
        name: str,
        flavor: ReplicaFlavor,
        tenants: Sequence[TenantSpec],
        gateway_config: Optional[GatewayConfig] = None,
        backend_factory: Optional[BackendFactory] = None,
    ) -> None:
        if not name:
            raise ConfigurationError("replica name must be non-empty")
        self.name = name
        self.flavor = flavor
        self.tenants = list(tenants)
        self.gateway_config = gateway_config
        self.backend_factory = backend_factory or modeled_backends(flavor)
        self.state = ReplicaState.STARTING
        self.alive = True
        self.gateway: Optional[ServingGateway] = None
        self.generation = 0

    # ----------------------------------------------------------- lifecycle
    def attach(self, sim: Simulator) -> ServingGateway:
        """Build a fresh gateway on the shared kernel (start/restart)."""
        backends = list(self.backend_factory(self.name))
        gateway = ServingGateway(
            backends, self.tenants, config=self.gateway_config
        )
        gateway.attach(sim, admission=False)
        self.gateway = gateway
        self.state = ReplicaState.STARTING
        self.alive = True
        self.generation += 1
        return gateway

    def mark_healthy(self) -> None:
        if not self.alive or self.state is not ReplicaState.STARTING:
            raise SimulationError(
                f"replica {self.name} cannot turn healthy from {self.state}"
            )
        self.state = ReplicaState.HEALTHY

    def begin_drain(self) -> None:
        if self.gateway is None:
            raise SimulationError(f"replica {self.name} never attached")
        self.state = ReplicaState.DRAINING
        self.gateway.begin_drain()

    @property
    def drained(self) -> bool:
        return self.gateway is not None and self.gateway.drained

    def retire(self) -> None:
        """Finish a drain: verify the queue emptied, then go DOWN."""
        if self.gateway is None:
            raise SimulationError(f"replica {self.name} never attached")
        self.gateway.assert_drained()
        self.state = ReplicaState.DOWN

    # ------------------------------------------------------------- failure
    def fail(self) -> None:
        """Kill switch: backend dies, in-flight work is stranded."""
        if self.gateway is None:
            raise SimulationError(f"replica {self.name} never attached")
        self.alive = False
        self.state = ReplicaState.FAILED
        self.gateway.halt()

    def evacuate(self):
        """Hand the stranded admitted work to the cluster for re-route."""
        if self.gateway is None:
            raise SimulationError(f"replica {self.name} never attached")
        return self.gateway.evacuate()

    # ---------------------------------------------------------------- load
    def load(self) -> GatewayLoad:
        if self.gateway is None or not self.alive:
            return GatewayLoad(
                queue_depth=0, in_flight_batches=0, in_flight_roots=0
            )
        return self.gateway.load()

    @property
    def active(self) -> bool:
        """Billing and capacity accrue in these states."""
        return self.state in (
            ReplicaState.STARTING,
            ReplicaState.HEALTHY,
            ReplicaState.DRAINING,
        )
