"""Deterministic diurnal + flash-crowd arrival traces.

The cluster's target scenario (ROADMAP item 1) is "a diurnal
million-user trace with flash crowds": a user population whose offered
load swings through a compressed day/night cycle, with superimposed
flash crowds (a breaking-news fraud spike, a sale-start recsys surge)
that multiply one tenant's rate for a bounded window.

Every arrival is materialized up front from a
:class:`numpy.random.SeedSequence`-derived generator per tenant, so a
trace is a pure function of its :class:`TraceConfig` — two generations
are byte-identical (see :func:`trace_digest`), which is what makes
cluster runs comparable across scaling policies and replayable in CI.

Rates use Lewis-Shedler thinning exactly like
:func:`repro.serving.workload.generate_arrivals`: candidates are drawn
at the tenant's peak rate (diurnal crest x largest applicable flash
multiplier) and accepted with probability ``rate(t) / peak``.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.serving.workload import Arrival, TenantSpec


@dataclass(frozen=True)
class FlashCrowd:
    """One bounded surge window multiplying a tenant subset's rate.

    The multiplier ramps linearly over ``ramp_s`` at both edges (a
    crowd assembles and disperses; a step function would make every
    reactive policy look one control-interval late by construction).
    """

    start_s: float
    duration_s: float
    multiplier: float
    ramp_s: float = 0.5
    #: Tenants the crowd applies to; ``None`` means all tenants.
    tenants: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError(
                f"start_s must be non-negative, got {self.start_s}"
            )
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be positive, got {self.duration_s}"
            )
        if self.multiplier <= 1.0:
            raise ConfigurationError(
                f"multiplier must exceed 1, got {self.multiplier}"
            )
        if self.ramp_s < 0 or 2 * self.ramp_s > self.duration_s:
            raise ConfigurationError(
                f"ramp_s must fit inside the window, got {self.ramp_s}"
            )

    def applies_to(self, tenant: str) -> bool:
        return self.tenants is None or tenant in self.tenants

    def multiplier_at(self, time_s: float) -> float:
        """Trapezoidal rate multiplier at ``time_s`` (1.0 outside)."""
        offset = time_s - self.start_s
        if offset < 0 or offset > self.duration_s:
            return 1.0
        if self.ramp_s > 0:
            edge = min(offset, self.duration_s - offset)
            if edge < self.ramp_s:
                return 1.0 + (self.multiplier - 1.0) * edge / self.ramp_s
        return self.multiplier


@dataclass(frozen=True)
class TenantMix:
    """One tenant's slice of the user population's traffic."""

    name: str
    share: float
    roots_per_request: int = 4
    fanouts: Tuple[int, ...] = (5, 5)
    slo_s: float = 60e-3

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if not 0 < self.share <= 1:
            raise ConfigurationError(
                f"share must be in (0, 1], got {self.share}"
            )
        if self.roots_per_request <= 0:
            raise ConfigurationError(
                f"roots_per_request must be positive, got "
                f"{self.roots_per_request}"
            )
        if not self.fanouts or any(f <= 0 for f in self.fanouts):
            raise ConfigurationError(
                f"fanouts must be positive, got {self.fanouts}"
            )
        if self.slo_s <= 0:
            raise ConfigurationError(
                f"slo_s must be positive, got {self.slo_s}"
            )


def default_mix() -> Tuple[TenantMix, ...]:
    """The three default tenants sharing one coalescable fanout shape."""
    return (
        TenantMix(name="recsys", share=0.5, roots_per_request=4, slo_s=60e-3),
        TenantMix(name="fraud", share=0.2, roots_per_request=2, slo_s=40e-3),
        TenantMix(name="search", share=0.3, roots_per_request=8, slo_s=90e-3),
    )


@dataclass(frozen=True)
class TraceConfig:
    """A compressed-day arrival trace for a user population.

    ``duration_s`` maps one full diurnal cycle onto the run window, so
    a 20-second trace is a 24-hour day at ~4300x compression;
    ``users * rps_per_user`` is the population's mean offered request
    rate at mid-swing.
    """

    duration_s: float = 10.0
    users: int = 1_000_000
    rps_per_user: float = 5e-4
    diurnal_amplitude: float = 0.5
    tenants: Tuple[TenantMix, ...] = field(default_factory=default_mix)
    flash_crowds: Tuple[FlashCrowd, ...] = ()
    num_nodes: int = 100_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be positive, got {self.duration_s}"
            )
        if self.users <= 0:
            raise ConfigurationError(
                f"users must be positive, got {self.users}"
            )
        if self.rps_per_user <= 0:
            raise ConfigurationError(
                f"rps_per_user must be positive, got {self.rps_per_user}"
            )
        if not 0 <= self.diurnal_amplitude < 1:
            raise ConfigurationError(
                f"diurnal_amplitude must be in [0, 1), got "
                f"{self.diurnal_amplitude}"
            )
        if not self.tenants:
            raise ConfigurationError("at least one tenant is required")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"tenant names must be unique, got {names}"
            )
        if abs(sum(t.share for t in self.tenants) - 1.0) > 1e-6:
            raise ConfigurationError(
                f"tenant shares must sum to 1, got "
                f"{sum(t.share for t in self.tenants)}"
            )
        if self.num_nodes <= 0:
            raise ConfigurationError(
                f"num_nodes must be positive, got {self.num_nodes}"
            )
        for crowd in self.flash_crowds:
            known = {t.name for t in self.tenants}
            if crowd.tenants is not None and not set(crowd.tenants) <= known:
                raise ConfigurationError(
                    f"flash crowd names unknown tenants {crowd.tenants}"
                )

    # ---------------------------------------------------------------- rates
    @property
    def total_rps(self) -> float:
        """Mean offered request rate of the whole population."""
        return self.users * self.rps_per_user

    def diurnal_multiplier(self, time_s: float) -> float:
        """Day/night swing: trough at t=0, crest mid-window."""
        return 1.0 + self.diurnal_amplitude * float(
            np.sin(2 * np.pi * time_s / self.duration_s - np.pi / 2)
        )

    def flash_multiplier(self, tenant: str, time_s: float) -> float:
        multiplier = 1.0
        for crowd in self.flash_crowds:
            if crowd.applies_to(tenant):
                multiplier *= crowd.multiplier_at(time_s)
        return multiplier

    def rate(self, tenant: TenantMix, time_s: float) -> float:
        """Instantaneous offered request rate of one tenant."""
        return (
            self.total_rps
            * tenant.share
            * self.diurnal_multiplier(time_s)
            * self.flash_multiplier(tenant.name, time_s)
        )

    def peak_rate(self, tenant: TenantMix) -> float:
        """Upper bound on :meth:`rate` (the thinning envelope)."""
        flash = 1.0
        for crowd in self.flash_crowds:
            if crowd.applies_to(tenant.name):
                flash *= crowd.multiplier
        return (
            self.total_rps
            * tenant.share
            * (1.0 + self.diurnal_amplitude)
            * flash
        )

    def peak_roots_per_second(self) -> float:
        """Worst-case offered sampling demand across the window."""
        return sum(
            self.peak_rate(t) * t.roots_per_request for t in self.tenants
        )

    # -------------------------------------------------------------- tenants
    def tenant_specs(self) -> List[TenantSpec]:
        """The tenants as gateway :class:`TenantSpec`\\ s.

        ``provisioned_rps`` is the tenant's mean (mid-swing) rate: the
        contract rate cluster-level admission provisions its token
        bucket from, with the cluster's own headroom on top.
        """
        return [
            TenantSpec(
                name=t.name,
                rate_rps=self.total_rps * t.share,
                roots_per_request=t.roots_per_request,
                fanouts=t.fanouts,
                slo_s=t.slo_s,
                provisioned_rps=self.total_rps * t.share,
            )
            for t in self.tenants
        ]


def flash_crowd_day(
    duration_s: float = 10.0,
    users: int = 1_000_000,
    rps_per_user: float = 5e-4,
    seed: int = 0,
) -> TraceConfig:
    """The headline scenario: a compressed day with two flash crowds.

    A fraud spike (suspicious-activity storm) hits on the morning ramp
    and a recsys surge (sale start) rides the evening crest — one while
    capacity is low, one while capacity is already stretched.
    """
    return TraceConfig(
        duration_s=duration_s,
        users=users,
        rps_per_user=rps_per_user,
        diurnal_amplitude=0.5,
        flash_crowds=(
            FlashCrowd(
                start_s=0.22 * duration_s,
                duration_s=0.12 * duration_s,
                multiplier=2.5,
                ramp_s=0.03 * duration_s,
                tenants=("fraud",),
            ),
            FlashCrowd(
                start_s=0.62 * duration_s,
                duration_s=0.15 * duration_s,
                multiplier=1.8,
                ramp_s=0.04 * duration_s,
                tenants=("recsys",),
            ),
        ),
        seed=seed,
    )


def generate_trace(config: TraceConfig) -> List[Arrival]:
    """Materialize the full arrival trace, merged in time order.

    Per-tenant generators are spawned from one
    :class:`numpy.random.SeedSequence`, so adding a tenant never
    perturbs another tenant's stream.
    """
    root_seq = np.random.SeedSequence(config.seed)
    children = root_seq.spawn(len(config.tenants))
    arrivals: List[Arrival] = []
    for tenant, child in zip(config.tenants, children):
        rng = np.random.default_rng(child)
        peak = config.peak_rate(tenant)
        time_s = 0.0
        while True:
            time_s += float(rng.exponential(1.0 / peak))
            if time_s >= config.duration_s:
                break
            accept = config.rate(tenant, time_s) / peak
            if rng.random() >= accept:
                continue
            roots = rng.integers(
                0,
                config.num_nodes,
                size=tenant.roots_per_request,
                dtype=np.int64,
            )
            arrivals.append(
                Arrival(
                    time_s=time_s,
                    tenant=tenant.name,
                    roots=roots,
                    fanouts=tenant.fanouts,
                    slo_s=tenant.slo_s,
                    seq=0,
                )
            )
    arrivals.sort(key=lambda a: a.time_s)
    return [
        Arrival(
            time_s=a.time_s,
            tenant=a.tenant,
            roots=a.roots,
            fanouts=a.fanouts,
            slo_s=a.slo_s,
            seq=index,
        )
        for index, a in enumerate(arrivals)
    ]


def trace_digest(arrivals: Sequence[Arrival]) -> str:
    """SHA-256 over every field of every arrival.

    The byte-identity check behind the trace regression test: two
    generations of the same :class:`TraceConfig` must hash equal.
    """
    hasher = hashlib.sha256()
    for arrival in arrivals:
        hasher.update(
            struct.pack("<ddq", arrival.time_s, arrival.slo_s, arrival.seq)
        )
        hasher.update(arrival.tenant.encode("utf-8"))
        hasher.update(np.asarray(arrival.fanouts, dtype=np.int64).tobytes())
        hasher.update(arrival.roots.astype(np.int64, copy=False).tobytes())
    return hasher.hexdigest()
