"""Pluggable request routers over the replica pool.

Two policies, each solving a different routing problem:

* **Consistent hash** — tenant affinity. A tenant's requests land on
  the same replica as long as that replica lives, and replica churn
  moves only ``~1/N`` of the key space (each replica contributes
  ``vnodes`` points to a shared hash ring, so its departure hands its
  arcs to many successors instead of one). Affinity is what makes
  per-replica caches and per-tenant batching coalesce.
* **Least loaded** — instantaneous balance. Every request goes to the
  member with the smallest load score (queue depth + in-flight roots),
  ties broken toward the earliest-added member so a quiet cluster
  routes deterministically.

Hashing uses BLAKE2b digests, not Python ``hash()`` — the interpreter
salts ``hash()`` per process, which would make routing (and therefore
every cluster metric) differ run to run.
"""

from __future__ import annotations

import abc
import bisect
import hashlib
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.serving.gateway import GatewayLoad


def _hash_point(key: str) -> int:
    """Deterministic 64-bit ring coordinate for ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class Router(abc.ABC):
    """Membership plus a routing decision per request."""

    #: Policy name the CLI/report use.
    policy: str = ""

    def __init__(self) -> None:
        self._members: List[str] = []

    @property
    def members(self) -> Tuple[str, ...]:
        """Replicas currently eligible for new traffic, in add order."""
        return tuple(self._members)

    def add_replica(self, name: str) -> None:
        if name in self._members:
            raise ConfigurationError(f"replica {name!r} already routed")
        self._members.append(name)

    def remove_replica(self, name: str) -> None:
        if name not in self._members:
            raise ConfigurationError(f"replica {name!r} not routed")
        self._members.remove(name)

    def _require_members(self) -> None:
        if not self._members:
            raise SimulationError("routing with no eligible replicas")

    @abc.abstractmethod
    def route(self, tenant: str, loads: Mapping[str, GatewayLoad]) -> str:
        """Pick the member that should serve this tenant's request."""


class ConsistentHashRouter(Router):
    """Tenant-affine routing on a virtual-node hash ring."""

    policy = "consistent-hash"

    def __init__(self, vnodes: int = 64) -> None:
        super().__init__()
        if vnodes <= 0:
            raise ConfigurationError(
                f"vnodes must be positive, got {vnodes}"
            )
        self.vnodes = vnodes
        self._ring: List[Tuple[int, str]] = []
        self._points: List[int] = []

    def _rebuild_points(self) -> None:
        self._points = [point for point, _name in self._ring]

    def add_replica(self, name: str) -> None:
        super().add_replica(name)
        for index in range(self.vnodes):
            entry = (_hash_point(f"{name}#{index}"), name)
            bisect.insort(self._ring, entry)
        self._rebuild_points()

    def remove_replica(self, name: str) -> None:
        super().remove_replica(name)
        self._ring = [entry for entry in self._ring if entry[1] != name]
        self._rebuild_points()

    def route(self, tenant: str, loads: Mapping[str, GatewayLoad]) -> str:
        self._require_members()
        point = _hash_point(tenant)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def assignment(self, keys: Sequence[str]) -> Dict[str, str]:
        """Snapshot key -> member mapping (the churn-stability probe)."""
        empty: Dict[str, GatewayLoad] = {}
        return {key: self.route(key, empty) for key in keys}


class LeastLoadedRouter(Router):
    """Route to the member with the smallest instantaneous load."""

    policy = "least-loaded"

    def route(self, tenant: str, loads: Mapping[str, GatewayLoad]) -> str:
        self._require_members()
        best = self._members[0]
        best_score = self._score(best, loads)
        for name in self._members[1:]:
            score = self._score(name, loads)
            if score < best_score:
                best, best_score = name, score
        return best

    @staticmethod
    def _score(name: str, loads: Mapping[str, GatewayLoad]) -> int:
        load = loads.get(name)
        return 0 if load is None else load.score


#: Router policy name -> constructor.
ROUTER_POLICIES = {
    "consistent-hash": ConsistentHashRouter,
    "least-loaded": LeastLoadedRouter,
}


def get_router(policy: str) -> Router:
    """Instantiate a router by policy name."""
    try:
        factory = ROUTER_POLICIES[policy]
    except KeyError:
        raise ConfigurationError(
            f"unknown router policy {policy!r}; expected one of "
            f"{sorted(ROUTER_POLICIES)}"
        ) from None
    return factory()
