"""Cluster-level accounting and the policy-comparison report.

The cluster owns its request ledger instead of summing replica
gateway registries: replicas hot-restart with fresh gateways (their
registries reset), and a request that is evacuated off a failed
replica completes on a different gateway than the one that admitted
it. Every offered request is accounted exactly once here —
``offered == completed + shed + in flight at horizon`` — which is what
the no-lost-requests invariant in the kill test checks.

The headline artifact is :func:`format_comparison`: SLO attainment
against fleet $/hr for each scaling policy over the same trace — the
ROADMAP item 1 deliverable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.cluster.replica import ReplicaFlavor
from repro.serving.metrics import _percentile
from repro.units import MS_PER_S, S_PER_HOUR


@dataclass
class TenantLedger:
    """Per-tenant request accounting across the whole cluster."""

    name: str
    slo_s: float
    offered: int = 0
    completed: int = 0
    within_slo: int = 0
    shed_requests: int = 0
    latencies_s: List[float] = field(default_factory=list)

    @property
    def attainment(self) -> float:
        """Fraction of *offered* requests completed inside their SLO."""
        if self.offered == 0:
            return 1.0
        return self.within_slo / self.offered

    def p50(self) -> float:
        return _percentile(self.latencies_s, 50.0)

    def p99(self) -> float:
        return _percentile(self.latencies_s, 99.0)


class ClusterMetrics:
    """Mutable accumulator the cluster simulation writes into."""

    def __init__(self) -> None:
        self.tenants: Dict[str, TenantLedger] = {}
        self.offered = 0
        self.completed = 0
        self.within_slo = 0
        self.shed_requests = 0
        self.shed_reasons: Dict[str, int] = {}
        #: Router chose a dead-but-undetected replica; instantly re-routed.
        self.redirected_requests = 0
        #: Admitted work pulled off a failed replica and re-routed.
        self.evacuated_requests = 0
        self.replica_launches = 0
        self.replica_failures = 0
        self.replica_restarts = 0
        self.replica_drains = 0
        #: arch -> accumulated active replica-seconds (billing basis).
        self.replica_seconds: Dict[str, float] = {}
        #: (time_s, active replica count) at each control tick.
        self.fleet_samples: List[Tuple[float, int]] = []

    def register_tenant(self, name: str, slo_s: float) -> None:
        if name in self.tenants:
            raise ConfigurationError(f"tenant {name!r} already registered")
        self.tenants[name] = TenantLedger(name=name, slo_s=slo_s)

    # ------------------------------------------------------------- requests
    def on_offered(self, tenant: str) -> None:
        self.offered += 1
        self.tenants[tenant].offered += 1

    def on_shed(self, tenant: str, reason: str) -> None:
        self.shed_requests += 1
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1
        self.tenants[tenant].shed_requests += 1

    def on_completed(self, tenant: str, latency_s: float, slo_s: float) -> None:
        ledger = self.tenants[tenant]
        ledger.completed += 1
        ledger.latencies_s.append(latency_s)
        self.completed += 1
        if latency_s <= slo_s:
            self.within_slo += 1
            ledger.within_slo += 1

    # -------------------------------------------------------------- billing
    def on_replica_active_s(self, arch: str, seconds: float) -> None:
        self.replica_seconds[arch] = (
            self.replica_seconds.get(arch, 0.0) + seconds
        )

    def total_cost(self, catalog: Mapping[str, ReplicaFlavor]) -> float:
        """Dollars spent over the run, per the fitted pricing model."""
        cost = 0.0
        for arch, seconds in self.replica_seconds.items():
            cost += catalog[arch].price_per_hour * seconds / S_PER_HOUR
        return cost


@dataclass(frozen=True)
class TenantSummary:
    name: str
    slo_ms: float
    offered: int
    completed: int
    shed_requests: int
    attainment: float
    p50_ms: float
    p99_ms: float


@dataclass(frozen=True)
class ClusterReport:
    """One policy's run over one trace, fully reduced."""

    policy: str
    router: str
    duration_s: float
    offered: int
    completed: int
    within_slo: int
    shed_requests: int
    redirected_requests: int
    evacuated_requests: int
    replica_launches: int
    replica_failures: int
    replica_restarts: int
    replica_drains: int
    min_replicas: int
    peak_replicas: int
    replica_seconds: Mapping[str, float]
    total_cost: float
    tenants: Tuple[TenantSummary, ...]

    @property
    def attainment(self) -> float:
        """Completed-within-SLO over offered — shed requests count
        against the cluster, not against the client."""
        if self.offered == 0:
            return 1.0
        return self.within_slo / self.offered

    @property
    def dollars_per_hour(self) -> float:
        """Mean fleet burn rate over the run window."""
        if self.duration_s <= 0:
            return 0.0
        return self.total_cost * S_PER_HOUR / self.duration_s

    @property
    def lost_requests(self) -> int:
        """Offered requests neither completed nor explicitly shed.

        Must be zero even across replica kills: accepted work is
        evacuated and re-routed, never dropped.
        """
        return self.offered - self.completed - self.shed_requests

    def to_json(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "router": self.router,
            "duration_s": self.duration_s,
            "offered": self.offered,
            "completed": self.completed,
            "within_slo": self.within_slo,
            "shed_requests": self.shed_requests,
            "redirected_requests": self.redirected_requests,
            "evacuated_requests": self.evacuated_requests,
            "replica_launches": self.replica_launches,
            "replica_failures": self.replica_failures,
            "replica_restarts": self.replica_restarts,
            "replica_drains": self.replica_drains,
            "min_replicas": self.min_replicas,
            "peak_replicas": self.peak_replicas,
            "replica_seconds": dict(self.replica_seconds),
            "total_cost": self.total_cost,
            "dollars_per_hour": self.dollars_per_hour,
            "slo_attainment": self.attainment,
            "lost_requests": self.lost_requests,
            "tenants": [
                {
                    "name": t.name,
                    "slo_ms": t.slo_ms,
                    "offered": t.offered,
                    "completed": t.completed,
                    "shed_requests": t.shed_requests,
                    "attainment": t.attainment,
                    "p50_ms": t.p50_ms,
                    "p99_ms": t.p99_ms,
                }
                for t in self.tenants
            ],
        }

    def format(self) -> str:
        lines = [
            f"cluster run: policy={self.policy} router={self.router} "
            f"duration={self.duration_s:.1f}s",
            f"  requests: offered {self.offered:,}  completed "
            f"{self.completed:,}  shed {self.shed_requests:,}  "
            f"lost {self.lost_requests}",
            f"  SLO attainment: {self.attainment:.1%}   fleet cost: "
            f"${self.total_cost:.4f} (${self.dollars_per_hour:.2f}/hr)",
            f"  fleet: {self.min_replicas}-{self.peak_replicas} replicas  "
            f"launches {self.replica_launches}  failures "
            f"{self.replica_failures}  restarts {self.replica_restarts}  "
            f"drains {self.replica_drains}",
            f"  recovery: redirected {self.redirected_requests:,}  "
            f"evacuated {self.evacuated_requests:,}",
        ]
        for t in self.tenants:
            lines.append(
                f"  tenant {t.name:<8} slo {t.slo_ms:5.1f}ms  offered "
                f"{t.offered:>7,}  attain {t.attainment:6.1%}  p50 "
                f"{t.p50_ms:6.2f}ms  p99 {t.p99_ms:7.2f}ms"
            )
        return "\n".join(lines)


def build_report(
    metrics: ClusterMetrics,
    policy: str,
    router: str,
    duration_s: float,
    catalog: Mapping[str, ReplicaFlavor],
) -> ClusterReport:
    counts = [count for _t, count in metrics.fleet_samples]
    tenants = tuple(
        TenantSummary(
            name=ledger.name,
            slo_ms=ledger.slo_s * MS_PER_S,
            offered=ledger.offered,
            completed=ledger.completed,
            shed_requests=ledger.shed_requests,
            attainment=ledger.attainment,
            p50_ms=ledger.p50() * MS_PER_S,
            p99_ms=ledger.p99() * MS_PER_S,
        )
        for ledger in metrics.tenants.values()
    )
    return ClusterReport(
        policy=policy,
        router=router,
        duration_s=duration_s,
        offered=metrics.offered,
        completed=metrics.completed,
        within_slo=metrics.within_slo,
        shed_requests=metrics.shed_requests,
        redirected_requests=metrics.redirected_requests,
        evacuated_requests=metrics.evacuated_requests,
        replica_launches=metrics.replica_launches,
        replica_failures=metrics.replica_failures,
        replica_restarts=metrics.replica_restarts,
        replica_drains=metrics.replica_drains,
        min_replicas=min(counts) if counts else 0,
        peak_replicas=max(counts) if counts else 0,
        replica_seconds=dict(metrics.replica_seconds),
        total_cost=metrics.total_cost(catalog),
        tenants=tenants,
    )


def format_comparison(reports: Sequence[ClusterReport]) -> str:
    """The headline table: SLO attainment vs $/hr across policies."""
    if not reports:
        raise ConfigurationError("no reports to compare")
    header = (
        f"{'policy':<14} {'attain':>7} {'$/hr':>8} {'cost':>9} "
        f"{'replicas':>9} {'shed':>7} {'lost':>5} {'p99 ms':>8}"
    )
    lines = [header, "-" * len(header)]
    for report in reports:
        p99s = [t.p99_ms for t in report.tenants if t.completed]
        worst_p99 = max(p99s) if p99s else float("nan")
        lines.append(
            f"{report.policy:<14} {report.attainment:>7.1%} "
            f"{report.dollars_per_hour:>8.2f} {report.total_cost:>9.4f} "
            f"{report.min_replicas:>4}-{report.peak_replicas:<4} "
            f"{report.shed_requests:>7,} {report.lost_requests:>5} "
            f"{worst_p99:>8.2f}"
        )
    return "\n".join(lines)
