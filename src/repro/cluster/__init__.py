"""Multi-replica serving cluster with cost-driven autoscaling.

The serving layer (:mod:`repro.serving`) manages one gateway's SLOs;
this package is the layer above — the FaaS *fleet* the paper's
hyperscale argument is actually about. N replicas (each a gateway over
one Table 8 architecture flavor, priced by :mod:`repro.cost` and rated
by :mod:`repro.faas`) sit behind a pluggable router
(:mod:`~repro.cluster.router`), watched by a failure detector
(:mod:`~repro.cluster.health`), scaled by pluggable policies
(:mod:`~repro.cluster.autoscaler`), and driven by deterministic
diurnal flash-crowd traces (:mod:`~repro.cluster.trace`). The
headline artifact (:mod:`~repro.cluster.report`) compares SLO
attainment against fleet $/hr across scaling policies.
"""

from repro.cluster.autoscaler import (
    Autoscaler,
    ClusterSnapshot,
    CostModelPolicy,
    DemandForecast,
    ReactivePolicy,
    SCALING_POLICIES,
    ScalePlan,
    ScalingPolicy,
    StaticPolicy,
    get_policy,
    plan_min_cost_fleet,
)
from repro.cluster.health import HealthConfig, HealthMonitor
from repro.cluster.replica import (
    ClusterReplica,
    ModeledBackend,
    ReplicaFlavor,
    ReplicaState,
    flavor_catalog,
    modeled_backends,
    session_backends,
)
from repro.cluster.report import (
    ClusterMetrics,
    ClusterReport,
    TenantLedger,
    TenantSummary,
    build_report,
    format_comparison,
)
from repro.cluster.router import (
    ConsistentHashRouter,
    LeastLoadedRouter,
    ROUTER_POLICIES,
    Router,
    get_router,
)
from repro.cluster.sim import (
    ClusterConfig,
    ClusterSim,
    DEFAULT_ARCHS,
    run_cluster,
)
from repro.cluster.trace import (
    FlashCrowd,
    TenantMix,
    TraceConfig,
    default_mix,
    flash_crowd_day,
    generate_trace,
    trace_digest,
)

__all__ = [
    "Autoscaler",
    "ClusterConfig",
    "ClusterMetrics",
    "ClusterReplica",
    "ClusterReport",
    "ClusterSim",
    "ClusterSnapshot",
    "ConsistentHashRouter",
    "CostModelPolicy",
    "DEFAULT_ARCHS",
    "DemandForecast",
    "FlashCrowd",
    "HealthConfig",
    "HealthMonitor",
    "LeastLoadedRouter",
    "ModeledBackend",
    "ROUTER_POLICIES",
    "ReactivePolicy",
    "ReplicaFlavor",
    "ReplicaState",
    "Router",
    "SCALING_POLICIES",
    "ScalePlan",
    "ScalingPolicy",
    "StaticPolicy",
    "TenantLedger",
    "TenantMix",
    "TenantSummary",
    "TraceConfig",
    "build_report",
    "default_mix",
    "flash_crowd_day",
    "flavor_catalog",
    "format_comparison",
    "generate_trace",
    "get_policy",
    "get_router",
    "modeled_backends",
    "plan_min_cost_fleet",
    "run_cluster",
    "session_backends",
    "trace_digest",
]
