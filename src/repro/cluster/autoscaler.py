"""Scaling policies and the reconcile loop that applies them.

Three policies frame the cluster experiment (ROADMAP item 1):

* **static** — the null hypothesis: N identical replicas sized for the
  *mean* load, never touched. Cheap to reason about, and exactly wrong
  twice a day: over-provisioned in the trough, under-provisioned at the
  crest and during every flash crowd.
* **least-loaded** — classic reactive scaling: watch the observed
  demand (and queue pressure), keep ``ceil(demand * headroom /
  capacity)`` replicas of one fixed flavor. Reacts to *load*, knows
  nothing about *price*.
* **cost** — the paper's Section 7.2 argument operationalized: the
  FaaS architecture models (:mod:`repro.faas`) rate each Table 8
  design's roots/s and the fitted pricing model (:mod:`repro.cost`)
  prices it, so the policy can solve a tiny covering problem each tick
  — pick the replica *mix* that covers forecast demand at minimum
  $/hr. Different points of the day are served by different hardware.

The :class:`Autoscaler` wraps a policy with up/down asymmetry (scale
up immediately, scale down only after ``scale_down_cooldown_s`` of
sustained surplus) and turns target deltas into spawn/drain plans.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.cluster.replica import ReplicaFlavor
from repro.serving.gateway import GatewayLoad


@dataclass(frozen=True)
class DemandForecast:
    """What provisioning knows before the first request arrives."""

    mean_roots_per_s: float
    peak_roots_per_s: float

    def __post_init__(self) -> None:
        if self.mean_roots_per_s <= 0:
            raise ConfigurationError(
                f"mean_roots_per_s must be positive, got "
                f"{self.mean_roots_per_s}"
            )
        if self.peak_roots_per_s < self.mean_roots_per_s:
            raise ConfigurationError(
                "peak_roots_per_s must be at least the mean"
            )


@dataclass(frozen=True)
class ClusterSnapshot:
    """What a policy is allowed to see at one control tick."""

    time_s: float
    #: Windowed offered sampling demand (roots/s over the last window).
    observed_roots_per_s: float
    #: Active replica name -> flavor arch, in spawn order.
    active: Tuple[Tuple[str, str], ...]
    loads: Mapping[str, GatewayLoad]

    def count_by_arch(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for _name, arch in self.active:
            counts[arch] = counts.get(arch, 0) + 1
        return counts

    def mean_load_score(self) -> float:
        if not self.active:
            return 0.0
        total = 0
        for name, _arch in self.active:
            load = self.loads.get(name)
            total += 0 if load is None else load.score
        return total / len(self.active)


class ScalingPolicy(abc.ABC):
    """Maps an observation snapshot to a target fleet (arch -> count)."""

    name: str = ""

    @abc.abstractmethod
    def initial_target(
        self, forecast: DemandForecast, catalog: Mapping[str, ReplicaFlavor]
    ) -> Dict[str, int]:
        """Fleet to launch before any observation exists."""

    @abc.abstractmethod
    def decide(
        self,
        snapshot: ClusterSnapshot,
        catalog: Mapping[str, ReplicaFlavor],
    ) -> Dict[str, int]:
        """Target fleet for the next control interval."""


class StaticPolicy(ScalingPolicy):
    """Fixed fleet, sized once for the mean load, never adjusted."""

    name = "static"

    def __init__(self, arch: str = "base.tc", replicas: int = 0) -> None:
        if replicas < 0:
            raise ConfigurationError(
                f"replicas must be non-negative, got {replicas}"
            )
        self.arch = arch
        #: 0 means "size for the forecast peak at launch".
        self.replicas = replicas

    def initial_target(
        self, forecast: DemandForecast, catalog: Mapping[str, ReplicaFlavor]
    ) -> Dict[str, int]:
        flavor = catalog[self.arch]
        count = self.replicas
        if count == 0:
            # A fleet that never scales must survive the worst case.
            count = max(
                1,
                math.ceil(
                    forecast.peak_roots_per_s / flavor.roots_per_second
                ),
            )
        return {self.arch: count}

    def decide(
        self,
        snapshot: ClusterSnapshot,
        catalog: Mapping[str, ReplicaFlavor],
    ) -> Dict[str, int]:
        return dict(snapshot.count_by_arch()) or {
            self.arch: max(1, self.replicas)
        }


class ReactivePolicy(ScalingPolicy):
    """Demand-tracking scaler over one fixed flavor.

    Target count covers the observed windowed demand with ``headroom``;
    a queue-pressure kick adds one replica whenever the mean load score
    exceeds ``kick_score`` (demand is rising faster than the window
    average admits).
    """

    name = "least-loaded"

    def __init__(
        self,
        arch: str = "base.tc",
        headroom: float = 1.25,
        kick_score: float = 64.0,
        max_replicas: int = 64,
    ) -> None:
        if headroom < 1.0:
            raise ConfigurationError(
                f"headroom must be at least 1, got {headroom}"
            )
        if max_replicas < 1:
            raise ConfigurationError(
                f"max_replicas must be at least 1, got {max_replicas}"
            )
        self.arch = arch
        self.headroom = headroom
        self.kick_score = kick_score
        self.max_replicas = max_replicas

    def _target_count(
        self, roots_per_s: float, catalog: Mapping[str, ReplicaFlavor]
    ) -> int:
        flavor = catalog[self.arch]
        count = math.ceil(
            roots_per_s * self.headroom / flavor.roots_per_second
        )
        return min(self.max_replicas, max(1, count))

    def initial_target(
        self, forecast: DemandForecast, catalog: Mapping[str, ReplicaFlavor]
    ) -> Dict[str, int]:
        return {
            self.arch: self._target_count(forecast.mean_roots_per_s, catalog)
        }

    def decide(
        self,
        snapshot: ClusterSnapshot,
        catalog: Mapping[str, ReplicaFlavor],
    ) -> Dict[str, int]:
        count = self._target_count(snapshot.observed_roots_per_s, catalog)
        if snapshot.mean_load_score() > self.kick_score:
            count = min(self.max_replicas, count + 1)
        return {self.arch: count}


def plan_min_cost_fleet(
    required_roots_per_s: float,
    catalog: Mapping[str, ReplicaFlavor],
    max_replicas: int = 64,
) -> Dict[str, int]:
    """Cheapest replica mix covering ``required_roots_per_s``.

    Greedy over the best perf-per-dollar flavor, then the remainder is
    topped off by whichever single replica covers it cheapest — and the
    homogeneous alternative (one more primary) is kept if it wins. With
    Table 8's handful of flavors this is exact enough to beat any fixed
    single-flavor fleet, and it is trivially deterministic.
    """
    if not catalog:
        raise ConfigurationError("flavor catalog is empty")
    flavors = sorted(
        catalog.values(), key=lambda f: (f.price_per_capacity, f.arch)
    )
    primary = flavors[0]
    demand = max(required_roots_per_s, 0.0)
    base_count = int(demand // primary.roots_per_second)
    base_count = min(base_count, max_replicas)
    remainder = demand - base_count * primary.roots_per_second
    target = {primary.arch: base_count} if base_count else {}
    if remainder <= 0 and base_count >= 1:
        return target
    # Cheapest single replica covering the remainder, vs one more primary.
    topper: Optional[ReplicaFlavor] = primary
    topper_price = primary.price_per_hour
    for flavor in flavors:
        if flavor.roots_per_second >= remainder and (
            flavor.price_per_hour < topper_price
            or (
                flavor.price_per_hour == topper_price
                and flavor.arch < topper.arch
            )
        ):
            topper = flavor
            topper_price = flavor.price_per_hour
    if sum(target.values()) < max_replicas:
        target[topper.arch] = target.get(topper.arch, 0) + 1
    return target


class CostModelPolicy(ScalingPolicy):
    """Architecture-model-driven min-cost covering of forecast demand."""

    name = "cost"

    def __init__(
        self, headroom: float = 1.5, max_replicas: int = 64
    ) -> None:
        if headroom < 1.0:
            raise ConfigurationError(
                f"headroom must be at least 1, got {headroom}"
            )
        if max_replicas < 1:
            raise ConfigurationError(
                f"max_replicas must be at least 1, got {max_replicas}"
            )
        self.headroom = headroom
        self.max_replicas = max_replicas

    def initial_target(
        self, forecast: DemandForecast, catalog: Mapping[str, ReplicaFlavor]
    ) -> Dict[str, int]:
        return plan_min_cost_fleet(
            forecast.mean_roots_per_s * self.headroom,
            catalog,
            max_replicas=self.max_replicas,
        )

    def decide(
        self,
        snapshot: ClusterSnapshot,
        catalog: Mapping[str, ReplicaFlavor],
    ) -> Dict[str, int]:
        return plan_min_cost_fleet(
            snapshot.observed_roots_per_s * self.headroom,
            catalog,
            max_replicas=self.max_replicas,
        )


#: Scaling policy name -> zero-argument constructor.
SCALING_POLICIES = {
    "static": StaticPolicy,
    "least-loaded": ReactivePolicy,
    "cost": CostModelPolicy,
}


def get_policy(name: str) -> ScalingPolicy:
    try:
        factory = SCALING_POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scaling policy {name!r}; expected one of "
            f"{sorted(SCALING_POLICIES)}"
        ) from None
    return factory()


@dataclass
class ScalePlan:
    """Concrete actions the cluster should take this tick."""

    spawn: List[str] = field(default_factory=list)  # flavor archs
    drain: List[str] = field(default_factory=list)  # replica names


class Autoscaler:
    """Applies a policy with scale-up/scale-down asymmetry.

    Scale-up is immediate (capacity shortfalls cost SLO violations
    now); scale-down of any given surplus must persist for
    ``scale_down_cooldown_s`` before replicas are drained (flash crowds
    have trailing edges, and draining into a rebound is the classic
    reactive-scaler failure mode).
    """

    def __init__(
        self,
        policy: ScalingPolicy,
        catalog: Mapping[str, ReplicaFlavor],
        scale_down_cooldown_s: float = 0.5,
    ) -> None:
        if scale_down_cooldown_s < 0:
            raise ConfigurationError(
                f"scale_down_cooldown_s must be non-negative, got "
                f"{scale_down_cooldown_s}"
            )
        self.policy = policy
        self.catalog = dict(catalog)
        self.scale_down_cooldown_s = scale_down_cooldown_s
        self._surplus_since: Optional[float] = None
        self.decisions = 0
        self.scale_ups = 0
        self.scale_downs = 0

    def initial_fleet(self, forecast: DemandForecast) -> List[str]:
        """Flavor arch per replica to launch at cluster start."""
        target = self.policy.initial_target(forecast, self.catalog)
        fleet: List[str] = []
        for arch in sorted(target):
            fleet.extend([arch] * target[arch])
        return fleet

    def plan(self, snapshot: ClusterSnapshot) -> ScalePlan:
        """Diff the policy's target against the active fleet."""
        self.decisions += 1
        target = self.policy.decide(snapshot, self.catalog)
        current = snapshot.count_by_arch()
        plan = ScalePlan()

        for arch in sorted(target):
            deficit = target[arch] - current.get(arch, 0)
            if deficit > 0:
                plan.spawn.extend([arch] * deficit)

        surplus_by_arch = {
            arch: count - target.get(arch, 0)
            for arch, count in current.items()
            if count > target.get(arch, 0)
        }
        if not surplus_by_arch:
            self._surplus_since = None
        else:
            if self._surplus_since is None:
                self._surplus_since = snapshot.time_s
            held = snapshot.time_s - self._surplus_since
            if held >= self.scale_down_cooldown_s:
                plan.drain = self._pick_drains(snapshot, surplus_by_arch)
                self._surplus_since = None

        if plan.spawn:
            self.scale_ups += 1
        if plan.drain:
            self.scale_downs += 1
        return plan

    def _pick_drains(
        self,
        snapshot: ClusterSnapshot,
        surplus_by_arch: Mapping[str, int],
    ) -> List[str]:
        """Surplus members: costliest-per-capacity arch, newest first."""

        def arch_key(arch: str) -> Tuple[float, str]:
            flavor = self.catalog.get(arch)
            price = (
                float("inf") if flavor is None else -flavor.price_per_capacity
            )
            return (price, arch)

        drains: List[str] = []
        for arch in sorted(surplus_by_arch, key=arch_key):
            members = [name for name, a in snapshot.active if a == arch]
            drains.extend(reversed(members[-surplus_by_arch[arch]:]))
        return drains
