"""Failure detection over the replica pool.

The router notices a dead replica's *connection* failures instantly
(refused sockets redirect the request), but the work already admitted
inside the replica — queued groups, scheduled batches, in-flight
micro-batches — is invisible from outside. The health monitor is the
component that turns "stopped answering probes" into a detected
failure the cluster can act on: evacuate the stranded work onto
surviving replicas and hot-restart the member.

Detection is deliberately not instantaneous: a replica must miss
``fail_threshold`` consecutive probes spaced ``probe_interval_s``
apart, so the detection latency is bounded by
``fail_threshold * probe_interval_s`` — the window the end-to-end kill
test exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.cluster.replica import ClusterReplica


@dataclass(frozen=True)
class HealthConfig:
    """Probe cadence and failure-detection threshold."""

    probe_interval_s: float = 0.05
    fail_threshold: int = 2

    def __post_init__(self) -> None:
        if self.probe_interval_s <= 0:
            raise ConfigurationError(
                f"probe_interval_s must be positive, got "
                f"{self.probe_interval_s}"
            )
        if self.fail_threshold < 1:
            raise ConfigurationError(
                f"fail_threshold must be at least 1, got "
                f"{self.fail_threshold}"
            )

    @property
    def detection_latency_s(self) -> float:
        """Worst-case probe time between a kill and its detection."""
        return self.fail_threshold * self.probe_interval_s


class HealthMonitor:
    """Consecutive-miss failure detector over watched replicas."""

    def __init__(self, config: HealthConfig) -> None:
        self.config = config
        self._watched: Dict[str, ClusterReplica] = {}
        self._strikes: Dict[str, int] = {}
        self.probes = 0
        self.detected_failures = 0

    @property
    def watched(self) -> List[str]:
        return list(self._watched)

    def watch(self, replica: ClusterReplica) -> None:
        if replica.name in self._watched:
            raise ConfigurationError(
                f"replica {replica.name!r} already watched"
            )
        self._watched[replica.name] = replica
        self._strikes[replica.name] = 0

    def unwatch(self, name: str) -> None:
        if name not in self._watched:
            raise ConfigurationError(f"replica {name!r} not watched")
        del self._watched[name]
        del self._strikes[name]

    def probe_all(self) -> List[ClusterReplica]:
        """One probe round; returns replicas newly detected as failed.

        A detected replica is unwatched — it is the cluster's job to
        re-watch it after a successful restart.
        """
        newly_failed: List[ClusterReplica] = []
        for name in list(self._watched):
            replica = self._watched[name]
            self.probes += 1
            if replica.alive:
                self._strikes[name] = 0
                continue
            self._strikes[name] += 1
            if self._strikes[name] >= self.config.fail_threshold:
                self.detected_failures += 1
                newly_failed.append(replica)
                self.unwatch(name)
        return newly_failed
