"""The multi-replica serving cluster, end to end.

One deterministic event kernel (:class:`repro.axe.events.Simulator`)
drives everything: the trace's arrivals, every replica gateway's
coalescing timers and batch completions, health probes, autoscaler
ticks, drain checks, and injected replica kills. The cluster layer
sits where a real front door would:

* **admission** — per-tenant token buckets at the cluster edge
  (replica gateways attach with ``admission=False``; admitting per
  replica would multiply every tenant's contract by the replica
  count);
* **routing** — a pluggable :class:`~repro.cluster.router.Router` over
  the healthy members, with connection-level redirect when the router
  picks a dead-but-undetected replica and queue-pressure spill when the
  picked member is full;
* **scaling** — an :class:`~repro.cluster.autoscaler.Autoscaler`
  reconciling a policy's target fleet with spawn/drain actions;
* **recovery** — the health monitor detects kills, stranded work is
  :meth:`~repro.serving.gateway.ServingGateway.evacuate`\\ d onto
  survivors, and the replica hot-restarts with a fresh gateway.

The no-loss invariant the kill test pins down: every offered request
is either completed or explicitly shed with a retry-after hint —
``offered == completed + shed`` once the queue runs dry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.axe.events import Simulator
from repro.cluster.autoscaler import (
    Autoscaler,
    ClusterSnapshot,
    DemandForecast,
    ScalingPolicy,
    get_policy,
)
from repro.cluster.health import HealthConfig, HealthMonitor
from repro.cluster.replica import (
    BackendFactory,
    ClusterReplica,
    ReplicaFlavor,
    flavor_catalog,
)
from repro.cluster.report import ClusterMetrics, ClusterReport, build_report
from repro.cluster.router import Router, get_router
from repro.cluster.trace import TraceConfig, generate_trace
from repro.serving.gateway import GatewayConfig, GatewayLoad, MicroBatch
from repro.serving.scheduler import TokenBucket
from repro.serving.workload import Arrival

#: Architectures offered to the autoscaler as replica flavors.
DEFAULT_ARCHS = (
    "base.tc",
    "base.decp",
    "cost-opt.tc",
    "cost-opt.decp",
    "comm-opt.tc",
    "comm-opt.decp",
    "mem-opt.tc",
    "mem-opt.decp",
)


@dataclass(frozen=True)
class ClusterConfig:
    """Everything a cluster run is a pure function of (plus the trace)."""

    policy: str = "cost"
    router: str = "least-loaded"
    archs: Tuple[str, ...] = DEFAULT_ARCHS
    size: str = "medium"
    dataset: str = "ss"
    #: Maps fleet-scale architecture throughput onto the compressed
    #: trace's demand scale (same factor for every flavor).
    capacity_scale: float = 0.03
    gateway: GatewayConfig = field(default_factory=GatewayConfig)
    #: Cluster-edge admission: tokens at ``headroom x`` each tenant's
    #: mean rate. Generous by design — it is overload protection, not a
    #: rate plan; the autoscaler is supposed to absorb the diurnal swing.
    admission_headroom: float = 4.0
    admission_burst: float = 64.0
    #: Autoscaler control loop cadence (also the observation window).
    tick_interval_s: float = 0.25
    #: Cold-start delay before a spawned replica turns healthy.
    startup_delay_s: float = 0.15
    #: Delay between failure detection and the hot restart.
    restart_delay_s: float = 0.2
    health: HealthConfig = field(default_factory=HealthConfig)
    scale_down_cooldown_s: float = 0.5
    #: Inject a replica kill at each listed virtual time.
    kill_at_s: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.archs:
            raise ConfigurationError("at least one architecture is required")
        if self.capacity_scale <= 0:
            raise ConfigurationError(
                f"capacity_scale must be positive, got {self.capacity_scale}"
            )
        if self.admission_headroom <= 0:
            raise ConfigurationError(
                f"admission_headroom must be positive, got "
                f"{self.admission_headroom}"
            )
        if self.tick_interval_s <= 0:
            raise ConfigurationError(
                f"tick_interval_s must be positive, got "
                f"{self.tick_interval_s}"
            )
        if self.startup_delay_s < 0 or self.restart_delay_s < 0:
            raise ConfigurationError("delays must be non-negative")
        for at_s in self.kill_at_s:
            if at_s < 0:
                raise ConfigurationError(
                    f"kill_at_s must be non-negative, got {at_s}"
                )


class ClusterSim:
    """One policy's run over one trace on one shared event kernel."""

    def __init__(
        self,
        trace_config: TraceConfig,
        config: Optional[ClusterConfig] = None,
        policy: Optional[ScalingPolicy] = None,
        router: Optional[Router] = None,
        backend_factories: Optional[Dict[str, BackendFactory]] = None,
    ) -> None:
        self.trace_config = trace_config
        self.config = config or ClusterConfig()
        self.policy = policy or get_policy(self.config.policy)
        self.router = router or get_router(self.config.router)
        self.catalog: Dict[str, ReplicaFlavor] = flavor_catalog(
            self.config.archs,
            size=self.config.size,
            dataset=self.config.dataset,
            capacity_scale=self.config.capacity_scale,
        )
        #: Optional per-arch backend factory override (session-backed
        #: replicas); default is the flavor's modeled backend.
        self.backend_factories = backend_factories or {}
        self.autoscaler = Autoscaler(
            self.policy,
            self.catalog,
            scale_down_cooldown_s=self.config.scale_down_cooldown_s,
        )
        self.metrics = ClusterMetrics()
        self.sim = Simulator()
        self.replicas: Dict[str, ClusterReplica] = {}
        self._spawn_order: List[str] = []
        self._spawn_counter = 0
        self.health = HealthMonitor(self.config.health)
        self._tenant_slo: Dict[str, float] = {}
        self._admission: Dict[str, TokenBucket] = {}
        self._parked: List[Arrival] = []
        self._window_roots = 0
        self._active_since: Dict[str, float] = {}
        self._horizon_s = trace_config.duration_s
        self._ran = False

        for spec in trace_config.tenant_specs():
            self.metrics.register_tenant(spec.name, spec.slo_s)
            self._tenant_slo[spec.name] = spec.slo_s
            self._admission[spec.name] = TokenBucket(
                rate=spec.rate_rps * self.config.admission_headroom,
                burst=self.config.admission_burst,
            )

    # -------------------------------------------------------------- billing
    def _billing_start(self, replica: ClusterReplica) -> None:
        self._active_since[replica.name] = self.sim.now

    def _billing_stop(self, replica: ClusterReplica) -> None:
        since = self._active_since.pop(replica.name, None)
        if since is not None:
            self.metrics.on_replica_active_s(
                replica.flavor.arch, self.sim.now - since
            )

    def _billing_finalize(self) -> None:
        for name in list(self._active_since):
            self._billing_stop(self.replicas[name])

    # ------------------------------------------------------------ lifecycle
    def _spawn(self, arch: str, warm: bool = False) -> ClusterReplica:
        flavor = self.catalog[arch]
        self._spawn_counter += 1
        name = f"r{self._spawn_counter}-{arch}"
        replica = ClusterReplica(
            name,
            flavor,
            self.trace_config.tenant_specs(),
            gateway_config=self.config.gateway,
            backend_factory=self.backend_factories.get(arch),
        )
        self.replicas[name] = replica
        self._spawn_order.append(name)
        self.metrics.replica_launches += 1
        self._attach(replica)
        if warm:
            self._turn_healthy(replica)
        else:
            self.sim.after(
                self.config.startup_delay_s,
                lambda r=replica: self._turn_healthy(r),
            )
        return replica

    def _attach(self, replica: ClusterReplica) -> None:
        gateway = replica.attach(self.sim)
        gateway.on_batch_complete = self._on_batch_complete
        self._billing_start(replica)

    def _turn_healthy(self, replica: ClusterReplica) -> None:
        if not replica.alive:
            return  # killed while starting; detection path owns it
        replica.mark_healthy()
        self.router.add_replica(replica.name)
        self.health.watch(replica)
        self._flush_parked()

    def _begin_drain(self, name: str) -> None:
        replica = self.replicas[name]
        if name in self.router.members:
            self.router.remove_replica(name)
        if name in self.health.watched:
            self.health.unwatch(name)
        replica.begin_drain()
        self.metrics.replica_drains += 1
        self._check_drained(replica)

    def _check_drained(self, replica: ClusterReplica) -> None:
        if not replica.alive:
            return  # killed mid-drain; detection path owns it
        if replica.drained:
            replica.retire()
            self._billing_stop(replica)
            return
        self.sim.after(
            self.config.gateway.max_wait_s,
            lambda r=replica: self._check_drained(r),
        )

    # -------------------------------------------------------------- routing
    def _routed_loads(self) -> Dict[str, GatewayLoad]:
        return {
            name: self.replicas[name].load() for name in self.router.members
        }

    def _accepting_members(self) -> List[str]:
        """Routed members that are alive (dead ones await detection)."""
        return [
            name
            for name in self.router.members
            if self.replicas[name].alive
        ]

    def _least_loaded(
        self, members: List[str], loads: Dict[str, GatewayLoad]
    ) -> str:
        best = members[0]
        best_score = loads[best].score
        for name in members[1:]:
            if loads[name].score < best_score:
                best, best_score = name, loads[name].score
        return best

    def _on_arrival(self, arrival: Arrival) -> None:
        self.metrics.on_offered(arrival.tenant)
        self._window_roots += int(arrival.roots.size)
        now = self.sim.now
        bucket = self._admission[arrival.tenant]
        if not bucket.try_take(now):
            self.metrics.on_shed(
                arrival.tenant, "rate_limited"
            )
            return
        members = self._accepting_members()
        if not members:
            self.metrics.on_shed(arrival.tenant, "no_capacity")
            return
        loads = self._routed_loads()
        chosen = self.router.route(arrival.tenant, loads)
        if chosen not in members:
            # Connection refused by a dead-but-undetected member: the
            # client redirects instantly; admitted work on that replica
            # still waits for the health monitor.
            self.metrics.redirected_requests += 1
            chosen = self._least_loaded(members, loads)
        if loads[chosen].queue_depth >= self.config.gateway.queue_capacity:
            spill = self._least_loaded(members, loads)
            if (
                loads[spill].queue_depth
                >= self.config.gateway.queue_capacity
            ):
                gateway = self.replicas[chosen].gateway
                assert gateway is not None
                self.metrics.on_shed(arrival.tenant, "queue_full")
                return
            chosen = spill
        gateway = self.replicas[chosen].gateway
        assert gateway is not None
        gateway.submit_admitted(arrival)

    def _on_batch_complete(self, batch: MicroBatch, payload: object) -> None:
        now = self.sim.now
        for request in batch.requests:
            self.metrics.on_completed(
                request.tenant, now - request.time_s, request.slo_s
            )

    # ------------------------------------------------------------- recovery
    def _inject_kill(self) -> None:
        members = self._accepting_members()
        if not members:
            return
        loads = self._routed_loads()
        # Kill the most-loaded member: the worst case for evacuation.
        victim = members[0]
        for name in members[1:]:
            if loads[name].score > loads[victim].score:
                victim = name
        replica = self.replicas[victim]
        replica.fail()
        self.metrics.replica_failures += 1
        self._billing_stop(replica)

    def _probe(self) -> None:
        for replica in self.health.probe_all():
            if replica.name in self.router.members:
                self.router.remove_replica(replica.name)
            orphans = replica.evacuate()
            self.metrics.evacuated_requests += len(orphans)
            self._resubmit(orphans)
            self.sim.after(
                self.config.restart_delay_s,
                lambda r=replica: self._restart(r),
            )
        watching_dead = any(
            not self.replicas[name].alive for name in self.health.watched
        )
        if self.sim.now < self._horizon_s or watching_dead:
            self.sim.after(self.config.health.probe_interval_s, self._probe)

    def _restart(self, replica: ClusterReplica) -> None:
        self.metrics.replica_restarts += 1
        self._attach(replica)
        self.sim.after(
            self.config.startup_delay_s,
            lambda r=replica: self._turn_healthy(r),
        )

    def _resubmit(self, orphans: List[Arrival]) -> None:
        """Re-route evacuated work; park it if no member can take it."""
        for arrival in orphans:
            members = self._accepting_members()
            if not members:
                self._parked.append(arrival)
                continue
            loads = self._routed_loads()
            chosen = self._least_loaded(members, loads)
            gateway = self.replicas[chosen].gateway
            assert gateway is not None
            gateway.submit_admitted(arrival)

    def _flush_parked(self) -> None:
        if not self._parked:
            return
        parked, self._parked = self._parked, []
        self._resubmit(parked)

    # -------------------------------------------------------------- scaling
    def _active_fleet(self) -> List[Tuple[str, str]]:
        return [
            (name, self.replicas[name].flavor.arch)
            for name in self._spawn_order
            if self.replicas[name].active and self.replicas[name].alive
        ]

    def _tick(self) -> None:
        now = self.sim.now
        observed = self._window_roots / self.config.tick_interval_s
        self._window_roots = 0
        active = self._active_fleet()
        snapshot = ClusterSnapshot(
            time_s=now,
            observed_roots_per_s=observed,
            active=tuple(active),
            loads=self._routed_loads(),
        )
        self.metrics.fleet_samples.append((now, len(active)))
        plan = self.autoscaler.plan(snapshot)
        for arch in plan.spawn:
            self._spawn(arch)
        for name in plan.drain:
            self._begin_drain(name)
        if now + self.config.tick_interval_s <= self._horizon_s:
            self.sim.after(self.config.tick_interval_s, self._tick)

    # ------------------------------------------------------------------ run
    def run(self) -> ClusterReport:
        if self._ran:
            raise SimulationError("ClusterSim.run() is single-shot")
        self._ran = True
        arrivals = generate_trace(self.trace_config)
        forecast = DemandForecast(
            mean_roots_per_s=sum(
                self.trace_config.total_rps * t.share * t.roots_per_request
                for t in self.trace_config.tenants
            ),
            peak_roots_per_s=self.trace_config.peak_roots_per_second(),
        )
        for arch in self.autoscaler.initial_fleet(forecast):
            self._spawn(arch, warm=True)
        self.metrics.fleet_samples.append((0.0, len(self._active_fleet())))
        for arrival in arrivals:
            self.sim.at(
                arrival.time_s, lambda a=arrival: self._on_arrival(a)
            )
        for kill_s in self.config.kill_at_s:
            self.sim.at(kill_s, self._inject_kill)
        self.sim.after(self.config.health.probe_interval_s, self._probe)
        self.sim.after(self.config.tick_interval_s, self._tick)
        self.sim.run()
        if self._parked:
            raise SimulationError(
                f"{len(self._parked)} evacuated requests never re-routed"
            )
        self._billing_finalize()
        duration_s = max(self.sim.now, self.trace_config.duration_s)
        return build_report(
            self.metrics,
            policy=self.policy.name,
            router=self.router.policy,
            duration_s=duration_s,
            catalog=self.catalog,
        )


def run_cluster(
    trace_config: TraceConfig,
    config: Optional[ClusterConfig] = None,
) -> ClusterReport:
    """Convenience one-shot: build a cluster and run the trace."""
    return ClusterSim(trace_config, config=config).run()
