"""FaaS instance configurations (Table 12) and the GPU provisioning rule.

Each FaaS architecture is evaluated on three instance sizes. NIC and
MoF figures are per-instance network quotas; the MoF quota applies only
to architectures that carry the dedicated fabric (comm-opt, mem-opt).

The GPU rule is the paper's Limitation-2 simplification: the end
application requires one V100 for every 12 GB/s of sampling output
throughput (75% of a V100's PCIe bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.cost.regression import CostModel
from repro.units import GB, gbps_to_bytes_per_s


@dataclass(frozen=True)
class FaasInstanceConfig:
    """One Table 12 row."""

    name: str
    vcpus: int
    mem_bytes: int
    fpga_chips: int
    nic_bandwidth: float  # bytes/s
    mof_bandwidth: float  # bytes/s, used only when the arch carries MoF

    def __post_init__(self) -> None:
        if self.vcpus <= 0 or self.fpga_chips <= 0:
            raise ConfigurationError("vcpus and fpga_chips must be positive")
        if self.mem_bytes <= 0:
            raise ConfigurationError("mem_bytes must be positive")
        if self.nic_bandwidth <= 0 or self.mof_bandwidth <= 0:
            raise ConfigurationError("bandwidth quotas must be positive")


#: Table 12: small / medium / large FaaS instances.
FAAS_CONFIGS: Dict[str, FaasInstanceConfig] = {
    "small": FaasInstanceConfig(
        "small",
        vcpus=2,
        mem_bytes=8 * GB,
        fpga_chips=1,
        nic_bandwidth=gbps_to_bytes_per_s(10),
        mof_bandwidth=gbps_to_bytes_per_s(100),
    ),
    "medium": FaasInstanceConfig(
        "medium",
        vcpus=2,
        mem_bytes=384 * GB,
        fpga_chips=1,
        nic_bandwidth=gbps_to_bytes_per_s(20),
        mof_bandwidth=gbps_to_bytes_per_s(200),
    ),
    "large": FaasInstanceConfig(
        "large",
        vcpus=2,
        mem_bytes=512 * GB,
        fpga_chips=2,
        nic_bandwidth=gbps_to_bytes_per_s(50),
        mof_bandwidth=gbps_to_bytes_per_s(800),
    ),
}

#: One V100 per 12 GB/s of sampling output throughput.
GPU_RULE_GBPS_PER_V100 = 12.0

#: A V100 GPU instance's resource shape (for pricing the NN side).
GPU_INSTANCE = {"vcpus": 12, "mem_gb": 92.0, "fpgas": 0, "gpus": 1}


def gpu_cost_for_throughput(
    cost_model: CostModel,
    output_bytes_per_second: float,
    gpus_per_12gbps: float = 1.0,
) -> float:
    """$/hour of GPU capacity the sampling throughput requires.

    GPU capacity is pooled across the fleet, so fractional GPUs are
    priced proportionally. ``gpus_per_12gbps`` scales the rule for the
    Limitation-2 sensitivity check (deep NN models needing 10x GPUs).
    """
    if output_bytes_per_second < 0:
        raise ConfigurationError("throughput must be non-negative")
    if gpus_per_12gbps <= 0:
        raise ConfigurationError(
            f"gpus_per_12gbps must be positive, got {gpus_per_12gbps}"
        )
    gpus = output_bytes_per_second / (GPU_RULE_GBPS_PER_V100 * GB) * gpus_per_12gbps
    return gpus * cost_model.price(
        GPU_INSTANCE["vcpus"],
        GPU_INSTANCE["mem_gb"],
        GPU_INSTANCE["fpgas"],
        GPU_INSTANCE["gpus"],
    )
