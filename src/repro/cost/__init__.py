"""Cloud instance cost model: synthetic price table + linear regression."""

from repro.cost.pricing import PRICE_CATALOG, PricedInstance, catalog_price
from repro.cost.regression import CostModel, fit_cost_model, validate_cost_model
from repro.cost.instances import (
    FAAS_CONFIGS,
    FaasInstanceConfig,
    GPU_RULE_GBPS_PER_V100,
    gpu_cost_for_throughput,
)

__all__ = [
    "PRICE_CATALOG",
    "PricedInstance",
    "catalog_price",
    "CostModel",
    "fit_cost_model",
    "validate_cost_model",
    "FAAS_CONFIGS",
    "FaasInstanceConfig",
    "GPU_RULE_GBPS_PER_V100",
    "gpu_cost_for_throughput",
]
