"""Linear instance-cost regression (Figure 16).

Fits ``price ~ a*vCPU + b*mem + c*FPGA + d*GPU + e`` by least squares
over the price catalog, then validates per-instance error. The large
memory instance (``ecs-re-x``) is under-estimated, reproducing the
paper's noted outlier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.cost.pricing import PRICE_CATALOG, PricedInstance


@dataclass(frozen=True)
class CostModel:
    """Fitted linear instance-cost model."""

    per_vcpu: float
    per_mem_gb: float
    per_fpga: float
    per_gpu: float
    base: float

    def price(
        self, vcpus: float, mem_gb: float, fpgas: float = 0, gpus: float = 0
    ) -> float:
        """Predicted $/hour for an instance configuration."""
        if min(vcpus, mem_gb, fpgas, gpus) < 0:
            raise ConfigurationError("instance resources must be non-negative")
        return (
            self.base
            + self.per_vcpu * vcpus
            + self.per_mem_gb * mem_gb
            + self.per_fpga * fpgas
            + self.per_gpu * gpus
        )


def fit_cost_model(
    catalog: Optional[Iterable[PricedInstance]] = None,
) -> CostModel:
    """Least-squares fit over the catalog."""
    rows = list(catalog) if catalog is not None else list(PRICE_CATALOG.values())
    if len(rows) < 5:
        raise ConfigurationError(
            f"need at least 5 catalog rows to fit 5 coefficients, got {len(rows)}"
        )
    features = np.array(
        [list(row.features()) + [1.0] for row in rows], dtype=np.float64
    )
    prices = np.array([row.price_per_hour for row in rows], dtype=np.float64)
    # Minimize *relative* error (Figure 16 reports percentage error), so
    # the one expensive large-memory instance cannot dominate the fit.
    weights = 1.0 / prices
    coef, _residuals, _rank, _sv = np.linalg.lstsq(
        features * weights[:, None], prices * weights, rcond=None
    )
    return CostModel(
        per_vcpu=float(coef[0]),
        per_mem_gb=float(coef[1]),
        per_fpga=float(coef[2]),
        per_gpu=float(coef[3]),
        base=float(coef[4]),
    )


@dataclass(frozen=True)
class CostValidationRow:
    """One Figure 16 point: listed vs predicted price."""

    product_id: str
    listed: float
    predicted: float

    @property
    def error(self) -> float:
        return abs(self.predicted - self.listed) / self.listed


def validate_cost_model(
    model: Optional[CostModel] = None,
    catalog: Optional[Dict[str, PricedInstance]] = None,
) -> List[CostValidationRow]:
    """Figure 16: per-instance prediction error of the linear model."""
    catalog = catalog or PRICE_CATALOG
    model = model or fit_cost_model(catalog.values())
    rows = []
    for product_id, instance in catalog.items():
        predicted = model.price(*instance.features())
        rows.append(
            CostValidationRow(product_id, instance.price_per_hour, round(predicted, 4))
        )
    return rows
