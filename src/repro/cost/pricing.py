"""Synthetic cloud price catalog (the Figure 16 ground truth).

The paper collects instance prices from the Alibaba Cloud price
calculator; that data source is not available offline, so we synthesize
a catalog with the same structure: prices are near-linear in vCPU
count, DRAM, FPGA and GPU cards, with small per-family pricing noise
and one deliberately super-linear large-memory instance (the paper's
``ecs-re`` 906GB outlier, whose price its linear model under-estimates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError

#: True per-resource rates behind the synthetic catalog ($/hour).
TRUE_RATES = {
    "per_vcpu": 0.045,
    "per_mem_gb": 0.0062,
    "per_fpga": 2.20,
    "per_gpu": 2.95,
    "base": 0.02,
}


@dataclass(frozen=True)
class PricedInstance:
    """One catalog row: an instance type with its listed price."""

    product_id: str
    vcpus: int
    mem_gb: float
    fpgas: int
    gpus: int
    price_per_hour: float

    def features(self) -> Tuple[float, float, float, float]:
        return (float(self.vcpus), self.mem_gb, float(self.fpgas), float(self.gpus))


def _linear_price(vcpus: int, mem_gb: float, fpgas: int, gpus: int) -> float:
    return (
        TRUE_RATES["base"]
        + TRUE_RATES["per_vcpu"] * vcpus
        + TRUE_RATES["per_mem_gb"] * mem_gb
        + TRUE_RATES["per_fpga"] * fpgas
        + TRUE_RATES["per_gpu"] * gpus
    )


def _row(
    product_id: str,
    vcpus: int,
    mem_gb: float,
    fpgas: int = 0,
    gpus: int = 0,
    premium: float = 1.0,
    jitter: float = 0.0,
) -> PricedInstance:
    price = _linear_price(vcpus, mem_gb, fpgas, gpus) * premium * (1.0 + jitter)
    return PricedInstance(product_id, vcpus, mem_gb, fpgas, gpus, round(price, 4))


#: The instance types Figure 16 validates against. ``ecs-re-x`` carries
#: a 35% large-memory premium the linear model cannot capture; the
#: other memory-heavy rows (r7 family) price linearly and pin down the
#: per-GB coefficient so the premium shows up as the outlier.
PRICE_CATALOG: Dict[str, PricedInstance] = {
    row.product_id: row
    for row in (
        _row("ecs-g7-s", 2, 8, jitter=0.015),
        _row("ecs-g7-m", 8, 32, jitter=-0.02),
        _row("ecs-g7-l", 32, 128, jitter=0.01),
        _row("ecs-r7-m", 8, 64, jitter=0.025),
        _row("ecs-r7-l", 16, 128, jitter=-0.01),
        _row("ecs-r7-xl", 32, 256, jitter=0.005),
        _row("ecs-re-x", 32, 906, premium=1.35),
        _row("faas-f3-s", 4, 16, fpgas=1, jitter=-0.015),
        _row("faas-f3-l", 16, 64, fpgas=2, jitter=0.02),
        _row("gpu-v100", 12, 92, gpus=1, jitter=-0.01),
    )
}


def catalog_price(product_id: str) -> float:
    """Listed $/hour of a catalog instance."""
    try:
        return PRICE_CATALOG[product_id].price_per_hour
    except KeyError:
        raise ConfigurationError(
            f"unknown product {product_id!r}; expected one of "
            f"{sorted(PRICE_CATALOG)}"
        ) from None
