"""Queue-based RISC-V coprocessor communication hub (QRCH, Table 7).

QRCH sits between the RISC-V pipeline's execution stage and the
customized accelerator modules (Figure 8): custom instructions push
command words into per-accelerator queues and pull response words back.
Interaction costs ~10 cycles (fill the queue + the accelerator reading
it), versus ~100 for a bus-attached MMIO round trip and ~1 for a fully
pipelined tightly coupled instruction — the Table 7 trade-off.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.errors import CapacityError, ConfigurationError


class QrchQueue:
    """One command/response queue pair toward an accelerator.

    The accelerator side is a callback: when the CPU pushes a command,
    the handler runs after ``accelerator_latency`` cycles and its return
    value (if any) is placed in the response queue.
    """

    def __init__(
        self,
        name: str,
        handler: Callable[[int, int], Optional[int]],
        depth: int = 16,
        push_cycles: int = 4,
        pull_cycles: int = 4,
        accelerator_latency: int = 2,
    ) -> None:
        if depth <= 0:
            raise ConfigurationError(f"depth must be positive, got {depth}")
        if min(push_cycles, pull_cycles, accelerator_latency) < 0:
            raise ConfigurationError("cycle counts must be non-negative")
        self.name = name
        self.handler = handler
        self.depth = depth
        self.push_cycles = push_cycles
        self.pull_cycles = pull_cycles
        self.accelerator_latency = accelerator_latency
        self._commands: Deque[Tuple[int, int]] = deque()
        self._responses: Deque[int] = deque()
        self.pushes = 0
        self.pulls = 0

    def push(self, a: int, b: int) -> int:
        """CPU side: enqueue a command word pair; returns cycle cost."""
        if len(self._commands) >= self.depth:
            raise CapacityError(f"QRCH queue {self.name!r} is full")
        self._commands.append((a, b))
        self.pushes += 1
        return self.push_cycles

    def service(self) -> int:
        """Accelerator side: drain commands through the handler.

        Returns cycles spent (latency per command serviced).
        """
        cycles = 0
        while self._commands:
            a, b = self._commands.popleft()
            result = self.handler(a, b)
            cycles += self.accelerator_latency
            if result is not None:
                self._responses.append(int(result) & 0xFFFFFFFF)
        return cycles

    def pull(self) -> Tuple[Optional[int], int]:
        """CPU side: dequeue a response; returns (value_or_None, cycles)."""
        self.pulls += 1
        if not self._responses:
            return None, self.pull_cycles
        return self._responses.popleft(), self.pull_cycles

    @property
    def response_available(self) -> bool:
        return bool(self._responses)


class Qrch:
    """The hub: routes funct7-selected queues and tracks total cycles."""

    MAX_QUEUES = 128  # funct7 is 7 bits

    def __init__(self) -> None:
        self._queues: Dict[int, QrchQueue] = {}
        self.interaction_cycles = 0

    def attach(self, index: int, queue: QrchQueue) -> None:
        """Bind a queue at funct7 slot ``index``."""
        if not 0 <= index < self.MAX_QUEUES:
            raise ConfigurationError(
                f"queue index {index} outside [0, {self.MAX_QUEUES})"
            )
        if index in self._queues:
            raise ConfigurationError(f"queue index {index} already attached")
        self._queues[index] = queue

    def queue(self, index: int) -> QrchQueue:
        queue = self._queues.get(index)
        if queue is None:
            raise ConfigurationError(f"no QRCH queue attached at index {index}")
        return queue

    def push(self, index: int, a: int, b: int) -> int:
        """QPUSH path: returns cycles charged to the CPU."""
        cycles = self.queue(index).push(a, b)
        # The accelerator consumes asynchronously; model it as servicing
        # immediately after the push (its cycles overlap CPU execution).
        self.queue(index).service()
        self.interaction_cycles += cycles
        return cycles

    def pull(self, index: int) -> Tuple[Optional[int], int]:
        """QPULL path: returns (value_or_None, cycles charged)."""
        value, cycles = self.queue(index).pull()
        self.interaction_cycles += cycles
        return value, cycles


#: Table 7 reference interaction costs (cycles per command round trip).
INTERACTION_COSTS = {
    "mmio": 100,
    "isa_ext": 1,
    "qrch": 10,
}


@dataclass(frozen=True)
class DesignPoint:
    """One row of the Table 7 qualitative comparison."""

    name: str
    interaction_cycles: int
    programmability: str
    toolchain_effort: str
    extensibility: str


TABLE7 = (
    DesignPoint("mmio", 100, "bad (coarse-grain)", "hard", "bad"),
    DesignPoint("isa_ext", 1, "good (fine-grain)", "fair", "fair"),
    DesignPoint("qrch", 10, "fair (small OP level)", "easy", "good"),
)
