"""Memory-mapped IO bus: the loosely coupled control alternative.

MMIO attaches accelerators behind the SoC bus (AXI): every control
interaction is an uncached load/store crossing the interconnect, which
costs ~100 cycles round trip (Table 7). Used as the baseline the QRCH
comparison is measured against.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError


class MmioDevice:
    """One bus-attached device with word-addressed registers."""

    def __init__(
        self,
        name: str,
        read_handler: Optional[Callable[[int], int]] = None,
        write_handler: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.name = name
        self._registers: Dict[int, int] = {}
        self._read_handler = read_handler
        self._write_handler = write_handler

    def read(self, offset: int) -> int:
        if self._read_handler is not None:
            return self._read_handler(offset) & 0xFFFFFFFF
        return self._registers.get(offset, 0)

    def write(self, offset: int, value: int) -> None:
        if self._write_handler is not None:
            self._write_handler(offset, value & 0xFFFFFFFF)
        else:
            self._registers[offset] = value & 0xFFFFFFFF


class MmioBus:
    """Word-addressed system bus with fixed round-trip cost."""

    def __init__(self, access_cycles: int = 100) -> None:
        if access_cycles <= 0:
            raise ConfigurationError(
                f"access_cycles must be positive, got {access_cycles}"
            )
        self.access_cycles = access_cycles
        self._ranges: Dict[Tuple[int, int], MmioDevice] = {}
        self.interaction_cycles = 0

    def attach(self, base: int, size: int, device: MmioDevice) -> None:
        """Map ``device`` at ``[base, base + size)``."""
        if base < 0 or size <= 0:
            raise ConfigurationError("base must be >= 0 and size positive")
        for (lo, hi) in self._ranges:
            if base < hi and lo < base + size:
                raise ConfigurationError(
                    f"range [{base:#x}, {base + size:#x}) overlaps "
                    f"[{lo:#x}, {hi:#x})"
                )
        self._ranges[(base, base + size)] = device

    def _find(self, addr: int) -> Tuple[MmioDevice, int]:
        for (lo, hi), device in self._ranges.items():
            if lo <= addr < hi:
                return device, addr - lo
        raise SimulationError(f"MMIO access to unmapped address {addr:#x}")

    def read(self, addr: int) -> Tuple[int, int]:
        """Read a word; returns (value, cycles)."""
        device, offset = self._find(addr)
        self.interaction_cycles += self.access_cycles
        return device.read(offset), self.access_cycles

    def write(self, addr: int, value: int) -> int:
        """Write a word; returns cycles."""
        device, offset = self._find(addr)
        device.write(offset, value)
        self.interaction_cycles += self.access_cycles
        return self.access_cycles
