"""A small two-pass assembler for control programs.

Supports the RV32I subset the CPU model executes plus the QRCH custom
instructions. Syntax is conventional:

    loop:
        addi x1, x1, -1
        qpush x0, x2, x3, 5     # queue index 5
        qpull x4, 5
        bne  x1, x0, loop
        ecall

Registers are ``x0``-``x31``; immediates are decimal or 0x-hex; labels
work for branches and jumps.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.errors import DecodeError
from repro.riscv import isa
from repro.riscv.isa import Instruction

_R_TYPE = {
    "add": (0b000, 0b0000000),
    "sub": (0b000, 0b0100000),
    "sll": (0b001, 0b0000000),
    "slt": (0b010, 0b0000000),
    "sltu": (0b011, 0b0000000),
    "xor": (0b100, 0b0000000),
    "srl": (0b101, 0b0000000),
    "sra": (0b101, 0b0100000),
    "or": (0b110, 0b0000000),
    "and": (0b111, 0b0000000),
}

_I_TYPE = {
    "addi": 0b000,
    "slti": 0b010,
    "sltiu": 0b011,
    "xori": 0b100,
    "ori": 0b110,
    "andi": 0b111,
}

_SHIFT_IMM = {"slli": (0b001, 0), "srli": (0b101, 0), "srai": (0b101, 0b0100000)}

_BRANCHES = {
    "beq": 0b000,
    "bne": 0b001,
    "blt": 0b100,
    "bge": 0b101,
    "bltu": 0b110,
    "bgeu": 0b111,
}


def _reg(token: str) -> int:
    match = re.fullmatch(r"x(\d+)", token.strip())
    if not match or not 0 <= int(match.group(1)) < 32:
        raise DecodeError(f"bad register {token!r}")
    return int(match.group(1))


def _imm(token: str) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise DecodeError(f"bad immediate {token!r}") from None


def _parse_mem_operand(token: str) -> Tuple[int, int]:
    """Parse ``imm(xN)`` into (imm, reg)."""
    match = re.fullmatch(r"(-?\w+)\((x\d+)\)", token.strip())
    if not match:
        raise DecodeError(f"bad memory operand {token!r}")
    return _imm(match.group(1)), _reg(match.group(2))


def assemble(source: str, base: int = 0) -> List[int]:
    """Assemble ``source`` into instruction words."""
    lines = []
    for raw in source.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            lines.append(line)

    # Pass 1: label addresses.
    labels: Dict[str, int] = {}
    addr = base
    body: List[str] = []
    for line in lines:
        while ":" in line:
            label, _, rest = line.partition(":")
            labels[label.strip()] = addr
            line = rest.strip()
        if line:
            body.append(line)
            addr += 4

    # Pass 2: encode.
    words: List[int] = []
    addr = base
    for line in body:
        words.append(_encode_line(line, addr, labels))
        addr += 4
    return words


def _target(token: str, addr: int, labels: Dict[str, int]) -> int:
    token = token.strip()
    if token in labels:
        return labels[token] - addr
    return _imm(token)


def _encode_line(line: str, addr: int, labels: Dict[str, int]) -> int:
    parts = line.replace(",", " ").split()
    mnemonic, operands = parts[0].lower(), parts[1:]

    if mnemonic in _R_TYPE:
        funct3, funct7 = _R_TYPE[mnemonic]
        rd, rs1, rs2 = (_reg(t) for t in operands)
        return isa.encode(
            Instruction(isa.OPCODE_OP, rd=rd, rs1=rs1, rs2=rs2, funct3=funct3, funct7=funct7)
        )
    if mnemonic in _I_TYPE:
        rd, rs1 = _reg(operands[0]), _reg(operands[1])
        return isa.encode(
            Instruction(
                isa.OPCODE_OP_IMM, rd=rd, rs1=rs1, funct3=_I_TYPE[mnemonic],
                imm=_imm(operands[2]),
            )
        )
    if mnemonic in _SHIFT_IMM:
        funct3, funct7 = _SHIFT_IMM[mnemonic]
        rd, rs1 = _reg(operands[0]), _reg(operands[1])
        shamt = _imm(operands[2]) & 0x1F
        return isa.encode(
            Instruction(
                isa.OPCODE_OP_IMM, rd=rd, rs1=rs1, funct3=funct3,
                imm=(funct7 << 5) | shamt,
            )
        )
    if mnemonic in _BRANCHES:
        rs1, rs2 = _reg(operands[0]), _reg(operands[1])
        offset = _target(operands[2], addr, labels)
        return isa.encode(
            Instruction(
                isa.OPCODE_BRANCH, rs1=rs1, rs2=rs2,
                funct3=_BRANCHES[mnemonic], imm=offset,
            )
        )
    if mnemonic == "lui":
        return isa.encode(
            Instruction(isa.OPCODE_LUI, rd=_reg(operands[0]), imm=_imm(operands[1]) << 12)
        )
    if mnemonic == "jal":
        rd = _reg(operands[0]) if len(operands) == 2 else 1
        target = operands[-1]
        return isa.encode(
            Instruction(isa.OPCODE_JAL, rd=rd, imm=_target(target, addr, labels))
        )
    if mnemonic == "jalr":
        rd, rs1 = _reg(operands[0]), _reg(operands[1])
        imm = _imm(operands[2]) if len(operands) > 2 else 0
        return isa.encode(Instruction(isa.OPCODE_JALR, rd=rd, rs1=rs1, imm=imm))
    if mnemonic == "lw":
        rd = _reg(operands[0])
        imm, rs1 = _parse_mem_operand(operands[1])
        return isa.encode(
            Instruction(isa.OPCODE_LOAD, rd=rd, rs1=rs1, funct3=0b010, imm=imm)
        )
    if mnemonic == "sw":
        rs2 = _reg(operands[0])
        imm, rs1 = _parse_mem_operand(operands[1])
        return isa.encode(
            Instruction(isa.OPCODE_STORE, rs1=rs1, rs2=rs2, funct3=0b010, imm=imm)
        )
    if mnemonic == "qpush":
        rd, rs1, rs2 = (_reg(t) for t in operands[:3])
        queue = _imm(operands[3])
        return isa.encode(
            Instruction(
                isa.OPCODE_CUSTOM0, rd=rd, rs1=rs1, rs2=rs2,
                funct3=isa.FUNCT3_QPUSH, funct7=queue,
            )
        )
    if mnemonic == "qpull":
        rd = _reg(operands[0])
        queue = _imm(operands[1])
        return isa.encode(
            Instruction(
                isa.OPCODE_CUSTOM0, rd=rd, funct3=isa.FUNCT3_QPULL, funct7=queue
            )
        )
    if mnemonic in ("ecall", "ebreak"):
        return isa.encode(Instruction(isa.OPCODE_SYSTEM, imm=0 if mnemonic == "ecall" else 1))
    if mnemonic == "nop":
        return isa.encode(Instruction(isa.OPCODE_OP_IMM, rd=0, rs1=0, funct3=0, imm=0))
    raise DecodeError(f"unknown mnemonic {mnemonic!r} in {line!r}")
