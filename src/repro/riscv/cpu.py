"""RV32I interpreter with QRCH and MMIO attachment points.

Models the XuanTie E906-class control core of the PoC: in-order,
one instruction per cycle plus memory/bus penalties. The custom-0
opcode dispatches to the QRCH hub; loads/stores above ``mmio_base``
dispatch to the MMIO bus. ``ecall`` halts (end of control program).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.units import KB
from repro.riscv import isa
from repro.riscv.mmio import MmioBus
from repro.riscv.qrch import Qrch


class RiscvCpu:
    """Single-hart RV32I interpreter."""

    def __init__(
        self,
        memory_bytes: int = 64 * KB,
        qrch: Optional[Qrch] = None,
        mmio: Optional[MmioBus] = None,
        mmio_base: int = 0x4000_0000,
        memory_access_cycles: int = 1,
    ) -> None:
        if memory_bytes <= 0 or memory_bytes % 4:
            raise ConfigurationError(
                f"memory_bytes must be a positive multiple of 4, got {memory_bytes}"
            )
        self.memory = bytearray(memory_bytes)
        self.registers = np.zeros(32, dtype=np.uint32)
        self.pc = 0
        self.qrch = qrch
        self.mmio = mmio
        self.mmio_base = mmio_base
        self.memory_access_cycles = memory_access_cycles
        self.cycles = 0
        self.instructions_retired = 0
        self.halted = False

    # ------------------------------------------------------------- helpers
    def load_program(self, words: List[int], base: int = 0) -> None:
        """Write instruction words into memory and reset the PC."""
        for index, word in enumerate(words):
            self._store_word(base + 4 * index, word, charge=False)
        self.pc = base
        self.halted = False

    def _reg(self, index: int) -> int:
        return int(self.registers[index])

    def _set_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.registers[index] = np.uint32(value & 0xFFFFFFFF)

    def _load_word(self, addr: int, charge: bool = True) -> int:
        if self.mmio is not None and addr >= self.mmio_base:
            value, cycles = self.mmio.read(addr)
            self.cycles += cycles
            return value
        if not 0 <= addr <= len(self.memory) - 4:
            raise SimulationError(f"load outside memory at {addr:#x}")
        if charge:
            self.cycles += self.memory_access_cycles
        return int.from_bytes(self.memory[addr : addr + 4], "little")

    def _store_word(self, addr: int, value: int, charge: bool = True) -> None:
        if self.mmio is not None and addr >= self.mmio_base:
            self.cycles += self.mmio.write(addr, value)
            return
        if not 0 <= addr <= len(self.memory) - 4:
            raise SimulationError(f"store outside memory at {addr:#x}")
        if charge:
            self.cycles += self.memory_access_cycles
        self.memory[addr : addr + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    @staticmethod
    def _signed(value: int) -> int:
        return value - (1 << 32) if value & 0x8000_0000 else value

    # ---------------------------------------------------------------- step
    def step(self) -> None:
        """Execute one instruction."""
        if self.halted:
            raise SimulationError("CPU is halted")
        word = self._load_word(self.pc, charge=False)
        instr = isa.decode(word)
        next_pc = self.pc + 4
        self.cycles += 1
        op = instr.opcode

        if op == isa.OPCODE_LUI:
            self._set_reg(instr.rd, instr.imm)
        elif op == isa.OPCODE_AUIPC:
            self._set_reg(instr.rd, self.pc + instr.imm)
        elif op == isa.OPCODE_JAL:
            self._set_reg(instr.rd, next_pc)
            next_pc = self.pc + instr.imm
        elif op == isa.OPCODE_JALR:
            self._set_reg(instr.rd, next_pc)
            next_pc = (self._reg(instr.rs1) + instr.imm) & ~1
        elif op == isa.OPCODE_BRANCH:
            next_pc = self._branch(instr, next_pc)
        elif op == isa.OPCODE_LOAD:
            if instr.funct3 != 0b010:
                raise SimulationError("only LW is supported")
            self._set_reg(instr.rd, self._load_word(self._reg(instr.rs1) + instr.imm))
        elif op == isa.OPCODE_STORE:
            if instr.funct3 != 0b010:
                raise SimulationError("only SW is supported")
            self._store_word(self._reg(instr.rs1) + instr.imm, self._reg(instr.rs2))
        elif op == isa.OPCODE_OP_IMM:
            self._set_reg(instr.rd, self._alu(instr, self._reg(instr.rs1), instr.imm, imm_mode=True))
        elif op == isa.OPCODE_OP:
            self._set_reg(
                instr.rd,
                self._alu(instr, self._reg(instr.rs1), self._reg(instr.rs2), imm_mode=False),
            )
        elif op == isa.OPCODE_CUSTOM0:
            next_pc = self._custom0(instr, next_pc)
        elif op == isa.OPCODE_SYSTEM:
            self.halted = True  # ecall/ebreak end the control program
        else:
            raise SimulationError(f"unhandled opcode {op:#09b}")

        self.pc = next_pc
        self.instructions_retired += 1

    def _branch(self, instr: isa.Instruction, next_pc: int) -> int:
        lhs, rhs = self._reg(instr.rs1), self._reg(instr.rs2)
        slhs, srhs = self._signed(lhs), self._signed(rhs)
        taken = {
            0b000: lhs == rhs,  # beq
            0b001: lhs != rhs,  # bne
            0b100: slhs < srhs,  # blt
            0b101: slhs >= srhs,  # bge
            0b110: lhs < rhs,  # bltu
            0b111: lhs >= rhs,  # bgeu
        }.get(instr.funct3)
        if taken is None:
            raise SimulationError(f"unknown branch funct3 {instr.funct3:#05b}")
        return self.pc + instr.imm if taken else next_pc

    def _alu(self, instr: isa.Instruction, a: int, b: int, imm_mode: bool) -> int:
        funct3 = instr.funct3
        if imm_mode:
            # Shift-immediate variants keep funct7 inside the immediate.
            sub_or_sra = bool((instr.imm >> 5) & 0b0100000)
        else:
            sub_or_sra = bool(instr.funct7 & 0b0100000)
        if funct3 == 0b000:  # add/sub/addi
            if not imm_mode and sub_or_sra:
                return a - b
            return a + b
        if funct3 == 0b001:  # sll(i)
            return a << (b & 0x1F)
        if funct3 == 0b010:  # slt(i)
            return 1 if self._signed(a) < self._signed(b & 0xFFFFFFFF) else 0
        if funct3 == 0b011:  # sltu(i)
            return 1 if (a & 0xFFFFFFFF) < (b & 0xFFFFFFFF) else 0
        if funct3 == 0b100:  # xor(i)
            return a ^ b
        if funct3 == 0b101:  # srl(i)/sra(i)
            shift = b & 0x1F
            if sub_or_sra:
                return self._signed(a) >> shift
            return (a & 0xFFFFFFFF) >> shift
        if funct3 == 0b110:  # or(i)
            return a | b
        if funct3 == 0b111:  # and(i)
            return a & b
        raise SimulationError(f"unknown ALU funct3 {funct3:#05b}")

    def _custom0(self, instr: isa.Instruction, next_pc: int) -> int:
        if self.qrch is None:
            raise SimulationError("custom-0 instruction without a QRCH hub")
        if instr.funct3 == isa.FUNCT3_QPUSH:
            cycles = self.qrch.push(
                instr.funct7, self._reg(instr.rs1), self._reg(instr.rs2)
            )
            self.cycles += cycles
            self._set_reg(instr.rd, self.qrch.queue(instr.funct7).pushes)
            return next_pc
        if instr.funct3 == isa.FUNCT3_QPULL:
            value, cycles = self.qrch.pull(instr.funct7)
            self.cycles += cycles
            if value is None:
                # Blocking pull: spin on the same instruction.
                return self.pc
            self._set_reg(instr.rd, value)
            return next_pc
        raise SimulationError(f"unknown custom-0 funct3 {instr.funct3:#05b}")

    # ----------------------------------------------------------------- run
    def run(self, max_instructions: int = 1_000_000) -> int:
        """Run until halt; returns cycles consumed."""
        start_cycles = self.cycles
        executed = 0
        while not self.halted:
            self.step()
            executed += 1
            if executed > max_instructions:
                raise SimulationError(
                    f"exceeded {max_instructions} instructions without halting"
                )
        return self.cycles - start_cycles
