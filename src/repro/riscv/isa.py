"""RV32I instruction encoding/decoding plus the QRCH custom extension.

Covers the RV32I subset a control program needs (ALU, loads/stores,
branches, jumps) and two custom-0 instructions implementing the
queue-based RISC-V coprocessor communication hub (QRCH):

* ``QPUSH rd, rs1, rs2`` — push ``(rs1, rs2)`` into the accelerator
  queue selected by the instruction's funct7 field; rd receives a
  sequence token.
* ``QPULL rd, rs1`` — pop the response queue selected by funct7 into
  ``rd`` (blocking; the CPU model stalls while the queue is empty).

The custom instructions live in the ``custom-0`` opcode space
(0b0001011), the standard place for vendor extensions like the
XuanTie E906's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecodeError

OPCODE_LUI = 0b0110111
OPCODE_AUIPC = 0b0010111
OPCODE_JAL = 0b1101111
OPCODE_JALR = 0b1100111
OPCODE_BRANCH = 0b1100011
OPCODE_LOAD = 0b0000011
OPCODE_STORE = 0b0100011
OPCODE_OP_IMM = 0b0010011
OPCODE_OP = 0b0110011
OPCODE_SYSTEM = 0b1110011
OPCODE_CUSTOM0 = 0b0001011  # QRCH extension

FUNCT3_QPUSH = 0b000
FUNCT3_QPULL = 0b001


@dataclass(frozen=True)
class Instruction:
    """Decoded instruction fields (RISC-V naming)."""

    opcode: int
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    funct3: int = 0
    funct7: int = 0
    imm: int = 0


def _sign_extend(value: int, bits: int) -> int:
    mask = 1 << (bits - 1)
    return (value & ((1 << bits) - 1)) - ((value & mask) << 1)


def decode(word: int) -> Instruction:
    """Decode a 32-bit instruction word."""
    if not 0 <= word < (1 << 32):
        raise DecodeError(f"instruction word {word:#x} is not 32-bit")
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode in (OPCODE_LUI, OPCODE_AUIPC):
        imm = _sign_extend(word >> 12, 20) << 12
        return Instruction(opcode, rd=rd, imm=imm)
    if opcode == OPCODE_JAL:
        imm = (
            (((word >> 31) & 1) << 20)
            | (((word >> 12) & 0xFF) << 12)
            | (((word >> 20) & 1) << 11)
            | (((word >> 21) & 0x3FF) << 1)
        )
        return Instruction(opcode, rd=rd, imm=_sign_extend(imm, 21))
    if opcode in (OPCODE_JALR, OPCODE_LOAD, OPCODE_OP_IMM, OPCODE_SYSTEM):
        # I-type carries no funct7: shift-immediate variants encode
        # their funct7-like bits inside the immediate field.
        return Instruction(
            opcode,
            rd=rd,
            rs1=rs1,
            funct3=funct3,
            imm=_sign_extend(word >> 20, 12),
        )
    if opcode == OPCODE_BRANCH:
        imm = (
            (((word >> 31) & 1) << 12)
            | (((word >> 7) & 1) << 11)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1)
        )
        return Instruction(
            opcode, rs1=rs1, rs2=rs2, funct3=funct3, imm=_sign_extend(imm, 13)
        )
    if opcode == OPCODE_STORE:
        imm = (((word >> 25) & 0x7F) << 5) | ((word >> 7) & 0x1F)
        return Instruction(
            opcode, rs1=rs1, rs2=rs2, funct3=funct3, imm=_sign_extend(imm, 12)
        )
    if opcode in (OPCODE_OP, OPCODE_CUSTOM0):
        return Instruction(
            opcode, rd=rd, rs1=rs1, rs2=rs2, funct3=funct3, funct7=funct7
        )
    raise DecodeError(f"unsupported opcode {opcode:#09b} in word {word:#010x}")


def encode(instr: Instruction) -> int:
    """Encode an :class:`Instruction` back into a 32-bit word."""
    opcode = instr.opcode
    if opcode in (OPCODE_LUI, OPCODE_AUIPC):
        return ((instr.imm >> 12) & 0xFFFFF) << 12 | (instr.rd << 7) | opcode
    if opcode == OPCODE_JAL:
        imm = instr.imm & 0x1FFFFF
        word = (
            (((imm >> 20) & 1) << 31)
            | (((imm >> 1) & 0x3FF) << 21)
            | (((imm >> 11) & 1) << 20)
            | (((imm >> 12) & 0xFF) << 12)
        )
        return word | (instr.rd << 7) | opcode
    if opcode in (OPCODE_JALR, OPCODE_LOAD, OPCODE_OP_IMM, OPCODE_SYSTEM):
        return (
            ((instr.imm & 0xFFF) << 20)
            | (instr.rs1 << 15)
            | (instr.funct3 << 12)
            | (instr.rd << 7)
            | opcode
        )
    if opcode == OPCODE_BRANCH:
        imm = instr.imm & 0x1FFF
        return (
            (((imm >> 12) & 1) << 31)
            | (((imm >> 5) & 0x3F) << 25)
            | (instr.rs2 << 20)
            | (instr.rs1 << 15)
            | (instr.funct3 << 12)
            | (((imm >> 1) & 0xF) << 8)
            | (((imm >> 11) & 1) << 7)
            | opcode
        )
    if opcode == OPCODE_STORE:
        imm = instr.imm & 0xFFF
        return (
            (((imm >> 5) & 0x7F) << 25)
            | (instr.rs2 << 20)
            | (instr.rs1 << 15)
            | (instr.funct3 << 12)
            | ((imm & 0x1F) << 7)
            | opcode
        )
    if opcode in (OPCODE_OP, OPCODE_CUSTOM0):
        return (
            (instr.funct7 << 25)
            | (instr.rs2 << 20)
            | (instr.rs1 << 15)
            | (instr.funct3 << 12)
            | (instr.rd << 7)
            | opcode
        )
    raise DecodeError(f"unsupported opcode {opcode:#09b}")
