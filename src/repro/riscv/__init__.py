"""RISC-V control subsystem: RV32I core, QRCH coprocessor hub, MMIO."""

from repro.riscv.isa import decode, encode, Instruction
from repro.riscv.cpu import RiscvCpu
from repro.riscv.qrch import Qrch, QrchQueue
from repro.riscv.mmio import MmioBus, MmioDevice
from repro.riscv.asm import assemble

__all__ = [
    "decode",
    "encode",
    "Instruction",
    "RiscvCpu",
    "Qrch",
    "QrchQueue",
    "MmioBus",
    "MmioDevice",
    "assemble",
]
