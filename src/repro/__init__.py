"""repro — reproduction of "Hyperscale FPGA-as-a-Service Architecture
for Large-Scale Distributed Graph Neural Network" (ISCA 2022).

Subpackages
-----------
graph
    CSR graph storage, synthetic generators, the Table 2 dataset
    registry, and node partitioning.
memstore
    Distributed in-memory store with footprint, link-latency, and
    outstanding-request (Eq. 3) models.
framework
    AliGraph-style sampling service: multi-hop/negative sampling,
    hot-node cache, cluster scaling, and the vCPU cost model.
gnn
    Mini-batch GNN compute (graphSAGE, DSSM) and the end-to-end
    application time model.
axe
    The Access Engine: event-driven simulation of the FIFO-pipelined,
    out-of-order, streaming-sampling accelerator.
mof
    Memory-over-Fabric: frame packing, BDI compression, fabric links,
    and the reliability protocol.
riscv
    RV32I control core with the QRCH coprocessor-hub ISA extension and
    an MMIO baseline.
perfmodel
    The analytical performance model and PoC validation (Figures 14/15).
cost
    Cloud price catalog and the linear instance-cost regression.
faas
    The eight-architecture FaaS design-space exploration (Figures 17-21).
serving
    Online SLO-aware serving gateway: open-loop multi-tenant
    workloads, dynamic micro-batching, EDF scheduling with
    token-bucket fair share, load shedding, and backend failover.
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
