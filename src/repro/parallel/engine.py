"""Sharded parallel sampling engine (coordinator side).

:class:`ParallelSampler` duck-types :class:`~repro.framework.sampler.
MultiHopSampler` — same ``sample``/``negative_sample`` surface, same
``store`` accounting — but fans every micro-batch out across shards:
the partitioner splits the roots by owning partition, each shard slice
becomes a :class:`~repro.parallel.worker.ShardTask` executed by a
persistent worker process (or in-process at ``workers=0``), hop layers
come back through zero-copy arenas, and the coordinator merges them,
absorbs each shard's access delta, and gathers attributes.

This is the software analogue of the paper's AxE outstanding-request
pipeline: ``submit``/``collect`` decouple issuing a micro-batch from
consuming it, so shard workers sample batch *k+1* while the
coordinator runs attribute gather + GNN forward for batch *k* (see
:mod:`repro.parallel.pipeline`).

Determinism: shard membership is owner-based and the per-task RNG
stream is a pure function of ``(seed, shard, seq)``, so results and
merged :class:`~repro.memstore.store.AccessSummary` totals are
bit-identical at every worker count — ``workers=0`` runs the exact
same shard tasks inline.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError, GraphError, ParallelExecutionError
from repro.framework.requests import NegativeSampleRequest, SampleRequest, SampleResult
from repro.framework.sampler import MultiHopSampler
from repro.framework.selectors import get_selector
from repro.memstore.store import PartitionedStore
from repro.parallel.shm import GraphPlane, SharedBlock
from repro.parallel.worker import (
    ShardDone,
    ShardRuntime,
    ShardTask,
    WorkerConfig,
    read_layers,
    region_bytes,
    worker_main,
)

#: How long one poll of the done queue blocks before re-checking that
#: every worker is still alive (guards against hanging on a dead pool).
DONE_POLL_S = 1.0
#: Consecutive empty polls tolerated before declaring the pool wedged.
MAX_IDLE_POLLS = 120


@dataclass
class _Pending:
    """Coordinator-side state of one in-flight micro-batch."""

    request: SampleRequest
    slot: int
    members: Dict[int, np.ndarray]
    remaining: Set[int]
    layers: List[np.ndarray] = field(default_factory=list)


class ParallelSampler:
    """Multi-hop sampler that executes micro-batches across shard workers.

    Parameters
    ----------
    store:
        The coordinator's :class:`PartitionedStore`. All accounting —
        shard structure deltas and coordinator attribute gathers —
        lands in this store's summary. Must not carry a ``reliability``
        path (shard workers run the zero-fault fast path only).
    workers:
        Worker process count. ``0`` executes the identical shard tasks
        inline (no processes, no shared memory) — the determinism
        reference for any ``workers >= 1`` run.
    seed:
        Root entropy for the per-(shard, batch) RNG streams.
    sampling_method:
        Selector name (``uniform``/``streaming``/``weighted``).
    worker_partition:
        Locality attribution, as on :class:`MultiHopSampler`.
    slots:
        Result-arena slots, i.e. micro-batches that may be in flight
        at once. 2 = double buffering.
    plane_backend:
        Shard-plane transport: ``"shm"``, ``"mmap"``, or ``"auto"``.
    """

    def __init__(
        self,
        store: PartitionedStore,
        workers: int = 0,
        seed: int = 0,
        sampling_method: str = "uniform",
        worker_partition: Optional[int] = None,
        slots: int = 2,
        plane_backend: str = "auto",
    ) -> None:
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        if slots < 1:
            raise ConfigurationError(f"slots must be >= 1, got {slots}")
        if store.reliability is not None:
            raise ConfigurationError(
                "parallel execution does not support a reliability path; "
                "shard workers run the zero-fault fast path only"
            )
        self.store = store
        self.workers = workers
        self.seed = seed
        self.sampling_method = sampling_method
        self.worker_partition = worker_partition
        self.slots = slots
        self.plane_backend = plane_backend
        #: MultiHopSampler interface: the engine always runs batched.
        self.batched = True
        #: Parallel mode forbids caches/reliability, so never degrades.
        self.degraded_fallbacks = 0
        self.cache = None
        self._seq = 0
        self._pending: Dict[int, _Pending] = {}
        # Serial delegate for negative sampling (runs on the
        # coordinator; its accesses account to the coordinator store).
        self._negative = MultiHopSampler(
            store,
            seed=derive_negative_seed(seed),
            worker_partition=worker_partition,
            selector=get_selector(sampling_method),
        )
        # In-process shard runtime (workers=0) — built lazily so the
        # zero-worker engine costs nothing beyond the store it wraps.
        self._inline: Optional[ShardRuntime] = None
        # Process-pool state (workers >= 1).
        self._plane: Optional[GraphPlane] = None
        self._arenas: List[SharedBlock] = []
        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._tasks = None
        self._done = None
        self._shard_region_bytes = 0
        self._closed = False

    # ------------------------------------------------------------ interface
    @property
    def fault_stats(self):
        return self.store.fault_stats

    @property
    def num_shards(self) -> int:
        return self.store.num_partitions

    def __enter__(self) -> "ParallelSampler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- lifecycle
    def _mp_context(self):
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    def _ensure_pool(self, region_bytes: int) -> None:
        """(Re)start the worker pool with arenas of ``region_bytes``/shard.

        The pool persists across micro-batches; it only restarts when a
        request needs larger arena regions than were provisioned.
        """
        if self.workers == 0:
            if self._inline is None:
                self._inline = ShardRuntime.from_store(
                    self.store, self.sampling_method
                )
            return
        if self._procs and region_bytes <= self._shard_region_bytes:
            return
        if self._pending:
            raise ParallelExecutionError(
                "cannot resize arenas with micro-batches in flight"
            )
        self._stop_pool()
        if self._plane is None:
            self._plane = GraphPlane(self.store.graph, backend=self.plane_backend)
        self._shard_region_bytes = region_bytes
        arena_bytes = max(region_bytes * self.num_shards, 64)
        self._arenas = [
            SharedBlock(arena_bytes, backend=self.plane_backend)
            for _ in range(self.slots)
        ]
        ctx = self._mp_context()
        self._tasks = ctx.Queue()
        self._done = ctx.Queue()
        config = WorkerConfig(
            graph=self._plane.handle,
            arenas=tuple(a.handle for a in self._arenas),
            shard_region_bytes=region_bytes,
            partitioner=self.store.partitioner,
            index_entry_bytes=self.store.index_entry_bytes,
            offset_entry_bytes=self.store.offset_entry_bytes,
            id_bytes=self.store.id_bytes,
            seed=self.seed,
            sampling_method=self.sampling_method,
            worker_partition=self.worker_partition,
        )
        self._procs = [
            ctx.Process(
                target=worker_main,
                args=(config, self._tasks, self._done),
                daemon=True,
                name=f"repro-shard-worker-{i}",
            )
            for i in range(self.workers)
        ]
        for proc in self._procs:
            proc.start()

    def _stop_pool(self) -> None:
        if self._procs:
            for _ in self._procs:
                self._tasks.put(None)
            for proc in self._procs:
                proc.join(timeout=10)
            for proc in self._procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5)
        self._procs = []
        self._tasks = None
        self._done = None
        for arena in self._arenas:
            arena.close()
            arena.unlink()
        self._arenas = []

    def close(self) -> None:
        """Shut down workers and release the shard plane + arenas."""
        if self._closed:
            return
        self._closed = True
        self._pending.clear()
        self._stop_pool()
        if self._plane is not None:
            self._plane.close()
            self._plane.unlink()
            self._plane = None

    def reserve(self, max_roots: int, fanouts: Sequence[int]) -> None:
        """Pre-provision worker arenas for requests up to ``max_roots``.

        The pool only restarts when a request outgrows its arenas, and
        it cannot restart while micro-batches are in flight — so a
        pipelined caller whose request sizes vary (e.g. cache-deduped
        micro-batches) must size the arenas for its largest request
        before streaming begins.
        """
        if self._closed:
            raise ParallelExecutionError("engine is closed")
        if max_roots < 1:
            raise ConfigurationError(
                f"max_roots must be >= 1, got {max_roots}"
            )
        self._ensure_pool(region_bytes(max_roots, tuple(fanouts)))

    # ------------------------------------------------------------ submission
    def submit(self, request: SampleRequest) -> int:
        """Dispatch a micro-batch to the shard workers; returns its seq.

        At most ``slots`` micro-batches may be un-merged at once; a
        submit that would reuse a busy arena slot blocks until that
        slot's shards finish.
        """
        if self._closed:
            raise ParallelExecutionError("engine is closed")
        roots = request.roots
        if (
            roots.max(initial=-1) >= self.store.graph.num_nodes
            or roots.min(initial=0) < 0
        ):
            raise GraphError("request roots outside [0, num_nodes)")
        region = region_bytes(roots.size, request.fanouts)
        self._ensure_pool(region)
        seq = self._seq
        self._seq += 1
        slot = seq % self.slots
        # Wait out the previous occupant of this arena slot (its
        # regions are free once every shard has been merged).
        while any(
            p.slot == slot and p.remaining for p in self._pending.values()
        ):
            self._pump(block=True)
        owners = self.store.partitioner.partition_of(roots)
        members = {
            shard: np.flatnonzero(owners == shard)
            for shard in range(self.num_shards)
        }
        members = {s: idx for s, idx in members.items() if idx.size}
        width = 1
        layers = []
        for fanout in request.fanouts:
            width *= fanout
            layers.append(np.empty((roots.size, width), dtype=np.int64))
        entry = _Pending(
            request=request,
            slot=slot,
            members=members,
            remaining=set(members),
            layers=layers,
        )
        self._pending[seq] = entry
        for shard in sorted(members):
            task = ShardTask(
                seq=seq,
                shard=shard,
                slot=slot,
                roots=roots[members[shard]],
                fanouts=tuple(request.fanouts),
            )
            if self.workers == 0:
                self._run_inline(task, entry)
            else:
                self._tasks.put(task)
        return seq

    def _run_inline(self, task: ShardTask, entry: _Pending) -> None:
        layers, summary = self._inline.run_shard(
            task, self.seed, self.worker_partition
        )
        rows = entry.members[task.shard]
        for hop, layer in enumerate(layers):
            entry.layers[hop][rows] = layer
        self.store.absorb_summary(summary)
        entry.remaining.discard(task.shard)

    # ------------------------------------------------------------ collection
    def _check_alive(self) -> None:
        dead = [p.name for p in self._procs if not p.is_alive()]
        if dead:
            raise ParallelExecutionError(
                f"shard worker(s) died unexpectedly: {', '.join(dead)}"
            )

    def _pump(self, block: bool = True) -> bool:
        """Process one ShardDone message; returns whether one arrived."""
        if self.workers == 0:
            return False  # inline tasks complete during submit
        idle = 0
        while True:
            try:
                msg: ShardDone = self._done.get(
                    timeout=DONE_POLL_S if block else 0.001
                )
                break
            except queue_mod.Empty:
                if not block:
                    return False
                self._check_alive()
                idle += 1
                if idle >= MAX_IDLE_POLLS:
                    raise ParallelExecutionError(
                        "timed out waiting for shard workers"
                    )
        if msg.error is not None:
            raise ParallelExecutionError(
                f"shard {msg.shard} of micro-batch {msg.seq} failed:\n{msg.error}"
            )
        entry = self._pending.get(msg.seq)
        if entry is None or msg.shard not in entry.remaining:
            raise ParallelExecutionError(
                f"unexpected completion for micro-batch {msg.seq}, "
                f"shard {msg.shard}"
            )
        rows = entry.members[msg.shard]
        views = read_layers(
            self._arenas[entry.slot].buf,
            msg.shard * self._shard_region_bytes,
            msg.count,
            tuple(entry.request.fanouts),
        )
        for hop, view in enumerate(views):
            entry.layers[hop][rows] = view
        self.store.absorb_summary(msg.summary)
        entry.remaining.discard(msg.shard)
        return True

    def collect(self, seq: int) -> SampleResult:
        """Merge micro-batch ``seq``: hop layers + attribute gather."""
        entry = self._pending.get(seq)
        if entry is None:
            raise ParallelExecutionError(f"unknown micro-batch {seq}")
        while entry.remaining:
            self._pump(block=True)
        del self._pending[seq]
        result = SampleResult()
        result.layers.append(entry.request.roots.copy())
        result.layers.extend(entry.layers)
        if entry.request.with_attributes:
            # One pinned snapshot for the whole gather: on a mutable
            # store the per-layer batches must not straddle epochs.
            with self.store.read_view():
                result.attributes = [
                    self._gather_attributes(layer) for layer in result.layers
                ]
        return result

    def _gather_attributes(self, layer: np.ndarray) -> np.ndarray:
        """Coordinator-side attribute gather, occurrence-accounted.

        Mirrors the batched sampler's per-layer dedup + one store batch
        call, so the coordinator store's summary accrues exactly what a
        serial sampler would have recorded for the same layers.
        """
        attr_len = self.store.graph.attr_len
        flat = layer.reshape(-1)
        if flat.size == 0:
            return np.empty(layer.shape + (attr_len,), dtype=np.float32)
        unique, inverse, counts = np.unique(
            flat, return_inverse=True, return_counts=True
        )
        batch = self.store.get_attributes_batch(
            unique, self.worker_partition, counts=counts
        )
        return batch.rows[inverse].reshape(layer.shape + (attr_len,))

    def discard(self, seq: int) -> None:
        """Abandon in-flight micro-batch ``seq`` without consuming it.

        Waits out its remaining shard completions (their arena regions
        are only reusable once every shard has reported), then drops the
        pending entry — freeing the arena slot without the attribute
        gather. Used by :meth:`PipelinedExecutor.drain` to flush the
        pipeline after a failed compute step. Shard accounting that
        already merged stays in the store summary: the sampling work
        really happened.
        """
        entry = self._pending.get(seq)
        if entry is None:
            raise ParallelExecutionError(f"unknown micro-batch {seq}")
        try:
            while entry.remaining:
                self._pump(block=True)
        finally:
            # Even if a shard reported an error, the slot must not stay
            # occupied by a batch nobody will ever collect.
            del self._pending[seq]

    # -------------------------------------------------------------- sampling
    def sample(self, request: SampleRequest) -> SampleResult:
        """Execute one request across the shard workers (submit+collect)."""
        return self.collect(self.submit(request))

    def negative_sample(self, request: NegativeSampleRequest) -> np.ndarray:
        """Negative sampling runs serially on the coordinator.

        Rejection sampling is root-local and cheap relative to hop
        sampling; the delegate uses a dedicated SeedSequence stream so
        it never perturbs the shard streams.
        """
        return self._negative.negative_sample(request)


def derive_negative_seed(seed: int) -> np.random.SeedSequence:
    """SeedSequence stream reserved for coordinator-side negative sampling."""
    return np.random.SeedSequence(entropy=seed, spawn_key=(2**31,))
