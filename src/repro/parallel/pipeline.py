"""Pipelined micro-batch executor: sample → gather → compute overlap.

The AxE pipeline hides memory latency by keeping thousands of requests
outstanding; the software analogue here keeps ``depth`` micro-batches
in flight against the shard workers. While the coordinator merges
micro-batch *k*, gathers its attributes, and runs the caller's compute
stage (typically a GNN forward), the workers are already hop-sampling
micro-batches *k+1 .. k+depth-1* — the three stages of HP-GNN's
CPU+accelerator pipeline, double-buffered by default.

With a ``workers=0`` engine the executor degrades gracefully to strict
serial execution (submit runs the shard tasks inline), producing
bit-identical results — which is exactly the determinism contract the
benchmarks assert.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.framework.requests import SampleRequest, SampleResult
from repro.parallel.engine import ParallelSampler


class PipelinedExecutor:
    """Run a stream of sampling requests with double-buffered overlap.

    Parameters
    ----------
    sampler:
        The parallel engine to execute on. ``depth`` must not exceed
        its arena ``slots`` (each in-flight micro-batch owns a slot).
    depth:
        Maximum micro-batches in flight. 2 = classic double buffering.
    """

    def __init__(self, sampler: ParallelSampler, depth: int = 2) -> None:
        if depth < 1:
            raise ConfigurationError(f"pipeline depth must be >= 1, got {depth}")
        if depth > sampler.slots:
            raise ConfigurationError(
                f"pipeline depth {depth} exceeds the engine's "
                f"{sampler.slots} arena slot(s)"
            )
        self.sampler = sampler
        self.depth = depth

    def run(
        self,
        requests: Iterable[SampleRequest],
        compute: Optional[Callable[[SampleResult], object]] = None,
    ) -> List[object]:
        """Execute ``requests`` through the pipeline, in order.

        ``compute(result)`` is the coordinator-side consumer stage; its
        return values (or the raw :class:`SampleResult` objects when
        ``compute`` is ``None``) come back in request order. The next
        micro-batch is always submitted *before* compute runs, so the
        workers stay busy through the compute stage.
        """
        return list(self.stream(requests, compute))

    def stream(
        self,
        requests: Iterable[SampleRequest],
        compute: Optional[Callable[[SampleResult], object]] = None,
    ) -> Iterator[object]:
        """Lazy variant of :meth:`run`: yields outputs in request order."""
        it = iter(requests)
        in_flight: deque = deque()
        exhausted = False
        while not exhausted and len(in_flight) < self.depth:
            exhausted = not self._prime(it, in_flight)
        while in_flight:
            seq = in_flight.popleft()
            result = self.sampler.collect(seq)
            # Refill before the compute stage so shard workers overlap
            # with it rather than idling until the next iteration.
            if not exhausted:
                exhausted = not self._prime(it, in_flight)
            yield compute(result) if compute is not None else result

    def _prime(self, it: Iterator[SampleRequest], in_flight: deque) -> bool:
        try:
            request = next(it)
        except StopIteration:
            return False
        in_flight.append(self.sampler.submit(request))
        return True


def micro_batches(
    roots, batch_size: int, fanouts: Tuple[int, ...], with_attributes: bool = True
) -> Iterator[SampleRequest]:
    """Split a root array into consecutive micro-batch requests."""
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    for start in range(0, len(roots), batch_size):
        yield SampleRequest(
            roots=roots[start : start + batch_size],
            fanouts=tuple(fanouts),
            with_attributes=with_attributes,
        )
