"""Pipelined micro-batch executor: sample → gather → compute overlap.

The AxE pipeline hides memory latency by keeping thousands of requests
outstanding; the software analogue here keeps ``depth`` micro-batches
in flight against the shard workers. While the coordinator merges
micro-batch *k*, gathers its attributes, and runs the caller's compute
stage (typically a GNN forward), the workers are already hop-sampling
micro-batches *k+1 .. k+depth-1* — the three stages of HP-GNN's
CPU+accelerator pipeline, double-buffered by default.

With a ``workers=0`` engine the executor degrades gracefully to strict
serial execution (submit runs the shard tasks inline), producing
bit-identical results — which is exactly the determinism contract the
benchmarks assert.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError, ParallelExecutionError
from repro.framework.requests import SampleRequest, SampleResult
from repro.parallel.engine import ParallelSampler


class PipelinedExecutor:
    """Run a stream of sampling requests with double-buffered overlap.

    Parameters
    ----------
    sampler:
        The parallel engine to execute on. ``depth`` must not exceed
        its arena ``slots`` (each in-flight micro-batch owns a slot).
    depth:
        Maximum micro-batches in flight. 2 = classic double buffering.
    """

    def __init__(self, sampler: ParallelSampler, depth: int = 2) -> None:
        if depth < 1:
            raise ConfigurationError(f"pipeline depth must be >= 1, got {depth}")
        if depth > sampler.slots:
            raise ConfigurationError(
                f"pipeline depth {depth} exceeds the engine's "
                f"{sampler.slots} arena slot(s)"
            )
        self.sampler = sampler
        self.depth = depth
        #: Sequence numbers submitted but not yet collected. Owned by
        #: the executor (one stream at a time) so :meth:`drain` can
        #: flush the pipeline after a failed compute step.
        self._in_flight: Deque[int] = deque()
        #: In-flight micro-batches whose discard itself failed during a
        #: drain (e.g. a shard error surfaced while flushing).
        self.drain_failures = 0

    def run(
        self,
        requests: Iterable[SampleRequest],
        compute: Optional[Callable[[SampleResult], object]] = None,
    ) -> List[object]:
        """Execute ``requests`` through the pipeline, in order.

        ``compute(result)`` is the coordinator-side consumer stage; its
        return values (or the raw :class:`SampleResult` objects when
        ``compute`` is ``None``) come back in request order. The next
        micro-batch is always submitted *before* compute runs, so the
        workers stay busy through the compute stage.
        """
        return list(self.stream(requests, compute))

    def stream(
        self,
        requests: Iterable[SampleRequest],
        compute: Optional[Callable[[SampleResult], object]] = None,
    ) -> Iterator[object]:
        """Lazy variant of :meth:`run`: yields outputs in request order.

        If the compute stage raises (or the generator is closed with
        micro-batches outstanding), the in-flight tail is drained so the
        engine's arena slots are not leaked — the exception still
        propagates to the caller.
        """
        it = iter(requests)
        in_flight = self._in_flight
        if in_flight:
            raise ParallelExecutionError(
                "executor already has micro-batches in flight; "
                "one stream at a time"
            )
        try:
            exhausted = False
            while not exhausted and len(in_flight) < self.depth:
                exhausted = not self._prime(it, in_flight)
            while in_flight:
                seq = in_flight.popleft()
                result = self.sampler.collect(seq)
                # Refill before the compute stage so shard workers
                # overlap with it rather than idling until the next
                # iteration.
                if not exhausted:
                    exhausted = not self._prime(it, in_flight)
                yield compute(result) if compute is not None else result
        finally:
            self.drain()

    def drain(self) -> None:
        """Flush every in-flight micro-batch without consuming it.

        Each outstanding sequence number is discarded on the engine
        (which waits out its shard completions and frees its arena
        slot). A discard that itself fails is counted in
        :attr:`drain_failures` and draining continues — a failed compute
        step must never leak arena slots, even when a shard error
        surfaces mid-flush.
        """
        while self._in_flight:
            seq = self._in_flight.popleft()
            try:
                self.sampler.discard(seq)
            except ParallelExecutionError:
                # Recorded, not swallowed silently: the caller's
                # original exception is already propagating and the
                # remaining slots still need freeing.
                self.drain_failures += 1

    def _prime(self, it: Iterator[SampleRequest], in_flight: Deque[int]) -> bool:
        try:
            request = next(it)
        except StopIteration:
            return False
        in_flight.append(self.sampler.submit(request))
        return True


def micro_batches(
    roots, batch_size: int, fanouts: Tuple[int, ...], with_attributes: bool = True
) -> Iterator[SampleRequest]:
    """Split a root array into consecutive micro-batch requests."""
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    for start in range(0, len(roots), batch_size):
        yield SampleRequest(
            roots=roots[start : start + batch_size],
            fanouts=tuple(fanouts),
            with_attributes=with_attributes,
        )
