"""Zero-copy shard plane: graph arrays shared across worker processes.

The parallel execution engine must hand every shard worker the full
CSR structure and attribute matrix *without* pickling the graph — on
the paper's graphs that is hundreds of gigabytes, and even on the
scaled instances a per-worker copy would erase the point of persistent
workers. The plane exports the coordinator's arrays once into a shared
block (POSIX shared memory via :mod:`multiprocessing.shared_memory`,
or a memory-mapped temp file when ``/dev/shm`` is unavailable or too
small) and gives workers a tiny picklable :class:`GraphHandle`; they
attach and reconstruct a :class:`~repro.graph.csr.CSRGraph` whose
arrays are views straight into the shared block.

The same block machinery backs the engine's **result arenas**: per
pipeline slot, workers write their sampled hop layers directly into a
preassigned region, so a finished micro-batch crosses the process
boundary as a few-byte completion message instead of a pickled layer
stack.
"""

from __future__ import annotations

import mmap
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, GraphError
from repro.graph.csr import CSRGraph

#: Region alignment inside a shared block (cache-line friendly).
BLOCK_ALIGN = 64


def align_up(nbytes: int) -> int:
    """Round ``nbytes`` up to the block alignment."""
    if nbytes < 0:
        raise ConfigurationError(f"nbytes must be non-negative, got {nbytes}")
    return (nbytes + BLOCK_ALIGN - 1) // BLOCK_ALIGN * BLOCK_ALIGN


@dataclass(frozen=True)
class BlockHandle:
    """Picklable address of one shared block.

    ``backend`` selects the attach strategy: ``"shm"`` names a POSIX
    shared-memory segment, ``"mmap"`` names a file path to map.
    """

    backend: str
    name: str
    nbytes: int


@dataclass(frozen=True)
class ArraySpec:
    """Layout of one array inside a shared block."""

    key: str
    shape: Tuple[int, ...]
    dtype: str
    offset: int

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class GraphHandle:
    """Everything a worker needs to attach the shared graph."""

    block: BlockHandle
    arrays: Tuple[ArraySpec, ...]
    num_dst_nodes: Optional[int]


class SharedBlock:
    """One shared byte range, created by the owner process.

    ``backend="auto"`` prefers POSIX shared memory and falls back to a
    memory-mapped temp file when the shm mount refuses the allocation
    (containers commonly cap ``/dev/shm`` at 64 MB).
    """

    def __init__(self, nbytes: int, backend: str = "auto") -> None:
        if nbytes <= 0:
            raise ConfigurationError(f"block size must be positive, got {nbytes}")
        if backend not in ("auto", "shm", "mmap"):
            raise ConfigurationError(f"unknown shard-plane backend {backend!r}")
        self.nbytes = nbytes
        self._shm = None
        self._mmap: Optional[mmap.mmap] = None
        self._file_path: Optional[str] = None
        self._dir: Optional[str] = None
        self._unlinked = False
        if backend in ("auto", "shm"):
            try:
                from multiprocessing import shared_memory

                self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
            except OSError:
                if backend == "shm":
                    raise
        if self._shm is None:
            self._dir = tempfile.mkdtemp(prefix="repro-plane-")
            self._file_path = os.path.join(self._dir, "block.bin")
            with open(self._file_path, "wb") as fh:
                fh.truncate(nbytes)
            fd = os.open(self._file_path, os.O_RDWR)
            try:
                self._mmap = mmap.mmap(fd, nbytes)
            finally:
                os.close(fd)

    @property
    def buf(self) -> memoryview:
        if self._shm is not None:
            return self._shm.buf
        if self._mmap is None:
            raise ConfigurationError("block is closed")
        return memoryview(self._mmap)

    @property
    def handle(self) -> BlockHandle:
        if self._shm is not None:
            return BlockHandle("shm", self._shm.name, self.nbytes)
        if self._file_path is None:
            raise ConfigurationError("block is closed")
        return BlockHandle("mmap", self._file_path, self.nbytes)

    def close(self) -> None:
        """Release this process's mapping (the block may live on)."""
        if self._shm is not None:
            self._shm.close()
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None

    def unlink(self) -> None:
        """Destroy the backing segment/file (owner-side teardown)."""
        if self._unlinked:
            return
        self._unlinked = True
        if self._shm is not None:
            self._shm.unlink()
        if self._file_path is not None and os.path.exists(self._file_path):
            os.remove(self._file_path)
        if self._dir is not None and os.path.isdir(self._dir):
            os.rmdir(self._dir)

    def __enter__(self) -> "SharedBlock":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
        self.unlink()


class AttachedBlock:
    """A shared block mapped into an attaching (worker) process."""

    def __init__(self, handle: BlockHandle) -> None:
        self.handle = handle
        self._shm = None
        self._mmap: Optional[mmap.mmap] = None
        if handle.backend == "shm":
            from multiprocessing import shared_memory

            # Workers are always multiprocessing children of the
            # coordinator, so they share its resource tracker: the
            # attach-side registration lands in the same name set the
            # owner's create registered, and the owner's unlink clears
            # it exactly once. No unregister workaround needed (or
            # wanted — it would race the owner's teardown).
            self._shm = shared_memory.SharedMemory(name=handle.name)
        elif handle.backend == "mmap":
            fd = os.open(handle.name, os.O_RDWR)
            try:
                self._mmap = mmap.mmap(fd, handle.nbytes)
            finally:
                os.close(fd)
        else:
            raise ConfigurationError(
                f"unknown shard-plane backend {handle.backend!r}"
            )

    @property
    def buf(self) -> memoryview:
        if self._shm is not None:
            return self._shm.buf
        if self._mmap is None:
            raise ConfigurationError("block is closed")
        return memoryview(self._mmap)

    def close(self) -> None:
        if self._shm is not None:
            self._shm.close()
            self._shm = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None


def view_array(buf: memoryview, spec: ArraySpec) -> np.ndarray:
    """Zero-copy ndarray view of one packed array."""
    return np.ndarray(
        spec.shape, dtype=np.dtype(spec.dtype), buffer=buf, offset=spec.offset
    )


def pack_arrays(
    arrays: Dict[str, np.ndarray], backend: str = "auto"
) -> Tuple[SharedBlock, Tuple[ArraySpec, ...]]:
    """Copy ``arrays`` once into a freshly created shared block.

    Returns the owning block plus the layout specs needed to view each
    array back out (here or in an attaching process).
    """
    specs = []
    offset = 0
    for key, array in arrays.items():
        array = np.ascontiguousarray(array)
        specs.append(ArraySpec(key, array.shape, array.dtype.str, offset))
        offset = align_up(offset + array.nbytes)
    block = SharedBlock(max(offset, BLOCK_ALIGN), backend=backend)
    for key, spec in zip(arrays, specs):
        if spec.nbytes:
            view_array(block.buf, spec)[...] = arrays[key]
    return block, tuple(specs)


class GraphPlane:
    """Owner-side export of one graph onto the shard plane."""

    def __init__(self, graph: CSRGraph, backend: str = "auto") -> None:
        arrays: Dict[str, np.ndarray] = {
            "indptr": graph.indptr,
            "indices": graph.indices,
        }
        if graph.node_attr is not None:
            arrays["node_attr"] = graph.node_attr
        if graph.edge_attr is not None:
            arrays["edge_attr"] = graph.edge_attr
        self._block, specs = pack_arrays(arrays, backend=backend)
        self.handle = GraphHandle(
            block=self._block.handle,
            arrays=specs,
            num_dst_nodes=graph._num_dst_nodes,
        )

    @property
    def backend(self) -> str:
        return self._block.handle.backend

    @property
    def nbytes(self) -> int:
        return self._block.nbytes

    def close(self) -> None:
        self._block.close()

    def unlink(self) -> None:
        self._block.unlink()

    def __enter__(self) -> "GraphPlane":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
        self.unlink()


class AttachedGraph:
    """Worker-side view of an exported graph.

    ``graph`` is a fully functional :class:`CSRGraph` whose arrays
    alias the shared block — attaching performs no array copies.
    """

    def __init__(self, handle: GraphHandle) -> None:
        self._block = AttachedBlock(handle.block)
        views = {
            spec.key: view_array(self._block.buf, spec) for spec in handle.arrays
        }
        if "indptr" not in views or "indices" not in views:
            raise GraphError("graph handle is missing CSR arrays")
        self.graph = CSRGraph(
            views["indptr"],
            views["indices"],
            node_attr=views.get("node_attr"),
            edge_attr=views.get("edge_attr"),
            num_dst_nodes=handle.num_dst_nodes,
        )

    def close(self) -> None:
        # Drop array references before unmapping: an exported buffer
        # with live views would refuse (or crash on) the close.
        self.graph = None  # type: ignore[assignment]
        self._block.close()


def export_graph(graph: CSRGraph, backend: str = "auto") -> GraphPlane:
    """Export ``graph`` onto the shard plane (see :class:`GraphPlane`)."""
    return GraphPlane(graph, backend=backend)


def attach_graph(handle: GraphHandle) -> AttachedGraph:
    """Attach a worker process to an exported graph."""
    return AttachedGraph(handle)
