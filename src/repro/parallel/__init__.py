"""Sharded parallel execution engine.

Three pieces, mirroring the paper's concurrency story:

- :mod:`repro.parallel.shm` — the **shard plane**: graph CSR +
  attribute arrays exported once as zero-copy shared-memory (or
  memmap) views that persistent worker processes attach to without
  pickling the graph.
- :mod:`repro.parallel.worker` — the **worker pool**: per-shard
  batched samplers with stateless per-(shard, micro-batch)
  ``SeedSequence`` RNG streams, so results are deterministic and
  replay-verifiable regardless of worker count or completion order.
- :mod:`repro.parallel.engine` / :mod:`repro.parallel.pipeline` — the
  **pipelined coordinator**: double-buffered micro-batches overlapping
  hop sampling on shard workers with attribute gather + GNN forward on
  the coordinator.
"""

from repro.parallel.engine import ParallelSampler
from repro.parallel.pipeline import PipelinedExecutor, micro_batches
from repro.parallel.shm import GraphPlane, attach_graph, export_graph
from repro.parallel.worker import ShardRuntime, region_bytes, shard_seed

__all__ = [
    "ParallelSampler",
    "PipelinedExecutor",
    "micro_batches",
    "GraphPlane",
    "export_graph",
    "attach_graph",
    "ShardRuntime",
    "region_bytes",
    "shard_seed",
]
