"""Shard worker: the per-process sampling loop of the parallel engine.

Each worker attaches to the shard plane (zero-copy graph views), builds
its own :class:`~repro.memstore.store.PartitionedStore` over the shared
arrays, and executes :class:`ShardTask` messages: sample the hop layers
for one shard's slice of a micro-batch, write them straight into the
micro-batch's result arena, and report the shard-local
:class:`~repro.memstore.store.AccessSummary` back to the coordinator.

Determinism contract
--------------------
The RNG stream for a task depends only on ``(seed, shard, seq)`` —
:func:`shard_seed` derives an independent ``SeedSequence`` per (shard,
micro-batch) pair — and shard membership depends only on the
partitioner. Neither depends on worker count, task-to-worker placement,
or completion order, so the merged result is bit-identical whether the
tasks run in-process, on one worker, or on eight.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.framework.requests import SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.framework.selectors import get_selector
from repro.graph.partition import Partitioner
from repro.memstore.store import AccessSummary, PartitionedStore
from repro.parallel.shm import BlockHandle, GraphHandle, attach_graph


def shard_seed(seed: int, shard: int, seq: int) -> np.random.SeedSequence:
    """Independent RNG stream for one (shard, micro-batch) task.

    ``spawn_key`` folds the shard and batch sequence number into the
    stream identity, so any process can (re)derive the exact stream
    for any task without coordination — the stateless analogue of
    ``SeedSequence.spawn``.
    """
    return np.random.SeedSequence(entropy=seed, spawn_key=(shard, seq))


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to reconstruct its sampling stack.

    The partitioner and the store's byte-size parameters are shipped
    verbatim so the worker's shadow store attributes every access
    exactly as the coordinator's store would have.
    """

    graph: GraphHandle
    arenas: Tuple[BlockHandle, ...]
    shard_region_bytes: int
    partitioner: Partitioner
    index_entry_bytes: int
    offset_entry_bytes: int
    id_bytes: int
    seed: int
    sampling_method: str
    worker_partition: Optional[int]


@dataclass(frozen=True)
class ShardTask:
    """Sample one shard's slice of micro-batch ``seq`` into slot ``slot``."""

    seq: int
    shard: int
    slot: int
    roots: np.ndarray
    fanouts: Tuple[int, ...]


@dataclass(frozen=True)
class ShardDone:
    """Completion report for one :class:`ShardTask`."""

    seq: int
    shard: int
    count: int
    summary: Optional[AccessSummary]
    error: Optional[str]


def layer_sizes(count: int, fanouts: Tuple[int, ...]) -> List[int]:
    """Element counts of hop layers 1..H for ``count`` roots."""
    sizes = []
    width = 1
    for fanout in fanouts:
        width *= fanout
        sizes.append(count * width)
    return sizes


def hop_elements(fanouts: Tuple[int, ...]) -> int:
    """Sampled node occurrences per root across all hops (excl. root)."""
    total = 0
    width = 1
    for fanout in fanouts:
        width *= fanout
        total += width
    return total


def region_bytes(count: int, fanouts: Tuple[int, ...]) -> int:
    """Arena bytes one shard needs for ``count`` roots of a micro-batch.

    Layers are packed as int64; this is the sizing contract shared by
    the coordinator (arena provisioning) and :func:`write_layers`.
    """
    return count * hop_elements(tuple(fanouts)) * np.dtype(np.int64).itemsize


def write_layers(
    buf: memoryview, offset: int, layers: List[np.ndarray]
) -> None:
    """Pack hop layers 1..H contiguously into an arena region."""
    for layer in layers:
        flat = np.ascontiguousarray(layer, dtype=np.int64).reshape(-1)
        out = np.ndarray(flat.shape, dtype=np.int64, buffer=buf, offset=offset)
        out[...] = flat
        offset += flat.nbytes


def read_layers(
    buf: memoryview, offset: int, count: int, fanouts: Tuple[int, ...]
) -> List[np.ndarray]:
    """Unpack hop layers 1..H for ``count`` roots from an arena region.

    Returns views into the arena — callers copy rows out during the
    merge scatter, so the region can be reused as soon as the merge
    completes.
    """
    layers = []
    width = 1
    for fanout in fanouts:
        width *= fanout
        layer = np.ndarray(
            (count, width), dtype=np.int64, buffer=buf, offset=offset
        )
        layers.append(layer)
        offset += layer.nbytes
    return layers


class ShardRuntime:
    """The per-process sampling stack: attached graph, store, sampler.

    Used by worker processes *and* by the coordinator's in-process
    fallback (``workers=0``), so both run byte-identical code.
    """

    def __init__(self, store: PartitionedStore, sampler: MultiHopSampler) -> None:
        self.store = store
        self.sampler = sampler

    @classmethod
    def from_store(cls, store: PartitionedStore, sampling_method: str) -> "ShardRuntime":
        """In-process runtime over an existing (coordinator) store's graph.

        Builds a *private* store over the same graph arrays so task
        accounting starts from zero and merges through the same
        shard-summary path as process workers.
        """
        shadow = PartitionedStore(
            store.graph,
            store.partitioner,
            index_entry_bytes=store.index_entry_bytes,
            offset_entry_bytes=store.offset_entry_bytes,
            id_bytes=store.id_bytes,
        )
        sampler = MultiHopSampler(
            shadow,
            selector=get_selector(sampling_method),
            batched=True,
        )
        return cls(shadow, sampler)

    @classmethod
    def from_config(cls, config: WorkerConfig) -> "ShardRuntime":
        attached = attach_graph(config.graph)
        store = PartitionedStore(
            attached.graph,
            config.partitioner,
            index_entry_bytes=config.index_entry_bytes,
            offset_entry_bytes=config.offset_entry_bytes,
            id_bytes=config.id_bytes,
        )
        sampler = MultiHopSampler(
            store,
            worker_partition=config.worker_partition,
            selector=get_selector(config.sampling_method),
            batched=True,
        )
        runtime = cls(store, sampler)
        runtime._attached = attached  # keep the mapping alive
        return runtime

    def close(self) -> None:
        attached = getattr(self, "_attached", None)
        if attached is not None:
            attached.close()

    def run_shard(
        self, task: ShardTask, seed: int, worker_partition: Optional[int]
    ) -> Tuple[List[np.ndarray], AccessSummary]:
        """Sample one shard task; return hop layers and the access delta."""
        self.sampler.rng = np.random.default_rng(
            shard_seed(seed, task.shard, task.seq)
        )
        self.sampler.worker_partition = worker_partition
        self.store.reset_trace()
        request = SampleRequest(
            roots=task.roots, fanouts=task.fanouts, with_attributes=False
        )
        result = self.sampler.sample(request)
        return result.layers[1:], self.store.summary


def worker_main(config: WorkerConfig, tasks, done) -> None:
    """Worker process entry point: drain tasks until the ``None`` sentinel.

    Every task failure is reported through the done queue (never
    swallowed); the coordinator converts it into a
    :class:`~repro.errors.ParallelExecutionError`.
    """
    runtime = ShardRuntime.from_config(config)
    from repro.parallel.shm import AttachedBlock

    arenas = [AttachedBlock(handle) for handle in config.arenas]
    try:
        while True:
            task = tasks.get()
            if task is None:
                break
            try:
                layers, summary = runtime.run_shard(
                    task, config.seed, config.worker_partition
                )
                offset = task.shard * config.shard_region_bytes
                write_layers(arenas[task.slot].buf, offset, layers)
                done.put(
                    ShardDone(task.seq, task.shard, task.roots.size, summary, None)
                )
            except Exception:  # noqa: BLE001 - reported to the coordinator
                done.put(
                    ShardDone(
                        task.seq,
                        task.shard,
                        task.roots.size,
                        None,
                        traceback.format_exc(),
                    )
                )
    finally:
        for arena in arenas:
            arena.close()
        runtime.close()
