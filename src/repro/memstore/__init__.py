"""Distributed in-memory storage substrate and its performance models."""

from repro.memstore.layout import FootprintModel, FootprintReport
from repro.memstore.links import LINK_PRESETS, LinkModel, get_link
from repro.memstore.outstanding import (
    outstanding_for_link,
    outstanding_requests_needed,
    outstanding_table,
    outstanding_with_faults,
    achieved_bandwidth,
)
from repro.memstore.index import ExternalIdIndex
from repro.memstore.faults import FaultInjector, FaultStats, ReliableReadPath
from repro.memstore.replication import ReplicaId, ReplicaPlacement
from repro.memstore.retry import RetryPolicy, expected_attempts
from repro.memstore.store import (
    AccessKind,
    AccessRecord,
    AccessSummary,
    PartitionedStore,
)
from repro.memstore.locality import (
    BlockPartitioner,
    LocalityLayout,
    Relabeling,
    apply_layout,
    build_locality_layout,
    locality_order,
)
from repro.memstore.ingest import (
    DynamicPartitionedStore,
    IngestStats,
    Mutation,
    growth_trace,
)

__all__ = [
    "FootprintModel",
    "FootprintReport",
    "LINK_PRESETS",
    "LinkModel",
    "get_link",
    "outstanding_for_link",
    "outstanding_requests_needed",
    "outstanding_table",
    "outstanding_with_faults",
    "achieved_bandwidth",
    "ExternalIdIndex",
    "FaultInjector",
    "FaultStats",
    "ReliableReadPath",
    "ReplicaId",
    "ReplicaPlacement",
    "RetryPolicy",
    "expected_attempts",
    "AccessKind",
    "AccessRecord",
    "AccessSummary",
    "PartitionedStore",
    "BlockPartitioner",
    "LocalityLayout",
    "Relabeling",
    "apply_layout",
    "build_locality_layout",
    "locality_order",
    "DynamicPartitionedStore",
    "IngestStats",
    "Mutation",
    "growth_trace",
]
