"""Distributed in-memory storage substrate and its performance models."""

from repro.memstore.layout import FootprintModel, FootprintReport
from repro.memstore.links import LINK_PRESETS, LinkModel, get_link
from repro.memstore.outstanding import (
    outstanding_requests_needed,
    outstanding_table,
    achieved_bandwidth,
)
from repro.memstore.index import ExternalIdIndex
from repro.memstore.store import AccessKind, AccessRecord, PartitionedStore

__all__ = [
    "FootprintModel",
    "FootprintReport",
    "LINK_PRESETS",
    "LinkModel",
    "get_link",
    "outstanding_requests_needed",
    "outstanding_table",
    "achieved_bandwidth",
    "ExternalIdIndex",
    "AccessKind",
    "AccessRecord",
    "PartitionedStore",
]
