"""Locality-preserving graph layout: renumbering + block partitioning.

The source paper's Figure 2 and "Exploring Memory Access Patterns for
Graph Processing Accelerators" (PAPERS.md) both conclude that the
sampler wall is memory locality, not FLOPs: hop frontiers scatter over
the CSR and attribute arrays, so every gather is a random walk through
DRAM. This module attacks the layout side:

* :func:`locality_order` — a degree-aware renumbering: nodes are
  stably ordered by (partition, descending degree), so every
  partition's nodes become one contiguous ID block with its hottest
  (highest-degree, hence most-sampled) nodes packed at the front.
* :func:`apply_layout` — physically permutes the CSR + attribute
  arrays into that order and returns a :class:`Relabeling` that maps
  original IDs to internal ones and back. Callers keep speaking
  original IDs; the store and sampler run entirely in internal space.
* :class:`BlockPartitioner` — ownership over the contiguous ID blocks
  (a searchsorted over ``num_partitions + 1`` bounds), replacing the
  hash scatter while preserving the partition assignment the ordering
  was derived from.
* :func:`build_locality_layout` — the one-call bundle: derive an
  assignment (LDG by default, so partition crossings genuinely drop
  versus the hash baseline), renumber, and return graph + partitioner
  + relabeling ready for ``PartitionedStore``.

The win is measured, not asserted: ``PartitionedStore`` stores built
with ``track_locality=True`` account every batched gather's
contiguous-run structure in ``AccessSummary`` (``gather_runs`` /
``gather_span_bytes``), and ``repro layout-bench`` records the
before/after to ``BENCH_layout.json``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, GraphError, PartitionError
from repro.graph.csr import CSRGraph
from repro.graph.partition import (
    HashPartitioner,
    LdgPartitioner,
    Partitioner,
    RangePartitioner,
)

#: Assignment methods build_locality_layout can derive block bounds from.
LAYOUT_METHODS = ("ldg", "hash", "range")


@dataclass(frozen=True)
class Relabeling:
    """Bijection between original node IDs and internal (layout) IDs.

    ``to_internal_map[original] == internal`` and
    ``to_original_map[internal] == original``. The sampler remaps roots
    on the way in and sampled layers on the way out, so callers never
    see internal IDs.
    """

    to_internal_map: np.ndarray
    to_original_map: np.ndarray

    def __post_init__(self) -> None:
        fwd = np.asarray(self.to_internal_map, dtype=np.int64)
        rev = np.asarray(self.to_original_map, dtype=np.int64)
        if fwd.ndim != 1 or rev.shape != fwd.shape:
            raise GraphError(
                "relabeling maps must be 1-D arrays of the same length"
            )
        if not np.array_equal(rev[fwd], np.arange(fwd.size, dtype=np.int64)):
            raise GraphError("relabeling maps are not inverse permutations")
        object.__setattr__(self, "to_internal_map", fwd)
        object.__setattr__(self, "to_original_map", rev)

    @property
    def num_nodes(self) -> int:
        return int(self.to_internal_map.size)

    def to_internal(self, nodes: Union[int, Sequence[int], np.ndarray]):
        """Map original IDs (any shape) into internal layout IDs."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (
            nodes.min() < 0 or nodes.max() >= self.num_nodes
        ):
            raise GraphError(
                f"node IDs outside [0, {self.num_nodes}) cannot be relabeled"
            )
        return self.to_internal_map[nodes]

    def to_original(self, nodes: Union[int, Sequence[int], np.ndarray]):
        """Map internal layout IDs (any shape) back to original IDs.

        Internal IDs come from the relabeled graph itself, so they are
        in range by construction; this is the unchecked hot-path twin
        of :meth:`to_internal`.
        """
        return self.to_original_map[np.asarray(nodes, dtype=np.int64)]

    @classmethod
    def identity(cls, num_nodes: int) -> "Relabeling":
        ids = np.arange(num_nodes, dtype=np.int64)
        return cls(ids, ids.copy())


class BlockPartitioner(Partitioner):
    """Ownership over contiguous ID blocks: ``bounds[p] <= id < bounds[p+1]``.

    The layout packs each partition's nodes into one ID block, so
    ownership collapses to a searchsorted over ``num_partitions + 1``
    bounds — and, unlike hashing, ID-adjacent nodes share an owner.
    """

    def __init__(self, bounds: Sequence[int]) -> None:
        bounds = np.asarray(bounds, dtype=np.int64)
        if bounds.ndim != 1 or bounds.size < 2:
            raise PartitionError(
                "bounds must be a 1-D array of num_partitions + 1 offsets"
            )
        if bounds[0] != 0 or np.any(np.diff(bounds) < 0):
            raise PartitionError("bounds must start at 0 and be non-decreasing")
        super().__init__(int(bounds.size - 1))
        self.bounds = bounds
        self.num_nodes = int(bounds[-1])

    def partition_of(self, nodes: Sequence[int]) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise PartitionError("node batch contains IDs outside [0, num_nodes)")
        return np.searchsorted(self.bounds, nodes, side="right") - 1

    def partition_sizes(self) -> np.ndarray:
        return np.diff(self.bounds)


def locality_order(graph: CSRGraph, assignment: np.ndarray) -> np.ndarray:
    """Original node IDs in internal-ID order: partition blocks, BFS inside.

    Every partition becomes one contiguous ID block. Within a block,
    nodes are placed in breadth-first order from degree-descending
    seeds: when a node is placed, its not-yet-placed same-partition
    neighbors take the next consecutive IDs. Hop expansion gathers
    exactly a node's neighbor set, so after this renumbering those
    gathers land on contiguous array runs instead of a random scatter —
    the access pattern the paper's Figure 2 blames for the sampling
    wall. Deterministic: seeds break degree ties by original ID, and
    neighbors enqueue in adjacency order.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (graph.num_nodes,):
        raise PartitionError(
            f"assignment must have one entry per node, got shape "
            f"{assignment.shape} for {graph.num_nodes} nodes"
        )
    n = graph.num_nodes
    degrees = graph.degrees()
    order = np.empty(n, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    pos = 0
    num_partitions = int(assignment.max()) + 1 if n else 0
    for part in range(num_partitions):
        members = np.flatnonzero(assignment == part)
        seeds = members[np.argsort(-degrees[members], kind="stable")]
        queue: deque = deque()
        for seed in seeds:
            if visited[seed]:
                continue
            visited[seed] = True
            queue.append(int(seed))
            while queue:
                v = queue.popleft()
                order[pos] = v
                pos += 1
                neighbors = graph.neighbors(v)
                fresh = neighbors[
                    ~visited[neighbors] & (assignment[neighbors] == part)
                ]
                if fresh.size:
                    # Parallel edges can repeat a neighbor; keep the
                    # first occurrence (adjacency order).
                    _, first = np.unique(fresh, return_index=True)
                    fresh = fresh[np.sort(first)]
                    visited[fresh] = True
                    queue.extend(int(u) for u in fresh)
    return order


def apply_layout(graph: CSRGraph, order: np.ndarray):
    """Physically permute a graph into ``order``; returns (graph, relabeling).

    ``order[internal] == original``. Adjacency lists keep their
    original within-node order (only the IDs are rewritten), and node /
    edge attributes move with their rows, so the relabeled graph is the
    same graph under a bijection — samples drawn from it map back to
    the original ID space exactly.
    """
    order = np.asarray(order, dtype=np.int64)
    n = graph.num_nodes
    if graph.num_dst_nodes != n:
        raise ConfigurationError(
            "locality layout requires a homogeneous graph "
            "(num_dst_nodes == num_nodes); bipartite relations keep "
            "their original layout"
        )
    if order.shape != (n,):
        raise GraphError(
            f"order must be a permutation of {n} node IDs, got shape {order.shape}"
        )
    old_to_new = np.empty(n, dtype=np.int64)
    old_to_new[order] = np.arange(n, dtype=np.int64)
    degrees = graph.degrees()[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    # Gather every adjacency block in internal order, then rewrite the
    # neighbor IDs into internal space.
    starts = graph.indptr[order]
    positions = np.repeat(starts - indptr[:-1], degrees) + np.arange(
        int(indptr[-1]), dtype=np.int64
    )
    indices = old_to_new[graph.indices[positions]]
    node_attr = None if graph.node_attr is None else graph.node_attr[order]
    edge_attr = None if graph.edge_attr is None else graph.edge_attr[positions]
    relabeled = CSRGraph(indptr, indices, node_attr=node_attr, edge_attr=edge_attr)
    relabeling = Relabeling(old_to_new, order.copy())
    return relabeled, relabeling


@dataclass(frozen=True)
class LocalityLayout:
    """A relabeled graph plus the partitioner and ID bijection for it."""

    graph: CSRGraph
    partitioner: BlockPartitioner
    relabeling: Relabeling
    method: str


def build_locality_layout(
    graph: CSRGraph, num_partitions: int, method: str = "ldg"
) -> LocalityLayout:
    """Derive an assignment, renumber the graph, return the bundle.

    ``method`` picks the partition assignment the blocks are built
    from: ``"ldg"`` (default) streams Linear Deterministic Greedy for
    genuinely fewer edge-cut crossings than hashing; ``"hash"`` keeps
    the hash assignment (isolating the pure renumbering effect);
    ``"range"`` blocks by original ID ranges.
    """
    if method not in LAYOUT_METHODS:
        raise ConfigurationError(
            f"unknown layout method {method!r}; expected one of {LAYOUT_METHODS}"
        )
    if method == "ldg":
        base: Partitioner = LdgPartitioner(num_partitions, graph)
    elif method == "hash":
        base = HashPartitioner(num_partitions)
    else:
        base = RangePartitioner(num_partitions, graph.num_nodes)
    assignment = base.partition_of(np.arange(graph.num_nodes, dtype=np.int64))
    order = locality_order(graph, assignment)
    relabeled, relabeling = apply_layout(graph, order)
    counts = np.bincount(assignment, minlength=num_partitions)
    bounds = np.zeros(num_partitions + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    return LocalityLayout(
        graph=relabeled,
        partitioner=BlockPartitioner(bounds),
        relabeling=relabeling,
        method=method,
    )
