"""Interconnect latency/bandwidth models (Figure 2d).

A :class:`LinkModel` captures one memory path (direct DRAM, PCIe host
DRAM, RDMA remote DRAM, the custom MoF fabric, ...) with a fixed base
round-trip latency, a peak bandwidth, and a per-request packet overhead.
From those three numbers it derives:

* round-trip latency as a function of request size,
* effective bandwidth at a given concurrency (outstanding requests),
* the synchronous (concurrency 1) bandwidth that makes fine-grained
  remote access look 100x worse than peak, as the paper measures.

Preset link parameters are calibrated to the published points in
Figure 2(d) / Table 8 and to common MVAPICH-style microbenchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.units import GB, NS, US


@dataclass(frozen=True)
class LinkModel:
    """One memory/interconnect path.

    Parameters
    ----------
    name:
        Identifier used in reports.
    base_latency_s:
        Zero-byte round-trip latency in seconds.
    peak_bandwidth:
        Peak data bandwidth in bytes/second.
    packet_overhead_bytes:
        Per-request header/DLLP-style overhead that consumes link
        bandwidth but carries no payload.
    """

    name: str
    base_latency_s: float
    peak_bandwidth: float
    packet_overhead_bytes: int = 0

    def __post_init__(self) -> None:
        if self.base_latency_s <= 0:
            raise ConfigurationError(
                f"base_latency_s must be positive, got {self.base_latency_s}"
            )
        if self.peak_bandwidth <= 0:
            raise ConfigurationError(
                f"peak_bandwidth must be positive, got {self.peak_bandwidth}"
            )
        if self.packet_overhead_bytes < 0:
            raise ConfigurationError(
                f"packet_overhead_bytes must be non-negative, "
                f"got {self.packet_overhead_bytes}"
            )

    def latency(self, request_bytes: int) -> float:
        """Round-trip latency for one request of ``request_bytes``."""
        if request_bytes < 0:
            raise ConfigurationError(
                f"request_bytes must be non-negative, got {request_bytes}"
            )
        wire_bytes = request_bytes + self.packet_overhead_bytes
        return self.base_latency_s + wire_bytes / self.peak_bandwidth

    def effective_bandwidth(self, request_bytes: int, outstanding: int = 1) -> float:
        """Payload bandwidth with ``outstanding`` concurrent requests.

        Little's law bounds the request rate at
        ``outstanding / latency``; the wire bounds it at
        ``peak / (payload + overhead)``. Payload bandwidth is the minimum
        of the two times the payload size.
        """
        if request_bytes <= 0:
            raise ConfigurationError(
                f"request_bytes must be positive, got {request_bytes}"
            )
        if outstanding <= 0:
            raise ConfigurationError(
                f"outstanding must be positive, got {outstanding}"
            )
        latency_bound = outstanding / self.latency(request_bytes)
        wire_bytes = request_bytes + self.packet_overhead_bytes
        wire_bound = self.peak_bandwidth / wire_bytes
        return min(latency_bound, wire_bound) * request_bytes

    def utilization(self, request_bytes: int, outstanding: int = 1) -> float:
        """Fraction of peak bandwidth achieved (payload only)."""
        return self.effective_bandwidth(request_bytes, outstanding) / self.peak_bandwidth

    def degraded(
        self, latency_factor: float = 1.0, bandwidth_factor: float = 1.0
    ) -> "LinkModel":
        """A derived link under partial failure (fault injection).

        Scales base latency up by ``latency_factor`` and peak bandwidth
        down to ``bandwidth_factor`` of nominal — the brownout shape a
        congested or renegotiated-down fabric hop exhibits, as opposed
        to the binary dead/alive state of a killed replica.
        """
        if latency_factor < 1.0:
            raise ConfigurationError(
                f"latency_factor must be >= 1, got {latency_factor}"
            )
        if not 0 < bandwidth_factor <= 1.0:
            raise ConfigurationError(
                f"bandwidth_factor must be in (0, 1], got {bandwidth_factor}"
            )
        return LinkModel(
            name=f"{self.name}:degraded",
            base_latency_s=self.base_latency_s * latency_factor,
            peak_bandwidth=self.peak_bandwidth * bandwidth_factor,
            packet_overhead_bytes=self.packet_overhead_bytes,
        )


#: Calibrated presets. Latencies follow the Figure 2(d) ordering:
#: direct DRAM << PCIe host DRAM << RDMA remote DRAM, with the custom
#: MoF fabric between PCIe and RDMA but with far higher bandwidth.
LINK_PRESETS: Dict[str, LinkModel] = {
    # One DDR4-1600 channel as seen by an on-chip master.
    "local_dram": LinkModel("local_dram", 90 * NS, 12.8 * GB, 0),
    # Four-channel FPGA-local DDR4 (Table 8 mem-opt: 102.4 GB/s).
    "fpga_local_dram": LinkModel("fpga_local_dram", 150 * NS, 102.4 * GB, 0),
    # Host DRAM reached over PCIe Gen3 x16 (Table 8: 16 GB/s).
    "pcie_host_dram": LinkModel("pcie_host_dram", 900 * NS, 16 * GB, 24),
    # Remote DRAM over a kernel-bypass RDMA NIC (100GbE class).
    "rdma_remote_dram": LinkModel("rdma_remote_dram", 3 * US, 12.5 * GB, 64),
    # Remote DRAM over the NIC *with* host software on the path (the
    # AliGraph baseline's gRPC-style stack).
    "sw_remote_dram": LinkModel("sw_remote_dram", 25 * US, 12.5 * GB, 96),
    # The customized Memory-over-Fabric link (Table 8: 100 GB/s).
    "mof_fabric": LinkModel("mof_fabric", 1.2 * US, 100 * GB, 8),
}


def get_link(name: str) -> LinkModel:
    """Look up a preset link model by name."""
    try:
        return LINK_PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown link {name!r}; expected one of {sorted(LINK_PRESETS)}"
        ) from None
