"""Partitioned in-memory graph store.

This is the execution substrate standing in for AliGraph's distributed
graph service: the graph physically lives in one process here, but every
access is attributed to the partition that owns the data, and recorded
as either a fine-grained *structure* access (index lookup, CSR offsets,
neighbor IDs) or a bulk *attribute* access. The resulting trace drives
the Figure 2(c) access-mix characterization and the performance models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partitioner

if TYPE_CHECKING:  # import cycle: faults rides the axe event kernel
    from repro.memstore.faults import ReliableReadPath


class AccessKind(enum.Enum):
    """What a memory access fetched."""

    #: Index lookups, CSR offsets, neighbor-ID reads: 8-64B indirect.
    STRUCTURE = "structure"
    #: Node attribute rows: attr_len * 4 bytes each.
    ATTRIBUTE = "attribute"


@dataclass(frozen=True)
class AccessRecord:
    """One logical memory access issued by the sampler."""

    kind: AccessKind
    nbytes: int
    local: bool


@dataclass
class AccessSummary:
    """Aggregated access statistics."""

    structure_count: int = 0
    structure_bytes: int = 0
    attribute_count: int = 0
    attribute_bytes: int = 0
    remote_count: int = 0
    remote_bytes: int = 0

    @property
    def total_count(self) -> int:
        return self.structure_count + self.attribute_count

    @property
    def total_bytes(self) -> int:
        return self.structure_bytes + self.attribute_bytes

    @property
    def structure_count_fraction(self) -> float:
        """Fraction of accesses that are fine-grained structure accesses
        (the ~48% average of Figure 2c)."""
        if self.total_count == 0:
            return 0.0
        return self.structure_count / self.total_count

    @property
    def remote_count_fraction(self) -> float:
        if self.total_count == 0:
            return 0.0
        return self.remote_count / self.total_count

    @property
    def remote_bytes_fraction(self) -> float:
        if self.total_bytes == 0:
            return 0.0
        return self.remote_bytes / self.total_bytes


class PartitionedStore:
    """Graph storage sharded across ``partitioner.num_partitions`` servers.

    Parameters
    ----------
    graph:
        The (scaled) dataset instance.
    partitioner:
        Node-to-server ownership map.
    index_entry_bytes:
        Size of one node-index lookup (hash bucket entry).
    offset_entry_bytes:
        Size of one CSR offset-pair read.
    id_bytes:
        Size of one neighbor ID on the wire.
    reliability:
        Optional fault-tolerant remote path
        (:class:`~repro.memstore.faults.ReliableReadPath`). When set,
        every remote access is additionally executed against it —
        replica selection, timeouts, retries, hedged reads — and may
        raise :class:`~repro.errors.ReplicaUnavailableError` when no
        replica of the owning partition answers before the deadline.
        ``None`` (the default) keeps the store's historical zero-fault
        behavior bit-for-bit.
    """

    def __init__(
        self,
        graph: CSRGraph,
        partitioner: Partitioner,
        index_entry_bytes: int = 16,
        offset_entry_bytes: int = 16,
        id_bytes: int = 8,
        reliability: Optional["ReliableReadPath"] = None,
    ) -> None:
        self.graph = graph
        self.partitioner = partitioner
        self.index_entry_bytes = index_entry_bytes
        self.offset_entry_bytes = offset_entry_bytes
        self.id_bytes = id_bytes
        self.reliability = reliability
        self._trace: List[AccessRecord] = []
        self._summary = AccessSummary()
        self.tracing = False

    @property
    def num_partitions(self) -> int:
        return self.partitioner.num_partitions

    # ---------------------------------------------------------------- trace
    def reset_trace(self) -> None:
        """Clear the recorded trace and summary."""
        self._trace.clear()
        self._summary = AccessSummary()

    @property
    def trace(self) -> Tuple[AccessRecord, ...]:
        """Recorded per-access trace (only populated when ``tracing``)."""
        return tuple(self._trace)

    @property
    def summary(self) -> AccessSummary:
        """Aggregated access statistics since the last reset."""
        return self._summary

    def _record(self, kind: AccessKind, nbytes: int, local: bool) -> None:
        if kind is AccessKind.STRUCTURE:
            self._summary.structure_count += 1
            self._summary.structure_bytes += nbytes
        else:
            self._summary.attribute_count += 1
            self._summary.attribute_bytes += nbytes
        if not local:
            self._summary.remote_count += 1
            self._summary.remote_bytes += nbytes
        if self.tracing:
            self._trace.append(AccessRecord(kind, nbytes, local))

    def _locality(self, nodes: np.ndarray, from_partition: Optional[int]) -> np.ndarray:
        if from_partition is None:
            return np.ones(nodes.shape, dtype=bool)
        return self.partitioner.owned_mask(nodes, from_partition)

    def _remote_read(self, owner: int, nbytes: int) -> None:
        """Execute one remote read on the fault-tolerant path (if any).

        May raise :class:`~repro.errors.ReplicaUnavailableError`; the
        caller has not yet recorded the access when that happens.
        """
        if self.reliability is not None:
            self.reliability.read(owner, nbytes)

    @property
    def fault_stats(self):
        """Retry/timeout/hedge counters, or ``None`` without a reliable path."""
        if self.reliability is None:
            return None
        return self.reliability.stats

    # --------------------------------------------------------------- access
    def get_neighbors(
        self, node: int, from_partition: Optional[int] = None
    ) -> np.ndarray:
        """Adjacency list of ``node``.

        Issues one index lookup, one offset-pair read, and one ID-block
        read, each attributed local or remote relative to
        ``from_partition`` (``None`` means measure everything as local,
        e.g. a single-server deployment). Remote reads additionally run
        through the reliable path when one is configured.
        """
        local = bool(
            self._locality(np.asarray([node], dtype=np.int64), from_partition)[0]
        )
        neighbors = self.graph.neighbors(node)
        if not local and self.reliability is not None:
            owner = int(
                self.partitioner.partition_of(np.asarray([node], dtype=np.int64))[0]
            )
            self._remote_read(owner, self.index_entry_bytes)
            self._remote_read(owner, self.offset_entry_bytes)
            if neighbors.size:
                self._remote_read(owner, int(neighbors.size) * self.id_bytes)
        self._record(AccessKind.STRUCTURE, self.index_entry_bytes, local)
        self._record(AccessKind.STRUCTURE, self.offset_entry_bytes, local)
        if neighbors.size:
            self._record(AccessKind.STRUCTURE, int(neighbors.size) * self.id_bytes, local)
        return neighbors

    def get_neighbors_batch(
        self, nodes: Sequence[int], from_partition: Optional[int] = None
    ) -> List[np.ndarray]:
        """Adjacency lists for a batch of nodes."""
        return [self.get_neighbors(int(v), from_partition) for v in nodes]

    def get_attributes(
        self, nodes: Sequence[int], from_partition: Optional[int] = None
    ) -> np.ndarray:
        """Attribute rows for ``nodes``.

        Each node costs one index lookup (structure) plus one attribute
        row transfer.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        locality = self._locality(nodes, from_partition)
        row_bytes = self.graph.attr_len * 4
        if self.reliability is not None and not locality.all():
            # Interleave reliable reads with records so a failure
            # mid-batch leaves earlier rows consistently accounted and
            # raises before the failing row is recorded.
            owners = self.partitioner.partition_of(nodes)
            for owner, local in zip(owners, locality):
                if not local:
                    self._remote_read(int(owner), self.index_entry_bytes)
                    self._remote_read(int(owner), row_bytes)
                self._record(AccessKind.STRUCTURE, self.index_entry_bytes, bool(local))
                self._record(AccessKind.ATTRIBUTE, row_bytes, bool(local))
            return self.graph.attributes(nodes)
        for local in locality:
            self._record(AccessKind.STRUCTURE, self.index_entry_bytes, bool(local))
            self._record(AccessKind.ATTRIBUTE, row_bytes, bool(local))
        return self.graph.attributes(nodes)

    def partition_sizes(self) -> np.ndarray:
        """Number of nodes owned by each partition."""
        owners = self.partitioner.partition_of(
            np.arange(self.graph.num_nodes, dtype=np.int64)
        )
        counts = np.bincount(owners, minlength=self.num_partitions)
        if counts.size > self.num_partitions:
            raise PartitionError("partitioner produced out-of-range partition IDs")
        return counts
