"""Partitioned in-memory graph store.

This is the execution substrate standing in for AliGraph's distributed
graph service: the graph physically lives in one process here, but every
access is attributed to the partition that owns the data, and recorded
as either a fine-grained *structure* access (index lookup, CSR offsets,
neighbor IDs) or a bulk *attribute* access. The resulting trace drives
the Figure 2(c) access-mix characterization and the performance models.
"""

from __future__ import annotations

import contextlib
import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, PartitionError, ReplicaUnavailableError
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partitioner

if TYPE_CHECKING:  # import cycle: faults rides the axe event kernel
    from repro.memstore.faults import ReliableReadPath


class AccessKind(enum.Enum):
    """What a memory access fetched."""

    #: Index lookups, CSR offsets, neighbor-ID reads: 8-64B indirect.
    STRUCTURE = "structure"
    #: Node attribute rows: attr_len * 4 bytes each.
    ATTRIBUTE = "attribute"


@dataclass(frozen=True)
class AccessRecord:
    """One logical memory access issued by the sampler."""

    kind: AccessKind
    nbytes: int
    local: bool


@dataclass
class AccessSummary:
    """Aggregated access statistics."""

    structure_count: int = 0
    structure_bytes: int = 0
    attribute_count: int = 0
    attribute_bytes: int = 0
    remote_count: int = 0
    remote_bytes: int = 0
    #: Locality-layout accounting (populated only on stores constructed
    #: with ``track_locality=True``; zero otherwise so summary equality
    #: against untracked stores still holds). Each batched gather of
    #: ``n`` distinct nodes contributes ``n`` to ``gather_nodes``, its
    #: number of maximal consecutive-ID runs to ``gather_runs``, and the
    #: byte distance from its first to its last touched entry to
    #: ``gather_span_bytes`` — fewer runs over the same nodes and a
    #: tighter span mean the gather walked contiguous memory.
    gather_nodes: int = 0
    gather_runs: int = 0
    gather_span_bytes: int = 0
    #: Neighborhood-cache accounting (populated only when the pipelined
    #: trainer runs with a ``NeighborhoodCache``; zero otherwise so
    #: summary equality against cache-off runs still holds). Counted per
    #: root occurrence: a root whose multi-hop layers were served from
    #: the cache contributes one ``neighborhood_hits``; one that had to
    #: be re-sampled contributes one ``neighborhood_misses``.
    neighborhood_hits: int = 0
    neighborhood_misses: int = 0

    def add(self, other: "AccessSummary") -> "AccessSummary":
        """Accumulate ``other`` into this summary (shard-merge support).

        Accounting counters only ever mutate inside this module; shard
        workers therefore ship their local :class:`AccessSummary` back
        to the coordinator, which merges through here (or through
        :meth:`PartitionedStore.absorb_summary`).
        """
        self.structure_count += other.structure_count
        self.structure_bytes += other.structure_bytes
        self.attribute_count += other.attribute_count
        self.attribute_bytes += other.attribute_bytes
        self.remote_count += other.remote_count
        self.remote_bytes += other.remote_bytes
        self.gather_nodes += other.gather_nodes
        self.gather_runs += other.gather_runs
        self.gather_span_bytes += other.gather_span_bytes
        self.neighborhood_hits += other.neighborhood_hits
        self.neighborhood_misses += other.neighborhood_misses
        return self

    @property
    def total_count(self) -> int:
        return self.structure_count + self.attribute_count

    @property
    def total_bytes(self) -> int:
        return self.structure_bytes + self.attribute_bytes

    @property
    def structure_count_fraction(self) -> float:
        """Fraction of accesses that are fine-grained structure accesses
        (the ~48% average of Figure 2c)."""
        if self.total_count == 0:
            return 0.0
        return self.structure_count / self.total_count

    @property
    def remote_count_fraction(self) -> float:
        if self.total_count == 0:
            return 0.0
        return self.remote_count / self.total_count

    @property
    def remote_bytes_fraction(self) -> float:
        if self.total_bytes == 0:
            return 0.0
        return self.remote_bytes / self.total_bytes

    @property
    def mean_run_length(self) -> float:
        """Average contiguous-run length across tracked gathers.

        1.0 means every gathered node was an island; higher means hop
        frontiers landed on consecutive array entries (the locality
        layout's win condition).
        """
        if self.gather_runs == 0:
            return 0.0
        return self.gather_nodes / self.gather_runs


@dataclass
class NeighborBatch:
    """Result of one vectorized adjacency gather.

    Indexing and iteration yield per-node adjacency arrays (views into
    ``values``), so callers written against the old list-of-arrays
    return type keep working.
    """

    #: The (typically deduplicated) nodes that were gathered.
    nodes: np.ndarray
    #: All neighbor IDs, concatenated in node order.
    values: np.ndarray
    #: Prefix offsets into ``values``; node ``i`` owns
    #: ``values[offsets[i]:offsets[i + 1]]``. Degraded nodes own an
    #: empty slice.
    offsets: np.ndarray
    #: False where every occurrence-attempt degraded (shard unreachable).
    served: np.ndarray
    #: Occurrence-attempts that completed without data.
    fallbacks: int = 0

    def __len__(self) -> int:
        return int(self.nodes.size)

    def __getitem__(self, i: int) -> np.ndarray:
        return self.values[self.offsets[i] : self.offsets[i + 1]]

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]


@dataclass
class AttributeBatch:
    """Result of one vectorized attribute gather.

    ``rows[i]`` is zero where ``served[i]`` is False (degraded
    completion, mirroring the sampler's zero-row fallback).
    """

    nodes: np.ndarray
    rows: np.ndarray
    served: np.ndarray
    fallbacks: int = 0

    def __len__(self) -> int:
        return int(self.nodes.size)


class PartitionedStore:
    """Graph storage sharded across ``partitioner.num_partitions`` servers.

    Parameters
    ----------
    graph:
        The (scaled) dataset instance.
    partitioner:
        Node-to-server ownership map.
    index_entry_bytes:
        Size of one node-index lookup (hash bucket entry).
    offset_entry_bytes:
        Size of one CSR offset-pair read.
    id_bytes:
        Size of one neighbor ID on the wire.
    reliability:
        Optional fault-tolerant remote path
        (:class:`~repro.memstore.faults.ReliableReadPath`). When set,
        every remote access is additionally executed against it —
        replica selection, timeouts, retries, hedged reads — and may
        raise :class:`~repro.errors.ReplicaUnavailableError` when no
        replica of the owning partition answers before the deadline.
        ``None`` (the default) keeps the store's historical zero-fault
        behavior bit-for-bit.
    track_locality:
        Record gather-contiguity counters (``gather_nodes`` /
        ``gather_runs`` / ``gather_span_bytes``) for every batched
        adjacency/attribute gather. ``False`` (the default) leaves the
        counters at zero so summaries stay comparable with stores that
        predate the locality layout — the batched gather pattern is not
        reproduced by the per-node replay walk, so parity checks must
        compare untracked stores.
    """

    def __init__(
        self,
        graph: CSRGraph,
        partitioner: Partitioner,
        index_entry_bytes: int = 16,
        offset_entry_bytes: int = 16,
        id_bytes: int = 8,
        reliability: Optional["ReliableReadPath"] = None,
        track_locality: bool = False,
    ) -> None:
        self.graph = graph
        self.partitioner = partitioner
        self.index_entry_bytes = index_entry_bytes
        self.offset_entry_bytes = offset_entry_bytes
        self.id_bytes = id_bytes
        self.reliability = reliability
        self.track_locality = track_locality
        self._trace: List[AccessRecord] = []
        self._summary = AccessSummary()
        self.tracing = False

    @property
    def num_partitions(self) -> int:
        return self.partitioner.num_partitions

    @contextlib.contextmanager
    def read_view(self) -> Iterator["PartitionedStore"]:
        """Pin one consistent graph snapshot for the duration of the block.

        The static store's graph never changes, so this is a no-op hook;
        :class:`~repro.memstore.ingest.DynamicPartitionedStore` overrides
        it to freeze an epoch so a multi-hop sample never observes a
        mutation landing between its hops. Samplers wrap each sample in
        this unconditionally, keeping one code path for both stores.
        """
        yield self

    # ---------------------------------------------------------------- trace
    def reset_trace(self) -> None:
        """Clear the recorded trace and summary."""
        self._trace.clear()
        self._summary = AccessSummary()

    @property
    def trace(self) -> Tuple[AccessRecord, ...]:
        """Recorded per-access trace (only populated when ``tracing``)."""
        return tuple(self._trace)

    @property
    def summary(self) -> AccessSummary:
        """Aggregated access statistics since the last reset."""
        return self._summary

    def absorb_summary(self, delta: AccessSummary) -> None:
        """Merge a shard worker's access totals into this store's summary.

        The parallel execution engine runs per-shard samplers in worker
        processes, each over its own store attached to the shared graph
        plane; their summaries come back as deltas and are folded into
        the coordinator store here, so ``store.summary`` stays the
        single merged view of a run. Per-access traces do not cross the
        process boundary (``tracing`` captures coordinator accesses
        only).
        """
        self._summary.add(delta)

    def record_neighborhood(self, hits: int, misses: int) -> None:
        """Fold neighborhood-cache hit/miss counts into the summary.

        The :class:`~repro.gnn.pipeline.NeighborhoodCache` owns its own
        occurrence-accurate counters; accounting counters on
        :class:`AccessSummary` only mutate inside this module, so the
        trainer reports per-epoch deltas through here.
        """
        if hits < 0 or misses < 0:
            raise ConfigurationError(
                f"hit/miss deltas must be non-negative, got {hits}/{misses}"
            )
        self._summary.neighborhood_hits += hits
        self._summary.neighborhood_misses += misses

    def _record(self, kind: AccessKind, nbytes: int, local: bool) -> None:
        if kind is AccessKind.STRUCTURE:
            self._summary.structure_count += 1
            self._summary.structure_bytes += nbytes
        else:
            self._summary.attribute_count += 1
            self._summary.attribute_bytes += nbytes
        if not local:
            self._summary.remote_count += 1
            self._summary.remote_bytes += nbytes
        if self.tracing:
            self._trace.append(AccessRecord(kind, nbytes, local))

    def _record_batch(
        self,
        kind: AccessKind,
        nbytes: np.ndarray,
        local: np.ndarray,
        counts: Optional[np.ndarray] = None,
    ) -> None:
        """Record a whole group of same-kind accesses in O(1) summary updates.

        ``nbytes``/``local`` are per-entry; ``counts`` is the number of
        identical accesses each entry stands for (occurrence
        multiplicity after dedup). Totals match issuing each access
        through :meth:`_record`; only the trace *ordering* may differ
        from the per-node walk.
        """
        nbytes = np.asarray(nbytes, dtype=np.int64)
        local = np.asarray(local, dtype=bool)
        if counts is None:
            counts = np.ones(nbytes.shape, dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
        total = int(counts.sum())
        if total == 0:
            return
        total_bytes = int((nbytes * counts).sum())
        if kind is AccessKind.STRUCTURE:
            self._summary.structure_count += total
            self._summary.structure_bytes += total_bytes
        else:
            self._summary.attribute_count += total
            self._summary.attribute_bytes += total_bytes
        remote = ~local
        if remote.any():
            self._summary.remote_count += int(counts[remote].sum())
            self._summary.remote_bytes += int((nbytes[remote] * counts[remote]).sum())
        if self.tracing:
            for b, loc, c in zip(nbytes, local, counts):
                if c:
                    record = AccessRecord(kind, int(b), bool(loc))
                    self._trace.extend([record] * int(c))

    def _record_gather(self, nodes: np.ndarray, entry_bytes: int) -> None:
        """Account the contiguity of one batched gather (opt-in).

        ``nodes`` is the batch's distinct node set; ``entry_bytes`` is
        the per-node footprint in the array being gathered. Runs are
        maximal stretches of consecutive IDs; the span is the byte
        distance covering the whole batch. Both shrink as the layout
        packs co-accessed nodes together.
        """
        if not self.track_locality or nodes.size == 0:
            return
        ordered = np.sort(np.asarray(nodes, dtype=np.int64))
        runs = 1 + int(np.count_nonzero(np.diff(ordered) != 1))
        self._summary.gather_nodes += int(ordered.size)
        self._summary.gather_runs += runs
        self._summary.gather_span_bytes += int(
            (ordered[-1] - ordered[0] + 1) * entry_bytes
        )

    def _locality(self, nodes: np.ndarray, from_partition: Optional[int]) -> np.ndarray:
        if from_partition is None:
            return np.ones(nodes.shape, dtype=bool)
        return self.partitioner.owned_mask(nodes, from_partition)

    def _remote_read(self, owner: int, nbytes: int) -> None:
        """Execute one remote read on the fault-tolerant path (if any).

        May raise :class:`~repro.errors.ReplicaUnavailableError`; the
        caller has not yet recorded the access when that happens.
        """
        if self.reliability is not None:
            self.reliability.read(owner, nbytes)

    @property
    def fault_stats(self):
        """Retry/timeout/hedge counters, or ``None`` without a reliable path."""
        if self.reliability is None:
            return None
        return self.reliability.stats

    # --------------------------------------------------------------- access
    def get_neighbors(
        self, node: int, from_partition: Optional[int] = None
    ) -> np.ndarray:
        """Adjacency list of ``node``.

        Issues one index lookup, one offset-pair read, and one ID-block
        read, each attributed local or remote relative to
        ``from_partition`` (``None`` means measure everything as local,
        e.g. a single-server deployment). Remote reads additionally run
        through the reliable path when one is configured.
        """
        local = bool(
            self._locality(np.asarray([node], dtype=np.int64), from_partition)[0]
        )
        neighbors = self.graph.neighbors(node)
        if not local and self.reliability is not None:
            owner = int(
                self.partitioner.partition_of(np.asarray([node], dtype=np.int64))[0]
            )
            self._remote_read(owner, self.index_entry_bytes)
            self._remote_read(owner, self.offset_entry_bytes)
            if neighbors.size:
                self._remote_read(owner, int(neighbors.size) * self.id_bytes)
        self._record(AccessKind.STRUCTURE, self.index_entry_bytes, local)
        self._record(AccessKind.STRUCTURE, self.offset_entry_bytes, local)
        if neighbors.size:
            self._record(AccessKind.STRUCTURE, int(neighbors.size) * self.id_bytes, local)
        return neighbors

    def get_neighbors_batch(
        self,
        nodes: Sequence[int],
        from_partition: Optional[int] = None,
        counts: Optional[np.ndarray] = None,
        degraded_ok: bool = False,
    ) -> NeighborBatch:
        """Vectorized adjacency gather for a batch of nodes.

        Locality and ownership are computed once for the whole batch,
        and accesses are recorded in bulk. Per node the accounting is
        identical to ``counts[i]`` calls of :meth:`get_neighbors`
        (``counts`` defaults to one each): an index lookup, an
        offset-pair read, and — for non-isolated nodes — an ID-block
        read, each per *successful* occurrence. On the reliable path a
        failed occurrence records nothing; with ``degraded_ok`` it is
        tallied in ``fallbacks`` instead of raising, and a node whose
        every occurrence failed comes back with an empty slice and
        ``served[i] == False``. Without ``degraded_ok`` the failure
        flushes the accesses that did complete and re-raises, mirroring
        the per-node walk stopping at the failing node.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if counts is None:
            counts = np.ones(nodes.shape, dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
            if counts.shape != nodes.shape:
                raise ConfigurationError(
                    f"counts shape {counts.shape} != nodes shape {nodes.shape}"
                )
        starts, stops = self.graph.neighbor_slices(nodes)
        degrees = (stops - starts).astype(np.int64)
        self._record_gather(nodes, self.offset_entry_bytes)
        locality = self._locality(nodes, from_partition)
        served = np.ones(nodes.shape, dtype=bool)
        recorded = counts.copy()
        fallbacks = 0

        def _emit(recorded: np.ndarray) -> None:
            self._record_batch(
                AccessKind.STRUCTURE,
                np.full(nodes.shape, self.index_entry_bytes, dtype=np.int64),
                locality,
                recorded,
            )
            self._record_batch(
                AccessKind.STRUCTURE,
                np.full(nodes.shape, self.offset_entry_bytes, dtype=np.int64),
                locality,
                recorded,
            )
            has_block = degrees > 0
            if has_block.any():
                self._record_batch(
                    AccessKind.STRUCTURE,
                    degrees[has_block] * self.id_bytes,
                    locality[has_block],
                    recorded[has_block],
                )

        if self.reliability is not None and not locality.all():
            owners = self.partitioner.partition_of(nodes)
            for i in np.flatnonzero(~locality):
                owner = int(owners[i])
                successes = 0
                for _ in range(int(counts[i])):
                    try:
                        self._remote_read(owner, self.index_entry_bytes)
                        self._remote_read(owner, self.offset_entry_bytes)
                        if degrees[i]:
                            self._remote_read(owner, int(degrees[i]) * self.id_bytes)
                    except ReplicaUnavailableError:
                        if not degraded_ok:
                            recorded[i] = successes
                            recorded[i + 1 :] = 0
                            _emit(recorded)
                            raise
                        fallbacks += 1
                    else:
                        successes += 1
                recorded[i] = successes
                served[i] = successes > 0
        _emit(recorded)

        effective = np.where(served, degrees, 0)
        offsets = np.zeros(nodes.size + 1, dtype=np.int64)
        np.cumsum(effective, out=offsets[1:])
        total = int(offsets[-1])
        positions = np.repeat(starts - offsets[:-1], effective) + np.arange(
            total, dtype=np.int64
        )
        values = self.graph.indices[positions]
        return NeighborBatch(nodes, values, offsets, served, fallbacks)

    def get_attributes_batch(
        self,
        nodes: Sequence[int],
        from_partition: Optional[int] = None,
        counts: Optional[np.ndarray] = None,
        degraded_ok: bool = False,
    ) -> AttributeBatch:
        """Vectorized attribute gather for a batch of nodes.

        Per node the accounting is identical to ``counts[i]`` calls of
        :meth:`get_attributes` on a single node: one index lookup plus
        one attribute-row transfer per successful occurrence. Failure
        handling mirrors :meth:`get_neighbors_batch`; a node whose every
        occurrence failed comes back as a zero row with
        ``served[i] == False``.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if counts is None:
            counts = np.ones(nodes.shape, dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
            if counts.shape != nodes.shape:
                raise ConfigurationError(
                    f"counts shape {counts.shape} != nodes shape {nodes.shape}"
                )
        self._record_gather(nodes, self.graph.attr_len * 4)
        locality = self._locality(nodes, from_partition)
        row_bytes = self.graph.attr_len * 4
        served = np.ones(nodes.shape, dtype=bool)
        recorded = counts.copy()
        fallbacks = 0

        def _emit(recorded: np.ndarray) -> None:
            self._record_batch(
                AccessKind.STRUCTURE,
                np.full(nodes.shape, self.index_entry_bytes, dtype=np.int64),
                locality,
                recorded,
            )
            self._record_batch(
                AccessKind.ATTRIBUTE,
                np.full(nodes.shape, row_bytes, dtype=np.int64),
                locality,
                recorded,
            )

        if self.reliability is not None and not locality.all():
            owners = self.partitioner.partition_of(nodes)
            for i in np.flatnonzero(~locality):
                owner = int(owners[i])
                successes = 0
                for _ in range(int(counts[i])):
                    try:
                        self._remote_read(owner, self.index_entry_bytes)
                        self._remote_read(owner, row_bytes)
                    except ReplicaUnavailableError:
                        if not degraded_ok:
                            recorded[i] = successes
                            recorded[i + 1 :] = 0
                            _emit(recorded)
                            raise
                        fallbacks += 1
                    else:
                        successes += 1
                recorded[i] = successes
                served[i] = successes > 0
        _emit(recorded)

        rows = np.zeros((nodes.size, self.graph.attr_len), dtype=np.float32)
        if served.any():
            rows[served] = self.graph.attributes(nodes[served])
        return AttributeBatch(nodes, rows, served, fallbacks)

    def get_attributes(
        self,
        nodes: Sequence[int],
        from_partition: Optional[int] = None,
        dedup: bool = False,
    ) -> np.ndarray:
        """Attribute rows for ``nodes``.

        Each node costs one index lookup (structure) plus one attribute
        row transfer. With ``dedup`` the underlying row gather and the
        accounting run once per *unique* node (with occurrence
        multiplicity), producing the same summary totals as the plain
        walk; the reliable remote path still walks node-by-node so its
        failure ordering is preserved.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        locality = self._locality(nodes, from_partition)
        row_bytes = self.graph.attr_len * 4
        if dedup and (self.reliability is None or locality.all()):
            unique, inverse, counts = np.unique(
                nodes, return_inverse=True, return_counts=True
            )
            unique_locality = self._locality(unique, from_partition)
            self._record_batch(
                AccessKind.STRUCTURE,
                np.full(unique.shape, self.index_entry_bytes, dtype=np.int64),
                unique_locality,
                counts,
            )
            self._record_batch(
                AccessKind.ATTRIBUTE,
                np.full(unique.shape, row_bytes, dtype=np.int64),
                unique_locality,
                counts,
            )
            return self.graph.attributes(unique)[inverse]
        if self.reliability is not None and not locality.all():
            # Interleave reliable reads with records so a failure
            # mid-batch leaves earlier rows consistently accounted and
            # raises before the failing row is recorded.
            owners = self.partitioner.partition_of(nodes)
            for owner, local in zip(owners, locality):
                if not local:
                    self._remote_read(int(owner), self.index_entry_bytes)
                    self._remote_read(int(owner), row_bytes)
                self._record(AccessKind.STRUCTURE, self.index_entry_bytes, bool(local))
                self._record(AccessKind.ATTRIBUTE, row_bytes, bool(local))
            return self.graph.attributes(nodes)
        for local in locality:
            self._record(AccessKind.STRUCTURE, self.index_entry_bytes, bool(local))
            self._record(AccessKind.ATTRIBUTE, row_bytes, bool(local))
        return self.graph.attributes(nodes)

    def partition_sizes(self) -> np.ndarray:
        """Number of nodes owned by each partition."""
        owners = self.partitioner.partition_of(
            np.arange(self.graph.num_nodes, dtype=np.int64)
        )
        counts = np.bincount(owners, minlength=self.num_partitions)
        if counts.size > self.num_partitions:
            raise PartitionError("partitioner produced out-of-range partition IDs")
        return counts
