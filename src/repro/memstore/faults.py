"""Fault injection and the fault-tolerant remote read path.

This is the availability substrate under :class:`PartitionedStore`.
The graph physically lives in one process, so "fault tolerance" here
means the same thing the rest of the repo means by "hardware": a
deterministic simulation, precise enough to measure policies against.
A read that would ride the MoF fabric instead walks:

    replica selection (``ReplicaPlacement``)
      -> per-attempt latency draw (``LinkModel`` base + lognormal tail)
      -> fault checks (replica down? request lost? link degraded?)
      -> timeout / exponential backoff / deadline (``RetryPolicy``)
      -> optional hedged second read to another replica after a
         p99-derived delay, first response wins, loser cancelled

Faults are events on the shared discrete-event kernel
(:mod:`repro.axe.events`): replica kills/restores and link degradation
are scheduled at absolute virtual times, per-request loss is drawn from
a seeded generator — a run is a pure function of its seed. Virtual
time advances only when reads consume it, so a kill "mid-run" lands
mid-run regardless of host speed.

When a store has no :class:`ReliableReadPath` attached, none of this
code executes: the zero-fault configuration is bit-for-bit identical
to the pre-fault-tolerance store.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, fields
from typing import Deque, Optional, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError, ReplicaUnavailableError
from repro.axe.events import Simulator
from repro.memstore.links import LinkModel, get_link
from repro.memstore.replication import ReplicaId, ReplicaPlacement
from repro.memstore.retry import RetryPolicy
from repro.units import MS_PER_S


@dataclass
class FaultStats:
    """Counters accumulated by one :class:`ReliableReadPath`."""

    #: Logical reads requested by the store.
    reads: int = 0
    #: Physical attempts issued (first tries + retries, not hedges).
    attempts: int = 0
    #: Attempts issued after a failed first try.
    retries: int = 0
    #: Attempts abandoned at the per-attempt timeout.
    timeouts: int = 0
    #: Hedged second reads issued.
    hedges: int = 0
    #: Hedges whose response arrived first (loser cancelled).
    hedge_wins: int = 0
    #: Reads served by a non-primary replica.
    failovers: int = 0
    #: Reads that exhausted deadline/attempts on every replica.
    failed_reads: int = 0
    #: Virtual seconds consumed by reads (including waits and backoffs).
    busy_s: float = 0.0

    def copy(self) -> "FaultStats":
        return FaultStats(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def minus(self, baseline: "FaultStats") -> "FaultStats":
        """Per-window delta: counters since ``baseline`` was captured."""
        return FaultStats(
            **{
                f.name: getattr(self, f.name) - getattr(baseline, f.name)
                for f in fields(self)
            }
        )

    @property
    def any_faults(self) -> bool:
        """Whether any fault-path event (beyond clean reads) occurred."""
        return bool(
            self.retries
            or self.timeouts
            or self.hedges
            or self.failovers
            or self.failed_reads
        )


class FaultInjector:
    """Event-kernel-driven fault source for the remote memory path.

    Three fault classes, all deterministic:

    * **Replica kill/restore** — scheduled at absolute virtual times
      (or applied immediately); a dead replica never answers, so reads
      against it burn the attempt timeout.
    * **Link degradation** — a latency multiplier on every read,
      switchable at scheduled times (congestion / cable brownout).
    * **Per-request loss** — each attempt is independently lost with
      ``loss_rate``, drawn from a seeded generator.
    """

    def __init__(self, seed: int = 0, loss_rate: float = 0.0) -> None:
        if not 0 <= loss_rate < 1:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {loss_rate}"
            )
        self.sim = Simulator()
        self.loss_rate = loss_rate
        self._rng = np.random.default_rng(seed)
        self._down: Set[Tuple[int, int]] = set()
        self._latency_factor = 1.0
        self._now = 0.0

    # ------------------------------------------------------------- clock
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Advance virtual time, applying any faults scheduled before it."""
        if when <= self._now:
            return
        self.sim.run(until=when)
        self._now = when

    # ------------------------------------------------------------ faults
    def kill_replica(
        self, partition: int, replica: int = 0, at_s: Optional[float] = None
    ) -> None:
        """Kill one replica now, or at virtual time ``at_s``."""
        self._schedule(at_s, lambda: self._down.add((partition, replica)))

    def restore_replica(
        self, partition: int, replica: int = 0, at_s: Optional[float] = None
    ) -> None:
        """Bring one replica back now, or at virtual time ``at_s``."""
        self._schedule(
            at_s, lambda: self._down.discard((partition, replica))
        )

    def degrade_link(
        self, latency_factor: float, at_s: Optional[float] = None
    ) -> None:
        """Scale read latencies by ``latency_factor`` from ``at_s`` on.

        Pass ``1.0`` (possibly at a later ``at_s``) to end a degradation
        window.
        """
        if latency_factor <= 0:
            raise ConfigurationError(
                f"latency_factor must be positive, got {latency_factor}"
            )

        def apply() -> None:
            self._latency_factor = latency_factor

        self._schedule(at_s, apply)

    def _schedule(self, at_s: Optional[float], apply) -> None:
        if at_s is None or at_s <= self._now:
            apply()
        else:
            self.sim.at(at_s, apply)

    # ------------------------------------------------------------ queries
    def is_down(self, replica: ReplicaId) -> bool:
        return (replica.partition, replica.replica) in self._down

    def request_lost(self) -> bool:
        """Deterministic draw: is this attempt lost on the wire?"""
        if self.loss_rate == 0.0:
            return False
        return bool(self._rng.random() < self.loss_rate)

    @property
    def latency_factor(self) -> float:
        return self._latency_factor


class ReliableReadPath:
    """Replica-aware, retrying, hedging remote read simulator.

    One instance hangs off a :class:`PartitionedStore`; every remote
    access the store attributes is additionally *executed* against this
    path, which decides which replica serves it, how long it takes in
    virtual time, and whether retries/hedges/failovers were needed.

    Parameters
    ----------
    placement:
        Partition-to-replica map.
    policy:
        Timeout/backoff/deadline/hedging parameters.
    injector:
        Fault source and virtual clock; a fresh no-fault injector is
        created when omitted.
    link:
        The memory path the reads ride; defaults to the MoF fabric.
    seed:
        Seed for the latency-jitter generator (separate from the
        injector's loss generator so enabling loss does not reshuffle
        latencies).
    jitter_sigma:
        Sigma of the lognormal latency multiplier; ~0.25 gives a
        realistic p99/p50 around 1.8x, enough for hedging to matter.
    """

    def __init__(
        self,
        placement: ReplicaPlacement,
        policy: Optional[RetryPolicy] = None,
        injector: Optional[FaultInjector] = None,
        link: Optional[LinkModel] = None,
        seed: int = 0,
        jitter_sigma: float = 0.25,
        latency_window: int = 256,
    ) -> None:
        if jitter_sigma < 0:
            raise ConfigurationError(
                f"jitter_sigma must be non-negative, got {jitter_sigma}"
            )
        if latency_window <= 0:
            raise ConfigurationError(
                f"latency_window must be positive, got {latency_window}"
            )
        self.placement = placement
        self.policy = policy or RetryPolicy()
        self.injector = injector or FaultInjector()
        self.link = link or get_link("mof_fabric")
        self.jitter_sigma = jitter_sigma
        self.stats = FaultStats()
        self._rng = np.random.default_rng(seed)
        self._latency_window: Deque[float] = deque(maxlen=latency_window)

    # ---------------------------------------------------------- internals
    def _draw_latency(self, nbytes: int) -> float:
        base = self.link.latency(nbytes) * self.injector.latency_factor
        if self.jitter_sigma == 0.0:
            return base
        return base * float(self._rng.lognormal(0.0, self.jitter_sigma))

    def _hedge_delay(self) -> Optional[float]:
        """The p99-derived (or explicit) hedge trigger delay."""
        if not self.policy.hedge:
            return None
        if self.policy.hedge_delay_s is not None:
            return self.policy.hedge_delay_s
        if len(self._latency_window) < self.policy.hedge_min_samples:
            return None
        return float(
            np.percentile(
                np.fromiter(self._latency_window, dtype=np.float64),
                self.policy.hedge_quantile,
            )
        )

    def _issue(
        self, replica: ReplicaId, nbytes: int
    ) -> Optional[float]:
        """Latency of one wire request, or ``None`` if it never answers."""
        if self.injector.is_down(replica) or self.injector.request_lost():
            return None
        return self._draw_latency(nbytes)

    # -------------------------------------------------------------- reads
    def read(self, partition: int, nbytes: int) -> float:
        """Execute one remote read; returns its virtual latency.

        Raises :class:`ReplicaUnavailableError` when the deadline or
        attempt budget is exhausted without any replica answering —
        callers either propagate (strict mode) or degrade.
        """
        policy = self.policy
        injector = self.injector
        replicas = self.placement.replicas_of(partition)
        start_s = injector.now
        deadline_s = start_s + policy.deadline_s
        self.stats.reads += 1

        for attempt in range(policy.max_attempts):
            if attempt > 0:
                backoff = policy.backoff_s(attempt - 1)
                if injector.now + backoff >= deadline_s:
                    break
                injector.advance_to(injector.now + backoff)
                self.stats.retries += 1
            self.stats.attempts += 1

            primary = replicas[attempt % len(replicas)]
            t0 = injector.now
            primary_latency = self._issue(primary, nbytes)
            t_primary = (
                t0 + primary_latency if primary_latency is not None else math.inf
            )

            # Hedge to a different replica once the first response is
            # late past the p99-derived delay.
            t_hedge = math.inf
            hedge_replica: Optional[ReplicaId] = None
            hedge_delay = self._hedge_delay()
            if (
                hedge_delay is not None
                and hedge_delay < policy.attempt_timeout_s
                and len(replicas) > 1
                and t_primary > t0 + hedge_delay
                and t0 + hedge_delay < deadline_s
            ):
                hedge_replica = replicas[(attempt + 1) % len(replicas)]
                # Liveness/loss of the hedge is evaluated at its issue
                # time, so scheduled kills before the trigger apply.
                injector.advance_to(t0 + hedge_delay)
                self.stats.hedges += 1
                hedge_latency = self._issue(hedge_replica, nbytes)
                if hedge_latency is not None:
                    t_hedge = t0 + hedge_delay + hedge_latency

            t_timeout = min(t0 + policy.attempt_timeout_s, deadline_s)
            t_done = min(t_primary, t_hedge)
            if t_done <= t_timeout:
                injector.advance_to(t_done)
                winner = primary
                if t_hedge < t_primary:
                    winner = hedge_replica  # loser's response is dropped
                    self.stats.hedge_wins += 1
                if winner is not None and winner.replica != 0:
                    self.stats.failovers += 1
                latency = t_done - start_s
                self._latency_window.append(t_done - t0)
                self.stats.busy_s += latency
                return latency

            self.stats.timeouts += 1
            injector.advance_to(t_timeout)
            if injector.now >= deadline_s:
                break

        self.stats.failed_reads += 1
        self.stats.busy_s += injector.now - start_s
        raise ReplicaUnavailableError(
            f"partition {partition}: no replica answered within "
            f"{policy.deadline_s * MS_PER_S:.2f} ms "
            f"({policy.max_attempts} attempts)"
        )
